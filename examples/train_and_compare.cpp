// Trains the RL power-management policy across the mobile scenarios, then
// evaluates it against the six conventional DVFS governors — the workflow
// behind the paper's headline comparison. Prints per-scenario and average
// energy/QoS for every policy.
//
//   ./build/examples/train_and_compare [episodes]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <fstream>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "governors/registry.hpp"
#include "rl/policy_io.hpp"
#include "rl/trainer.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

namespace {
constexpr std::uint64_t kEvalSeed = 9001;

core::PolicySummary evaluate(core::SimEngine& engine,
                             governors::Governor& governor) {
  core::PolicySummary summary;
  summary.governor = governor.name();
  for (const auto kind : workload::all_scenario_kinds()) {
    auto scenario = workload::make_scenario(kind, kEvalSeed);
    summary.runs.push_back(engine.run(*scenario, governor));
  }
  return summary;
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;

  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});

  // Train the policy across all scenarios (round-robin).
  rl::RlGovernor rl_policy(rl::RlGovernorConfig{},
                           engine.soc_config().clusters.size());
  rl::TrainerConfig train_cfg;
  train_cfg.episodes = episodes;
  rl::Trainer trainer(engine, rl_policy, train_cfg);
  std::printf("training %zu episodes...\n", episodes);
  trainer.train();
  // online evaluation: the policy keeps learning (paper: "adapts to variations")

  // Evaluate everything on held-out seeds.
  std::vector<core::PolicySummary> baselines;
  for (const auto& name : governors::baseline_governor_names()) {
    auto governor = governors::make_governor(name);
    baselines.push_back(evaluate(engine, *governor));
  }
  const core::PolicySummary ours = evaluate(engine, rl_policy);

  TextTable table({"policy", "mean E/QoS [J]", "mean energy [J]",
                   "violation rate", "vs RL"});
  auto add = [&](const core::PolicySummary& s) {
    const double rel = ours.mean_energy_per_qos() > 0.0
                           ? s.mean_energy_per_qos() /
                                 ours.mean_energy_per_qos()
                           : 0.0;
    table.add_row({s.governor, TextTable::num(s.mean_energy_per_qos(), 5),
                   TextTable::num(s.mean_energy_j(), 1),
                   TextTable::percent(s.mean_violation_rate()),
                   TextTable::num(rel, 2) + "x"});
  };
  for (const auto& b : baselines) add(b);
  add(ours);
  table.print();

  std::printf(
      "\nRL improvement, mean of per-governor savings: %.2f%%\n",
      100.0 * core::mean_improvement_vs_baselines(ours, baselines));
  std::printf(
      "RL improvement vs six-governor average E/QoS:  %.2f%% "
      "(paper: 31.66%%)\n",
      100.0 * core::improvement_vs_mean_baseline(ours, baselines));

  // Checkpoint the trained policy and prove a fresh governor restored from
  // it decides identically (how a pretrained policy would ship).
  {
    std::ofstream out("trained_policy.pmrl");
    rl::save_policy(rl_policy, out);
  }
  rl::RlGovernor restored(rl::RlGovernorConfig{},
                          engine.soc_config().clusters.size());
  {
    std::ifstream in("trained_policy.pmrl");
    rl::load_policy(restored, in);
  }
  restored.set_frozen(true);
  rl_policy.set_frozen(true);
  auto check_a = workload::make_scenario(workload::ScenarioKind::Mixed, 7);
  auto check_b = workload::make_scenario(workload::ScenarioKind::Mixed, 7);
  const auto run_a = engine.run(*check_a, rl_policy);
  const auto run_b = engine.run(*check_b, restored);
  std::printf(
      "\ncheckpoint round-trip (trained_policy.pmrl): restored policy %s "
      "(energy %.6f J vs %.6f J)\n",
      run_a.energy_j == run_b.energy_j ? "bit-identical" : "DIVERGED",
      run_a.energy_j, run_b.energy_j);
  return run_a.energy_j == run_b.energy_j ? 0 : 1;
}
