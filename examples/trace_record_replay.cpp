// Trace record & replay: records the exact job stream of a gaming-scenario
// run to CSV, replays it from the trace, and verifies the replayed run is
// bit-identical (same energy, same QoS) — the mechanism for evaluating
// every governor on the same workload.
//
//   ./build/examples/trace_record_replay [out.csv]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace.hpp"

using namespace pmrl;

namespace {
/// Scenario wrapper that records everything the inner scenario submits.
class RecordingScenario : public workload::Scenario {
 public:
  explicit RecordingScenario(workload::Scenario& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name(); }
  void setup(workload::WorkloadHost& host) override {
    recorder_.emplace(host);
    inner_.setup(*recorder_);
  }
  void tick(workload::WorkloadHost&, double now_s, double dt_s) override {
    recorder_->set_now(now_s);
    inner_.tick(*recorder_, now_s, dt_s);
  }
  workload::Trace take_trace() { return recorder_->take_trace(); }

 private:
  workload::Scenario& inner_;
  std::optional<workload::TraceRecorder> recorder_;
};
}  // namespace

int main(int argc, char** argv) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});
  auto governor = governors::make_governor("ondemand");

  // 1. Record a run.
  auto inner = workload::make_scenario(workload::ScenarioKind::Gaming, 123);
  RecordingScenario recording(*inner);
  const auto original = engine.run(recording, *governor);
  workload::Trace trace = recording.take_trace();
  std::printf("recorded: %zu tasks, %zu jobs\n", trace.tasks.size(),
              trace.jobs.size());

  // 2. Round-trip through CSV.
  std::stringstream csv;
  trace.save(csv);
  if (argc > 1) {
    std::ofstream file(argv[1]);
    file << csv.str();
    std::printf("trace written to %s\n", argv[1]);
  }
  workload::Trace loaded = workload::Trace::load(csv);

  // 3. Replay and compare.
  workload::TraceScenario replay(std::move(loaded), inner->name());
  const auto replayed = engine.run(replay, *governor);

  std::printf("original: energy %.6f J, quality %.3f, violations %zu\n",
              original.energy_j, original.quality, original.violations);
  std::printf("replayed: energy %.6f J, quality %.3f, violations %zu\n",
              replayed.energy_j, replayed.quality, replayed.violations);
  const bool identical = original.energy_j == replayed.energy_j &&
                         original.quality == replayed.quality &&
                         original.violations == replayed.violations;
  std::printf("replay %s\n", identical ? "bit-identical: OK" : "DIVERGED");
  return identical ? 0 : 1;
}
