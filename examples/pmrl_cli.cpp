// pmrl_cli — command-line driver over the library, for using the system
// without writing C++:
//
//   pmrl_cli list
//       Registered governors and available scenarios.
//   pmrl_cli train [--episodes N] [--seed S] [--out policy.pmrl]
//       Train the RL policy across the scenario rotation and checkpoint it.
//   pmrl_cli eval <governor|policy.pmrl> [--scenario NAME] [--seed S]
//                 [--duration SEC] [--fault-intensity X] [--fault-seed S]
//                 [--watchdog] [--jobs N] [--trace PATH]
//                 [--trace-format csv|jsonl] [--metrics PATH]
//       Evaluate a baseline governor by name, or a trained RL checkpoint,
//       on one scenario (or all six when omitted). A nonzero fault
//       intensity runs each scenario under its fault profile (telemetry
//       degradation + thermal emergencies); --watchdog wraps an RL policy
//       in the safe-governor fallback machinery. Corrupt checkpoints are
//       rejected (CRC32 + strict parsing) and fall back to fresh-init.
//       --trace records every structured event (epochs, decisions, faults,
//       watchdog trips) to PATH; traces are deterministic and independent
//       of --jobs. --metrics dumps the metrics registry as JSON to PATH
//       ('-' for stdout).
//   pmrl_cli latency [--invocations N]
//       Run the HW-vs-SW decision-latency comparison.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/runfarm/runfarm.hpp"
#include "fault/fault_injector.hpp"
#include "fault/scenario_faults.hpp"
#include "governors/registry.hpp"
#include "hw/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "rl/policy_io.hpp"
#include "rl/trainer.hpp"
#include "rl/watchdog.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::size_t episodes = 60;
  std::uint64_t seed = 42;
  double duration_s = 60.0;
  std::string out = "policy.pmrl";
  std::optional<std::string> scenario;
  double fault_intensity = 0.0;
  std::uint64_t fault_seed = 777;
  bool watchdog = false;
  /// Worker threads for farmable work (0 = PMRL_JOBS env, else hardware
  /// concurrency; 1 = serial).
  std::size_t jobs = 0;
  /// Structured trace output path (empty = tracing disabled).
  std::optional<std::string> trace_path;
  std::string trace_format = "csv";
  /// Metrics JSON output path ('-' = stdout; empty = metrics disabled).
  std::optional<std::string> metrics_path;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--episodes") {
      args.episodes = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      args.seed = std::stoull(next());
    } else if (arg == "--duration") {
      args.duration_s = std::stod(next());
    } else if (arg == "--out") {
      args.out = next();
    } else if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--fault-intensity") {
      args.fault_intensity = std::stod(next());
    } else if (arg == "--fault-seed") {
      args.fault_seed = std::stoull(next());
    } else if (arg == "--watchdog") {
      args.watchdog = true;
    } else if (arg == "--jobs") {
      args.jobs = static_cast<std::size_t>(std::stoul(next()));
      if (args.jobs == 0) throw std::runtime_error("--jobs must be >= 1");
    } else if (arg == "--trace") {
      args.trace_path = next();
    } else if (arg == "--trace-format") {
      args.trace_format = next();
      if (args.trace_format != "csv" && args.trace_format != "jsonl") {
        throw std::runtime_error("--trace-format must be csv or jsonl");
      }
    } else if (arg == "--metrics") {
      args.metrics_path = next();
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::optional<workload::ScenarioKind> kind_by_name(const std::string& name) {
  for (const auto kind : workload::all_scenario_kinds()) {
    if (name == workload::scenario_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

int cmd_list() {
  std::printf("governors:\n");
  for (const auto& name : governors::registered_governor_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("scenarios:\n");
  for (const auto kind : workload::all_scenario_kinds()) {
    std::printf("  %s\n", workload::scenario_kind_name(kind));
  }
  return 0;
}

int cmd_train(const Args& args) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});
  rl::RlGovernor policy(rl::RlGovernorConfig{},
                        engine.soc_config().clusters.size());
  rl::TrainerConfig config;
  config.episodes = args.episodes;
  config.workload_seed = args.seed;
  rl::Trainer trainer(engine, policy, config);
  std::printf("training %zu episodes (seed %llu)...\n", args.episodes,
              static_cast<unsigned long long>(args.seed));
  const auto curve = trainer.train();
  if (!curve.empty()) {
    std::printf("final episode: %s, E/QoS %.5f J, violations %.2f%%\n",
                curve.back().scenario.c_str(), curve.back().energy_per_qos,
                100.0 * curve.back().violation_rate);
  }
  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  rl::save_policy(policy, out);
  std::printf("checkpoint written to %s\n", args.out.c_str());
  return 0;
}

/// Writes `events` to `path` in the requested format; returns false (with
/// a message) when the file cannot be opened.
bool write_trace_file(const std::string& path, const std::string& format,
                      const std::vector<obs::TraceEvent>& events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  if (format == "jsonl") {
    obs::write_jsonl_trace(out, events);
  } else {
    obs::write_csv_trace(out, events, obs::trace_cluster_count(events));
  }
  return true;
}

bool write_metrics(const std::string& path,
                   const obs::MetricsRegistry& metrics) {
  if (path == "-") {
    std::printf("%s\n", metrics.to_json().c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
    return false;
  }
  metrics.write_json(out);
  out << "\n";
  return true;
}

int cmd_eval(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "eval needs a governor name or checkpoint path\n");
    return 1;
  }
  const std::string& target = args.positional[1];

  core::EngineConfig engine_config;
  engine_config.duration_s = args.duration_s;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  // Resolve the policy: a registered governor name, else an RL checkpoint.
  governors::GovernorPtr baseline;
  std::optional<rl::RlGovernor> rl_policy;
  std::optional<rl::PolicyWatchdog> watchdog;
  governors::Governor* policy = nullptr;
  if (governors::has_governor(target)) {
    baseline = governors::make_governor(target);
    policy = baseline.get();
  } else {
    std::ifstream in(target);
    if (!in) {
      std::fprintf(stderr, "no governor or readable checkpoint '%s'\n",
                   target.c_str());
      return 1;
    }
    rl_policy.emplace(rl::RlGovernorConfig{},
                      engine.soc_config().clusters.size());
    std::string load_error;
    if (rl::try_load_policy(*rl_policy, in, &load_error)) {
      std::printf("loaded RL checkpoint %s\n", target.c_str());
    } else {
      std::fprintf(stderr,
                   "checkpoint '%s' rejected: %s\n"
                   "continuing with a fresh-init policy.\n",
                   target.c_str(), load_error.c_str());
    }
    policy = &*rl_policy;
  }
  if (args.watchdog) {
    if (!rl_policy) {
      std::fprintf(stderr, "--watchdog requires an RL checkpoint target\n");
      return 1;
    }
    watchdog.emplace(*rl_policy, governors::make_governor("conservative"));
    policy = &*watchdog;
  }

  std::vector<workload::ScenarioKind> kinds;
  if (args.scenario) {
    const auto kind = kind_by_name(*args.scenario);
    if (!kind) {
      std::fprintf(stderr, "unknown scenario '%s'\n",
                   args.scenario->c_str());
      return 1;
    }
    kinds.push_back(*kind);
  } else {
    kinds = workload::all_scenario_kinds();
  }

  // Observability: one metrics registry for the whole eval (atomic
  // instruments aggregate across farm threads); tracing uses one
  // VectorTraceSink per scenario so the farmed trace, concatenated in
  // scenario order, is byte-identical to the serial one.
  obs::MetricsRegistry metrics;
  obs::MetricsRegistry* metrics_ptr =
      args.metrics_path ? &metrics : nullptr;
  const bool tracing = args.trace_path.has_value();
  std::vector<std::unique_ptr<obs::VectorTraceSink>> sinks;
  if (tracing) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      sinks.push_back(std::make_unique<obs::VectorTraceSink>());
    }
  }

  std::vector<core::RunResult> runs;
  if (baseline && !args.watchdog) {
    // Baseline governors are stateless across runs, so each scenario is an
    // independent farm task: task-local engine, fresh governor instance,
    // and (when faults are on) a task-local injector. Results are
    // bit-identical to the serial loop at any --jobs count.
    core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                                engine_config, args.jobs);
    farm.set_metrics(metrics_ptr);
    std::vector<std::function<core::RunResult()>> tasks;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const auto kind = kinds[i];
      obs::VectorTraceSink* sink = tracing ? sinks[i].get() : nullptr;
      tasks.push_back([&farm, &args, &target, kind, sink, metrics_ptr] {
        core::SimEngine run_engine(farm.soc_config(), farm.engine_config());
        run_engine.set_trace_sink(sink);
        run_engine.set_metrics(metrics_ptr);
        std::optional<fault::FaultInjector> injector;
        if (args.fault_intensity > 0.0) {
          injector.emplace(fault::scenario_fault_profile(
              kind, args.fault_intensity,
              args.fault_seed + static_cast<std::uint64_t>(kind)));
          injector->set_trace_sink(sink);
          injector->set_metrics(metrics_ptr);
          run_engine.set_fault_injector(&*injector);
        }
        auto governor = governors::make_governor(target);
        auto scenario = workload::make_scenario(kind, args.seed);
        return run_engine.run(*scenario, *governor);
      });
    }
    runs = farm.map<core::RunResult>(tasks);
  } else {
    // An RL checkpoint (or its watchdog wrapper) carries learned state
    // across runs, so its scenarios stay serial on the shared instance.
    engine.set_metrics(metrics_ptr);
    if (rl_policy) rl_policy->set_metrics(metrics_ptr);
    if (watchdog) watchdog->set_metrics(metrics_ptr);
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const auto kind = kinds[i];
      obs::VectorTraceSink* sink = tracing ? sinks[i].get() : nullptr;
      engine.set_trace_sink(sink);
      if (rl_policy) rl_policy->set_trace_sink(sink);
      if (watchdog) watchdog->set_trace_sink(sink);
      std::optional<fault::FaultInjector> injector;
      if (args.fault_intensity > 0.0) {
        injector.emplace(fault::scenario_fault_profile(
            kind, args.fault_intensity,
            args.fault_seed + static_cast<std::uint64_t>(kind)));
        injector->set_trace_sink(sink);
        injector->set_metrics(metrics_ptr);
        engine.set_fault_injector(&*injector);
      }
      auto scenario = workload::make_scenario(kind, args.seed);
      runs.push_back(engine.run(*scenario, *policy));
      engine.set_fault_injector(nullptr);
    }
    engine.set_trace_sink(nullptr);
  }

  if (tracing) {
    std::vector<obs::TraceEvent> events;
    for (auto& sink : sinks) {
      auto part = sink->take();
      events.insert(events.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    if (!write_trace_file(*args.trace_path, args.trace_format, events)) {
      return 1;
    }
    std::printf("trace: %zu events -> %s (%s)\n", events.size(),
                args.trace_path->c_str(), args.trace_format.c_str());
  }
  if (args.metrics_path && !write_metrics(*args.metrics_path, metrics)) {
    return 1;
  }

  TextTable table({"scenario", "energy [J]", "E/QoS [J]", "viol rate",
                   "f_little [MHz]", "f_big [MHz]"});
  for (const auto& run : runs) {
    table.add_row({run.scenario, TextTable::num(run.energy_j, 1),
                   TextTable::num(run.energy_per_qos, 5),
                   TextTable::percent(run.violation_rate),
                   TextTable::num(run.mean_freq_hz.front() / 1e6, 0),
                   TextTable::num(run.mean_freq_hz.back() / 1e6, 0)});
  }
  std::printf("policy: %s\n", policy->name().c_str());
  if (args.fault_intensity > 0.0) {
    std::printf("fault intensity: %.2f (seed %llu)\n", args.fault_intensity,
                static_cast<unsigned long long>(args.fault_seed));
  }
  table.print();
  if (watchdog) {
    std::printf(
        "watchdog: %zu engagement(s), %zu/%zu epochs on fallback\n",
        watchdog->engagements(), watchdog->fallback_epochs(),
        watchdog->total_epochs());
  }
  return 0;
}

int cmd_latency(const Args& args) {
  const std::size_t invocations =
      args.positional.size() > 1 ? std::stoul(args.positional[1]) : 10000;
  hw::LatencyExperimentConfig config;
  const auto stream = hw::synthetic_stream(1024, invocations, args.seed);
  const auto result = hw::run_latency_experiment(config, 1024, 9, stream);
  std::printf("software  %.3f us mean\n", result.sw_latency_s.mean() * 1e6);
  std::printf("hw e2e    %.3f us mean  (%.2fx)\n",
              result.hw_end_to_end_s.mean() * 1e6,
              result.mean_speedup_end_to_end());
  std::printf("hw raw    %.3f us mean  (%.2fx)\n",
              result.hw_raw_s.mean() * 1e6, result.mean_speedup_raw());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.positional.empty() || args.positional[0] == "help") {
      std::printf(
          "usage: pmrl_cli <list|train|eval|latency> [options]\n"
          "  list\n"
          "  train  [--episodes N] [--seed S] [--out policy.pmrl]\n"
          "  eval   <governor|policy.pmrl> [--scenario NAME] [--seed S]\n"
          "         [--duration SEC] [--fault-intensity X] [--fault-seed S]\n"
          "         [--watchdog] [--jobs N] [--trace PATH]\n"
          "         [--trace-format csv|jsonl] [--metrics PATH|-]\n"
          "  latency [N] [--seed S]\n");
      return args.positional.empty() ? 1 : 0;
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "latency") return cmd_latency(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
