// pmrl_cli — command-line driver over the library, for using the system
// without writing C++:
//
//   pmrl_cli list
//       Registered governors and available scenarios.
//   pmrl_cli train [--episodes N] [--seed S] [--out policy.pmrl]
//       Train the RL policy across the scenario rotation and checkpoint it.
//   pmrl_cli eval <governor|policy.pmrl> [--scenario NAME] [--seed S]
//                 [--duration SEC] [--fault-intensity X] [--fault-seed S]
//                 [--watchdog] [--jobs N]
//       Evaluate a baseline governor by name, or a trained RL checkpoint,
//       on one scenario (or all six when omitted). A nonzero fault
//       intensity runs each scenario under its fault profile (telemetry
//       degradation + thermal emergencies); --watchdog wraps an RL policy
//       in the safe-governor fallback machinery. Corrupt checkpoints are
//       rejected (CRC32 + strict parsing) and fall back to fresh-init.
//   pmrl_cli latency [--invocations N]
//       Run the HW-vs-SW decision-latency comparison.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/runfarm/runfarm.hpp"
#include "fault/fault_injector.hpp"
#include "fault/scenario_faults.hpp"
#include "governors/registry.hpp"
#include "hw/latency.hpp"
#include "rl/policy_io.hpp"
#include "rl/trainer.hpp"
#include "rl/watchdog.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::size_t episodes = 60;
  std::uint64_t seed = 42;
  double duration_s = 60.0;
  std::string out = "policy.pmrl";
  std::optional<std::string> scenario;
  double fault_intensity = 0.0;
  std::uint64_t fault_seed = 777;
  bool watchdog = false;
  /// Worker threads for farmable work (0 = PMRL_JOBS env, else hardware
  /// concurrency; 1 = serial).
  std::size_t jobs = 0;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--episodes") {
      args.episodes = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      args.seed = std::stoull(next());
    } else if (arg == "--duration") {
      args.duration_s = std::stod(next());
    } else if (arg == "--out") {
      args.out = next();
    } else if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--fault-intensity") {
      args.fault_intensity = std::stod(next());
    } else if (arg == "--fault-seed") {
      args.fault_seed = std::stoull(next());
    } else if (arg == "--watchdog") {
      args.watchdog = true;
    } else if (arg == "--jobs") {
      args.jobs = static_cast<std::size_t>(std::stoul(next()));
      if (args.jobs == 0) throw std::runtime_error("--jobs must be >= 1");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::optional<workload::ScenarioKind> kind_by_name(const std::string& name) {
  for (const auto kind : workload::all_scenario_kinds()) {
    if (name == workload::scenario_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

int cmd_list() {
  std::printf("governors:\n");
  for (const auto& name : governors::registered_governor_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("scenarios:\n");
  for (const auto kind : workload::all_scenario_kinds()) {
    std::printf("  %s\n", workload::scenario_kind_name(kind));
  }
  return 0;
}

int cmd_train(const Args& args) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});
  rl::RlGovernor policy(rl::RlGovernorConfig{},
                        engine.soc_config().clusters.size());
  rl::TrainerConfig config;
  config.episodes = args.episodes;
  config.workload_seed = args.seed;
  rl::Trainer trainer(engine, policy, config);
  std::printf("training %zu episodes (seed %llu)...\n", args.episodes,
              static_cast<unsigned long long>(args.seed));
  const auto curve = trainer.train();
  if (!curve.empty()) {
    std::printf("final episode: %s, E/QoS %.5f J, violations %.2f%%\n",
                curve.back().scenario.c_str(), curve.back().energy_per_qos,
                100.0 * curve.back().violation_rate);
  }
  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  rl::save_policy(policy, out);
  std::printf("checkpoint written to %s\n", args.out.c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "eval needs a governor name or checkpoint path\n");
    return 1;
  }
  const std::string& target = args.positional[1];

  core::EngineConfig engine_config;
  engine_config.duration_s = args.duration_s;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  // Resolve the policy: a registered governor name, else an RL checkpoint.
  governors::GovernorPtr baseline;
  std::optional<rl::RlGovernor> rl_policy;
  std::optional<rl::PolicyWatchdog> watchdog;
  governors::Governor* policy = nullptr;
  if (governors::has_governor(target)) {
    baseline = governors::make_governor(target);
    policy = baseline.get();
  } else {
    std::ifstream in(target);
    if (!in) {
      std::fprintf(stderr, "no governor or readable checkpoint '%s'\n",
                   target.c_str());
      return 1;
    }
    rl_policy.emplace(rl::RlGovernorConfig{},
                      engine.soc_config().clusters.size());
    std::string load_error;
    if (rl::try_load_policy(*rl_policy, in, &load_error)) {
      std::printf("loaded RL checkpoint %s\n", target.c_str());
    } else {
      std::fprintf(stderr,
                   "checkpoint '%s' rejected: %s\n"
                   "continuing with a fresh-init policy.\n",
                   target.c_str(), load_error.c_str());
    }
    policy = &*rl_policy;
  }
  if (args.watchdog) {
    if (!rl_policy) {
      std::fprintf(stderr, "--watchdog requires an RL checkpoint target\n");
      return 1;
    }
    watchdog.emplace(*rl_policy, governors::make_governor("conservative"));
    policy = &*watchdog;
  }

  std::vector<workload::ScenarioKind> kinds;
  if (args.scenario) {
    const auto kind = kind_by_name(*args.scenario);
    if (!kind) {
      std::fprintf(stderr, "unknown scenario '%s'\n",
                   args.scenario->c_str());
      return 1;
    }
    kinds.push_back(*kind);
  } else {
    kinds = workload::all_scenario_kinds();
  }

  std::vector<core::RunResult> runs;
  if (baseline && !args.watchdog) {
    // Baseline governors are stateless across runs, so each scenario is an
    // independent farm task: task-local engine, fresh governor instance,
    // and (when faults are on) a task-local injector. Results are
    // bit-identical to the serial loop at any --jobs count.
    core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                                engine_config, args.jobs);
    std::vector<std::function<core::RunResult()>> tasks;
    for (const auto kind : kinds) {
      tasks.push_back([&farm, &args, &target, kind] {
        core::SimEngine run_engine(farm.soc_config(), farm.engine_config());
        std::optional<fault::FaultInjector> injector;
        if (args.fault_intensity > 0.0) {
          injector.emplace(fault::scenario_fault_profile(
              kind, args.fault_intensity,
              args.fault_seed + static_cast<std::uint64_t>(kind)));
          run_engine.set_fault_injector(&*injector);
        }
        auto governor = governors::make_governor(target);
        auto scenario = workload::make_scenario(kind, args.seed);
        return run_engine.run(*scenario, *governor);
      });
    }
    runs = farm.map<core::RunResult>(tasks);
  } else {
    // An RL checkpoint (or its watchdog wrapper) carries learned state
    // across runs, so its scenarios stay serial on the shared instance.
    for (const auto kind : kinds) {
      std::optional<fault::FaultInjector> injector;
      if (args.fault_intensity > 0.0) {
        injector.emplace(fault::scenario_fault_profile(
            kind, args.fault_intensity,
            args.fault_seed + static_cast<std::uint64_t>(kind)));
        engine.set_fault_injector(&*injector);
      }
      auto scenario = workload::make_scenario(kind, args.seed);
      runs.push_back(engine.run(*scenario, *policy));
      engine.set_fault_injector(nullptr);
    }
  }

  TextTable table({"scenario", "energy [J]", "E/QoS [J]", "viol rate",
                   "f_little [MHz]", "f_big [MHz]"});
  for (const auto& run : runs) {
    table.add_row({run.scenario, TextTable::num(run.energy_j, 1),
                   TextTable::num(run.energy_per_qos, 5),
                   TextTable::percent(run.violation_rate),
                   TextTable::num(run.mean_freq_hz.front() / 1e6, 0),
                   TextTable::num(run.mean_freq_hz.back() / 1e6, 0)});
  }
  std::printf("policy: %s\n", policy->name().c_str());
  if (args.fault_intensity > 0.0) {
    std::printf("fault intensity: %.2f (seed %llu)\n", args.fault_intensity,
                static_cast<unsigned long long>(args.fault_seed));
  }
  table.print();
  if (watchdog) {
    std::printf(
        "watchdog: %zu engagement(s), %zu/%zu epochs on fallback\n",
        watchdog->engagements(), watchdog->fallback_epochs(),
        watchdog->total_epochs());
  }
  return 0;
}

int cmd_latency(const Args& args) {
  const std::size_t invocations =
      args.positional.size() > 1 ? std::stoul(args.positional[1]) : 10000;
  hw::LatencyExperimentConfig config;
  const auto stream = hw::synthetic_stream(1024, invocations, args.seed);
  const auto result = hw::run_latency_experiment(config, 1024, 9, stream);
  std::printf("software  %.3f us mean\n", result.sw_latency_s.mean() * 1e6);
  std::printf("hw e2e    %.3f us mean  (%.2fx)\n",
              result.hw_end_to_end_s.mean() * 1e6,
              result.mean_speedup_end_to_end());
  std::printf("hw raw    %.3f us mean  (%.2fx)\n",
              result.hw_raw_s.mean() * 1e6, result.mean_speedup_raw());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.positional.empty() || args.positional[0] == "help") {
      std::printf(
          "usage: pmrl_cli <list|train|eval|latency> [options]\n"
          "  list\n"
          "  train  [--episodes N] [--seed S] [--out policy.pmrl]\n"
          "  eval   <governor|policy.pmrl> [--scenario NAME] [--seed S]\n"
          "         [--duration SEC] [--fault-intensity X] [--fault-seed S]\n"
          "         [--watchdog] [--jobs N]\n"
          "  latency [N] [--seed S]\n");
      return args.positional.empty() ? 1 : 0;
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "latency") return cmd_latency(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
