// pmrl_cli — command-line driver over the library, for using the system
// without writing C++:
//
//   pmrl_cli list
//       Registered governors and available scenarios.
//   pmrl_cli train [--episodes N] [--seed S] [--actors N] [--jobs N]
//                  [--merge-seed S] [--out policy.pmrl] [--registry DIR]
//       Train the RL policy across the scenario rotation with N parallel
//       actors on the run farm, merge the per-actor Q-table deltas with the
//       seeded order-independent reducer, and checkpoint the merged policy.
//       The merged table is bit-identical at any --jobs count and any actor
//       completion order. --registry registers the result as a versioned
//       candidate (with lineage metadata) instead of just a loose file.
//   pmrl_cli eval <governor|policy.pmrl> [--scenario NAME] [--seed S]
//                 [--duration SEC] [--fault-intensity X] [--fault-seed S]
//                 [--watchdog] [--jobs N] [--trace PATH]
//                 [--trace-format csv|jsonl] [--metrics PATH]
//       Evaluate a baseline governor by name, or a trained RL checkpoint,
//       on one scenario (or all six when omitted). A nonzero fault
//       intensity runs each scenario under its fault profile (telemetry
//       degradation + thermal emergencies); --watchdog wraps an RL policy
//       in the safe-governor fallback machinery. Corrupt checkpoints are
//       rejected (CRC32 + strict parsing) and fall back to fresh-init.
//       --trace records every structured event (epochs, decisions, faults,
//       watchdog trips) to PATH; traces are deterministic and independent
//       of --jobs. --metrics dumps the metrics registry as JSON to PATH
//       ('-' for stdout).
//   pmrl_cli latency [--invocations N]
//       Run the HW-vs-SW decision-latency comparison.
//   pmrl_cli serve [--policy policy.pmrl] [--registry DIR] [--uds PATH]
//                  [--tcp-port N] [--shm PATH [--shm-lanes N]] [--workers N]
//                  [--batch N] [--batch-deadline-us N] [--queue-capacity N]
//                  [--cache-capacity N] [--metrics PATH|-] [--canary PCT]
//                  [--candidate VERSION] [--canary-threshold X]
//                  [--canary-window N] [--canary-settle N]
//       Expose a trained policy as a decision service over a Unix-domain
//       socket, TCP, and/or a shared-memory segment (for co-located
//       clients). SIGHUP hot-reloads the checkpoint (transactional: a
//       corrupt file keeps the old policy); SIGINT/SIGTERM shut down.
//       With --registry, the incumbent loads from the promoted CURRENT
//       version and --canary PCT stages a candidate (--candidate VERSION,
//       else the latest candidate) serving PCT%% of connections; client
//       outcome reports drive automatic promote/rollback (the canary
//       evaluator compares per-arm energy-per-QoS over settle windows).
//       SIGHUP also re-stages the next candidate after a verdict.
//   pmrl_cli query <state> [--agent N]
//                  (--uds PATH | --tcp-port N [--host H] | --shm PATH)
//       Ask a running server for the greedy action of one quantized state.
//   pmrl_cli policy <list|show V|promote V|rollback V> --registry DIR
//       Inspect and drive the policy lifecycle: list versions with lineage
//       and status, show one entry, promote a version to CURRENT, or mark
//       a version rolled back.
//   pmrl_cli fuzz [--seed S] [--runs N] [--jobs N] [--governor NAME]
//                 [--max-energy J] [--max-violation-rate X]
//                 [--max-peak-temp C] [--shrink] [--corpus-dir DIR]
//                 [--metrics PATH|-]
//       Generate and run N randomized scenarios from seeds [S, S+N) under
//       the RL policy + watchdog (or any registered governor), checking the
//       engine/watchdog/policy invariants after every run. The batch is
//       bit-identical at any --jobs count. --shrink delta-debugs each
//       failing scenario to a minimal reproducer; --corpus-dir writes the
//       minimized .scenario files there (with provenance comments) for
//       check-in under tests/data/scenarios/. Exits 1 when any scenario
//       fails, so CI sweeps turn findings into red builds + artifacts.
//   pmrl_cli fleet [--devices N] [--seed S] [--duration SEC] [--jobs N]
//                  [--block N] [--trace PATH] [--trace-format csv|jsonl]
//                  [--metrics PATH|-]
//       Simulate a fleet of N seeded heterogeneous devices with the SoA
//       batch engine and print the aggregate energy/QoS summary. Results
//       are bit-identical at any --jobs count. --trace writes the
//       fleet-wide epoch series (time, energy, served, demand, violations)
//       as CSV or JSONL; --metrics dumps the fleet.* metrics registry.
//   pmrl_cli replay <file> [--format scenario|jsonl|util] [--governor NAME]
//       Re-run a recorded artifact as a first-class scenario: a minimized
//       .scenario corpus entry (exits 1 if its invariants still fail), a
//       structured --trace jsonl recording, or an external utilization
//       trace ("time util0 [util1 ...]" rows; percent scales are
//       auto-normalized). Malformed inputs are rejected with the offending
//       line number.
//
// Unknown flags or subcommands print usage and exit 2. --version prints the
// library version and the subcommand roster.

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/fuzz_driver.hpp"
#include "core/metrics.hpp"
#include "core/runfarm/runfarm.hpp"
#include "fault/fault_injector.hpp"
#include "fleet/fleet_engine.hpp"
#include "fault/scenario_faults.hpp"
#include "governors/registry.hpp"
#include "hw/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "policy/registry.hpp"
#include "rl/policy_io.hpp"
#include "rl/trainer.hpp"
#include "rl/watchdog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/shm_ring.hpp"
#include "train/distributed_trainer.hpp"
#include "util/table.hpp"
#include "workload/fuzz.hpp"
#include "workload/replay.hpp"
#include "workload/scenarios.hpp"

#ifndef PMRL_VERSION
#define PMRL_VERSION "dev"
#endif

using namespace pmrl;

namespace {

/// Command-line misuse (unknown flag/command, bad value): usage + exit 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  std::size_t episodes = 60;
  std::uint64_t seed = 42;
  double duration_s = 60.0;
  std::string out = "policy.pmrl";
  std::optional<std::string> scenario;
  double fault_intensity = 0.0;
  std::uint64_t fault_seed = 777;
  bool watchdog = false;
  /// Worker threads for farmable work (0 = PMRL_JOBS env, else hardware
  /// concurrency; 1 = serial).
  std::size_t jobs = 0;
  /// Structured trace output path (empty = tracing disabled).
  std::optional<std::string> trace_path;
  std::string trace_format = "csv";
  /// Metrics JSON output path ('-' = stdout; empty = metrics disabled).
  std::optional<std::string> metrics_path;
  // serve / query
  std::string uds;
  std::string host = "127.0.0.1";
  int tcp_port = -1;  // -1 = TCP listener disabled
  std::string shm;   // shared-memory segment path (empty = disabled)
  std::size_t shm_lanes = 4;
  std::size_t workers = 4;
  std::size_t batch = 32;
  std::size_t batch_deadline_us = 200;
  std::size_t queue_capacity = 1024;
  std::size_t cache_capacity = 4096;
  std::uint32_t agent = 0;
  std::string policy_path;
  bool show_version = false;
  // train / policy lifecycle
  std::size_t actors = 4;
  std::uint64_t merge_seed = 1;
  std::string registry;
  double canary_pct = 0.0;
  std::uint64_t candidate = 0;  // 0 = latest candidate in the registry
  double canary_threshold = 0.05;
  std::size_t canary_window = 32;
  std::size_t canary_settle = 2;
  // fuzz / replay
  std::size_t runs = 64;
  std::string governor = "rl";
  double max_energy_j = std::numeric_limits<double>::infinity();
  double max_violation_rate = 1.0;
  double max_peak_temp_c = std::numeric_limits<double>::infinity();
  bool shrink = false;
  std::optional<std::string> corpus_dir;
  /// Replay input format (empty = infer from the file extension).
  std::string format;
  // fleet
  std::size_t devices = 100000;
  std::size_t block = 4096;
  double budget_w = 0.0;  // global cap, watts (0 = unbudgeted)
  std::string budget_policy = "demand";
  std::size_t budget_groups = 8;
  double budget_floor = 0.05;
  std::vector<budget::CapStep> budget_steps;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--episodes") {
      args.episodes = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      args.seed = std::stoull(next());
    } else if (arg == "--duration") {
      args.duration_s = std::stod(next());
    } else if (arg == "--out") {
      args.out = next();
    } else if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--fault-intensity") {
      args.fault_intensity = std::stod(next());
    } else if (arg == "--fault-seed") {
      args.fault_seed = std::stoull(next());
    } else if (arg == "--watchdog") {
      args.watchdog = true;
    } else if (arg == "--jobs") {
      args.jobs = static_cast<std::size_t>(std::stoul(next()));
      if (args.jobs == 0) throw UsageError("--jobs must be >= 1");
    } else if (arg == "--trace") {
      args.trace_path = next();
    } else if (arg == "--trace-format") {
      args.trace_format = next();
      if (args.trace_format != "csv" && args.trace_format != "jsonl") {
        throw UsageError("--trace-format must be csv or jsonl");
      }
    } else if (arg == "--metrics") {
      args.metrics_path = next();
    } else if (arg == "--uds") {
      args.uds = next();
    } else if (arg == "--host") {
      args.host = next();
    } else if (arg == "--tcp-port") {
      args.tcp_port = std::stoi(next());
      if (args.tcp_port < 0 || args.tcp_port > 65535) {
        throw UsageError("--tcp-port must be in [0, 65535]");
      }
    } else if (arg == "--shm") {
      args.shm = next();
    } else if (arg == "--shm-lanes") {
      args.shm_lanes = static_cast<std::size_t>(std::stoul(next()));
      if (args.shm_lanes == 0) throw UsageError("--shm-lanes must be >= 1");
    } else if (arg == "--workers") {
      args.workers = static_cast<std::size_t>(std::stoul(next()));
      if (args.workers == 0) throw UsageError("--workers must be >= 1");
    } else if (arg == "--batch") {
      args.batch = static_cast<std::size_t>(std::stoul(next()));
      if (args.batch == 0) throw UsageError("--batch must be >= 1");
    } else if (arg == "--batch-deadline-us") {
      args.batch_deadline_us = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--queue-capacity") {
      args.queue_capacity = static_cast<std::size_t>(std::stoul(next()));
      if (args.queue_capacity == 0) {
        throw UsageError("--queue-capacity must be >= 1");
      }
    } else if (arg == "--cache-capacity") {
      args.cache_capacity = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--agent") {
      args.agent = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--policy") {
      args.policy_path = next();
    } else if (arg == "--actors") {
      args.actors = static_cast<std::size_t>(std::stoul(next()));
      if (args.actors == 0) throw UsageError("--actors must be >= 1");
    } else if (arg == "--merge-seed") {
      args.merge_seed = std::stoull(next());
    } else if (arg == "--registry") {
      args.registry = next();
    } else if (arg == "--canary") {
      args.canary_pct = std::stod(next());
      if (args.canary_pct < 0.0 || args.canary_pct > 100.0) {
        throw UsageError("--canary must be in [0, 100]");
      }
    } else if (arg == "--candidate") {
      args.candidate = std::stoull(next());
    } else if (arg == "--canary-threshold") {
      args.canary_threshold = std::stod(next());
      if (args.canary_threshold < 0.0) {
        throw UsageError("--canary-threshold must be >= 0");
      }
    } else if (arg == "--canary-window") {
      args.canary_window = static_cast<std::size_t>(std::stoul(next()));
      if (args.canary_window == 0) {
        throw UsageError("--canary-window must be >= 1");
      }
    } else if (arg == "--canary-settle") {
      args.canary_settle = static_cast<std::size_t>(std::stoul(next()));
      if (args.canary_settle == 0) {
        throw UsageError("--canary-settle must be >= 1");
      }
    } else if (arg == "--runs") {
      args.runs = static_cast<std::size_t>(std::stoul(next()));
      if (args.runs == 0) throw UsageError("--runs must be >= 1");
    } else if (arg == "--governor") {
      args.governor = next();
    } else if (arg == "--max-energy") {
      args.max_energy_j = std::stod(next());
    } else if (arg == "--max-violation-rate") {
      args.max_violation_rate = std::stod(next());
    } else if (arg == "--max-peak-temp") {
      args.max_peak_temp_c = std::stod(next());
    } else if (arg == "--shrink") {
      args.shrink = true;
    } else if (arg == "--corpus-dir") {
      args.corpus_dir = next();
      args.shrink = true;  // writing the corpus implies minimizing first
    } else if (arg == "--devices") {
      args.devices = static_cast<std::size_t>(std::stoul(next()));
      if (args.devices == 0) throw UsageError("--devices must be >= 1");
    } else if (arg == "--block") {
      args.block = static_cast<std::size_t>(std::stoul(next()));
      if (args.block == 0) throw UsageError("--block must be >= 1");
    } else if (arg == "--budget") {
      args.budget_w = std::stod(next());
      if (!(args.budget_w > 0.0)) throw UsageError("--budget must be > 0 W");
    } else if (arg == "--budget-policy") {
      args.budget_policy = next();
      if (!budget::is_policy_name(args.budget_policy)) {
        throw UsageError("--budget-policy must be uniform, demand, or rl");
      }
    } else if (arg == "--budget-groups") {
      args.budget_groups = static_cast<std::size_t>(std::stoul(next()));
      if (args.budget_groups == 0) {
        throw UsageError("--budget-groups must be >= 1");
      }
    } else if (arg == "--budget-floor") {
      args.budget_floor = std::stod(next());
      if (args.budget_floor < 0.0) {
        throw UsageError("--budget-floor must be >= 0");
      }
    } else if (arg == "--budget-step") {
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= v.size()) {
        throw UsageError("--budget-step expects TIME:WATTS");
      }
      budget::CapStep step;
      step.time_s = std::stod(v.substr(0, colon));
      step.cap_w = std::stod(v.substr(colon + 1));
      if (step.time_s < 0.0 || !(step.cap_w > 0.0)) {
        throw UsageError("--budget-step expects TIME >= 0 and WATTS > 0");
      }
      args.budget_steps.push_back(step);
    } else if (arg == "--format") {
      args.format = next();
      if (args.format != "scenario" && args.format != "jsonl" &&
          args.format != "util") {
        throw UsageError("--format must be scenario, jsonl, or util");
      }
    } else if (arg == "--version") {
      args.show_version = true;
    } else if (arg == "--help" || arg == "-h") {
      args.positional.insert(args.positional.begin(), "help");
    } else if (arg.rfind("--", 0) == 0) {
      throw UsageError("unknown flag '" + arg + "'");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::optional<workload::ScenarioKind> kind_by_name(const std::string& name) {
  for (const auto kind : workload::all_scenario_kinds()) {
    if (name == workload::scenario_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

int cmd_list() {
  std::printf("governors:\n");
  for (const auto& name : governors::registered_governor_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("scenarios:\n");
  for (const auto kind : workload::all_scenario_kinds()) {
    std::printf("  %s\n", workload::scenario_kind_name(kind));
  }
  return 0;
}

int cmd_train(const Args& args) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              core::EngineConfig{}, args.jobs);
  rl::RlGovernorConfig policy_config;
  policy_config.learning.seed = args.seed;
  const std::size_t clusters = farm.soc_config().clusters.size();

  train::DistributedTrainerConfig config;
  config.schedule.episodes = args.episodes;
  config.schedule.workload_seed = args.seed;
  config.actors = args.actors;
  config.merge_seed = args.merge_seed;
  train::DistributedTrainer trainer(farm, policy_config, clusters, config);

  std::printf(
      "training %zu episodes across %zu actor(s) "
      "(seed %llu, merge seed %llu, %zu job(s))...\n",
      args.episodes, trainer.config().actors,
      static_cast<unsigned long long>(args.seed),
      static_cast<unsigned long long>(args.merge_seed), farm.jobs());
  rl::RlGovernor merged(policy_config, clusters);
  const auto result = trainer.train(merged);
  if (!result.curve.empty()) {
    const auto& last = result.curve.back();
    std::printf("final episode: %s, E/QoS %.5f J, violations %.2f%%\n",
                last.scenario.c_str(), last.energy_per_qos,
                100.0 * last.violation_rate);
  }

  if (!args.registry.empty()) {
    policy::PolicyRegistry registry(args.registry);
    policy::PolicyMeta meta;
    meta.parent_version = registry.current().value_or(0);
    meta.train_seed = args.seed;
    meta.merge_seed = args.merge_seed;
    meta.episodes = args.episodes;
    meta.actors = result.actors;
    const std::uint64_t version = registry.add(merged, meta);
    std::printf("registered candidate v%llu in %s (parent v%llu)\n",
                static_cast<unsigned long long>(version),
                args.registry.c_str(),
                static_cast<unsigned long long>(meta.parent_version));
  }

  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  rl::save_policy(merged, out);
  std::printf("checkpoint written to %s\n", args.out.c_str());
  return 0;
}

int cmd_policy(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr,
                 "policy needs a verb: list, show, promote, rollback\n");
    return 1;
  }
  if (args.registry.empty()) {
    std::fprintf(stderr, "policy needs --registry DIR\n");
    return 1;
  }
  policy::PolicyRegistry registry(args.registry);
  const std::string& verb = args.positional[1];
  const auto version_arg = [&]() -> std::uint64_t {
    if (args.positional.size() < 3) {
      throw UsageError("policy " + verb + " needs a version number");
    }
    return std::stoull(args.positional[2]);
  };

  if (verb == "list") {
    const auto current = registry.current();
    TextTable table({"version", "status", "parent", "episodes", "actors",
                     "train seed", ""});
    for (const auto& meta : registry.list()) {
      table.add_row({std::to_string(meta.version),
                     policy_status_name(meta.status),
                     meta.parent_version ? std::to_string(meta.parent_version)
                                         : "-",
                     std::to_string(meta.episodes),
                     std::to_string(meta.actors),
                     std::to_string(meta.train_seed),
                     current && *current == meta.version ? "<- CURRENT" : ""});
    }
    table.print();
    return 0;
  }
  if (verb == "show") {
    const std::uint64_t version = version_arg();
    const auto meta = registry.meta(version);
    if (!meta) {
      std::fprintf(stderr, "no such version %llu in %s\n",
                   static_cast<unsigned long long>(version),
                   args.registry.c_str());
      return 1;
    }
    std::printf("version:    %llu\n",
                static_cast<unsigned long long>(meta->version));
    std::printf("status:     %s\n", policy_status_name(meta->status));
    std::printf("parent:     %llu\n",
                static_cast<unsigned long long>(meta->parent_version));
    std::printf("train seed: %llu\n",
                static_cast<unsigned long long>(meta->train_seed));
    std::printf("merge seed: %llu\n",
                static_cast<unsigned long long>(meta->merge_seed));
    std::printf("episodes:   %llu\n",
                static_cast<unsigned long long>(meta->episodes));
    std::printf("actors:     %llu\n",
                static_cast<unsigned long long>(meta->actors));
    if (!meta->note.empty()) std::printf("note:       %s\n",
                                         meta->note.c_str());
    std::printf("checkpoint: %s\n",
                registry.policy_path(version).string().c_str());
    return 0;
  }
  if (verb == "promote") {
    const std::uint64_t version = version_arg();
    registry.promote(version);
    std::printf("promoted v%llu (CURRENT)\n",
                static_cast<unsigned long long>(version));
    return 0;
  }
  if (verb == "rollback") {
    const std::uint64_t version = version_arg();
    registry.rollback(version);
    std::printf("rolled back v%llu\n",
                static_cast<unsigned long long>(version));
    return 0;
  }
  throw UsageError("unknown policy verb '" + verb + "'");
}

/// Writes `events` to `path` in the requested format; returns false (with
/// a message) when the file cannot be opened.
bool write_trace_file(const std::string& path, const std::string& format,
                      const std::vector<obs::TraceEvent>& events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  if (format == "jsonl") {
    obs::write_jsonl_trace(out, events);
  } else {
    obs::write_csv_trace(out, events, obs::trace_cluster_count(events));
  }
  return true;
}

bool write_metrics(const std::string& path,
                   const obs::MetricsRegistry& metrics) {
  if (path == "-") {
    std::printf("%s\n", metrics.to_json().c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
    return false;
  }
  metrics.write_json(out);
  out << "\n";
  return true;
}

int cmd_eval(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "eval needs a governor name or checkpoint path\n");
    return 1;
  }
  const std::string& target = args.positional[1];

  core::EngineConfig engine_config;
  engine_config.duration_s = args.duration_s;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  // Resolve the policy: a registered governor name, else an RL checkpoint.
  governors::GovernorPtr baseline;
  std::optional<rl::RlGovernor> rl_policy;
  std::optional<rl::PolicyWatchdog> watchdog;
  governors::Governor* policy = nullptr;
  if (governors::has_governor(target)) {
    baseline = governors::make_governor(target);
    policy = baseline.get();
  } else {
    std::ifstream in(target);
    if (!in) {
      std::fprintf(stderr, "no governor or readable checkpoint '%s'\n",
                   target.c_str());
      return 1;
    }
    rl_policy.emplace(rl::RlGovernorConfig{},
                      engine.soc_config().clusters.size());
    std::string load_error;
    if (rl::try_load_policy(*rl_policy, in, &load_error)) {
      std::printf("loaded RL checkpoint %s\n", target.c_str());
    } else {
      std::fprintf(stderr,
                   "checkpoint '%s' rejected: %s\n"
                   "continuing with a fresh-init policy.\n",
                   target.c_str(), load_error.c_str());
    }
    policy = &*rl_policy;
  }
  if (args.watchdog) {
    if (!rl_policy) {
      std::fprintf(stderr, "--watchdog requires an RL checkpoint target\n");
      return 1;
    }
    watchdog.emplace(*rl_policy, governors::make_governor("conservative"));
    policy = &*watchdog;
  }

  std::vector<workload::ScenarioKind> kinds;
  if (args.scenario) {
    const auto kind = kind_by_name(*args.scenario);
    if (!kind) {
      std::fprintf(stderr, "unknown scenario '%s'\n",
                   args.scenario->c_str());
      return 1;
    }
    kinds.push_back(*kind);
  } else {
    kinds = workload::all_scenario_kinds();
  }

  // Observability: one metrics registry for the whole eval (atomic
  // instruments aggregate across farm threads); tracing uses one
  // VectorTraceSink per scenario so the farmed trace, concatenated in
  // scenario order, is byte-identical to the serial one.
  obs::MetricsRegistry metrics;
  obs::MetricsRegistry* metrics_ptr =
      args.metrics_path ? &metrics : nullptr;
  const bool tracing = args.trace_path.has_value();
  std::vector<std::unique_ptr<obs::VectorTraceSink>> sinks;
  if (tracing) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      sinks.push_back(std::make_unique<obs::VectorTraceSink>());
    }
  }

  std::vector<core::RunResult> runs;
  if (baseline && !args.watchdog) {
    // Baseline governors are stateless across runs, so each scenario is an
    // independent farm task: task-local engine, fresh governor instance,
    // and (when faults are on) a task-local injector. Results are
    // bit-identical to the serial loop at any --jobs count.
    core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                                engine_config, args.jobs);
    farm.set_metrics(metrics_ptr);
    std::vector<std::function<core::RunResult()>> tasks;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const auto kind = kinds[i];
      obs::VectorTraceSink* sink = tracing ? sinks[i].get() : nullptr;
      tasks.push_back([&farm, &args, &target, kind, sink, metrics_ptr] {
        core::SimEngine run_engine(farm.soc_config(), farm.engine_config());
        run_engine.set_trace_sink(sink);
        run_engine.set_metrics(metrics_ptr);
        std::optional<fault::FaultInjector> injector;
        if (args.fault_intensity > 0.0) {
          injector.emplace(fault::scenario_fault_profile(
              kind, args.fault_intensity,
              args.fault_seed + static_cast<std::uint64_t>(kind)));
          injector->set_trace_sink(sink);
          injector->set_metrics(metrics_ptr);
          run_engine.set_fault_injector(&*injector);
        }
        auto governor = governors::make_governor(target);
        auto scenario = workload::make_scenario(kind, args.seed);
        return run_engine.run(*scenario, *governor);
      });
    }
    runs = farm.map<core::RunResult>(tasks);
  } else {
    // An RL checkpoint (or its watchdog wrapper) carries learned state
    // across runs, so its scenarios stay serial on the shared instance.
    engine.set_metrics(metrics_ptr);
    if (rl_policy) rl_policy->set_metrics(metrics_ptr);
    if (watchdog) watchdog->set_metrics(metrics_ptr);
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const auto kind = kinds[i];
      obs::VectorTraceSink* sink = tracing ? sinks[i].get() : nullptr;
      engine.set_trace_sink(sink);
      if (rl_policy) rl_policy->set_trace_sink(sink);
      if (watchdog) watchdog->set_trace_sink(sink);
      std::optional<fault::FaultInjector> injector;
      if (args.fault_intensity > 0.0) {
        injector.emplace(fault::scenario_fault_profile(
            kind, args.fault_intensity,
            args.fault_seed + static_cast<std::uint64_t>(kind)));
        injector->set_trace_sink(sink);
        injector->set_metrics(metrics_ptr);
        engine.set_fault_injector(&*injector);
      }
      auto scenario = workload::make_scenario(kind, args.seed);
      runs.push_back(engine.run(*scenario, *policy));
      engine.set_fault_injector(nullptr);
    }
    engine.set_trace_sink(nullptr);
  }

  if (tracing) {
    std::vector<obs::TraceEvent> events;
    for (auto& sink : sinks) {
      auto part = sink->take();
      events.insert(events.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    if (!write_trace_file(*args.trace_path, args.trace_format, events)) {
      return 1;
    }
    std::printf("trace: %zu events -> %s (%s)\n", events.size(),
                args.trace_path->c_str(), args.trace_format.c_str());
  }
  if (args.metrics_path && !write_metrics(*args.metrics_path, metrics)) {
    return 1;
  }

  TextTable table({"scenario", "energy [J]", "E/QoS [J]", "viol rate",
                   "f_little [MHz]", "f_big [MHz]"});
  for (const auto& run : runs) {
    table.add_row({run.scenario, TextTable::num(run.energy_j, 1),
                   TextTable::num(run.energy_per_qos, 5),
                   TextTable::percent(run.violation_rate),
                   TextTable::num(run.mean_freq_hz.front() / 1e6, 0),
                   TextTable::num(run.mean_freq_hz.back() / 1e6, 0)});
  }
  std::printf("policy: %s\n", policy->name().c_str());
  if (args.fault_intensity > 0.0) {
    std::printf("fault intensity: %.2f (seed %llu)\n", args.fault_intensity,
                static_cast<unsigned long long>(args.fault_seed));
  }
  table.print();
  if (watchdog) {
    std::printf(
        "watchdog: %zu engagement(s), %zu/%zu epochs on fallback\n",
        watchdog->engagements(), watchdog->fallback_epochs(),
        watchdog->total_epochs());
  }
  return 0;
}

int cmd_latency(const Args& args) {
  const std::size_t invocations =
      args.positional.size() > 1 ? std::stoul(args.positional[1]) : 10000;
  hw::LatencyExperimentConfig config;
  const auto stream = hw::synthetic_stream(1024, invocations, args.seed);
  const auto result = hw::run_latency_experiment(config, 1024, 9, stream);
  std::printf("software  %.3f us mean\n", result.sw_latency_s.mean() * 1e6);
  std::printf("hw e2e    %.3f us mean  (%.2fx)\n",
              result.hw_end_to_end_s.mean() * 1e6,
              result.mean_speedup_end_to_end());
  std::printf("hw raw    %.3f us mean  (%.2fx)\n",
              result.hw_raw_s.mean() * 1e6, result.mean_speedup_raw());
  return 0;
}

// Signal flags for the serve loop. Plain handlers may only touch
// lock-free atomics; the main loop polls them.
std::atomic<bool> g_serve_stop{false};
std::atomic<bool> g_serve_reload{false};

void serve_signal_handler(int sig) {
  if (sig == SIGHUP) {
    g_serve_reload.store(true);
  } else {
    g_serve_stop.store(true);
  }
}

int cmd_serve(const Args& args) {
  if (args.uds.empty() && args.tcp_port < 0 && args.shm.empty()) {
    std::fprintf(stderr,
                 "serve needs --uds PATH, --tcp-port N, and/or --shm PATH\n");
    return 1;
  }
  serve::ServerConfig config;
  config.uds_path = args.uds;
  config.tcp_enable = args.tcp_port >= 0;
  config.tcp_port =
      static_cast<std::uint16_t>(args.tcp_port >= 0 ? args.tcp_port : 0);
  config.shm_path = args.shm;
  config.shm_lanes = args.shm_lanes;
  config.workers = args.workers;
  config.batch_max = args.batch;
  config.batch_deadline = std::chrono::microseconds(args.batch_deadline_us);
  config.queue_capacity = args.queue_capacity;
  config.cache_capacity = args.cache_capacity;
  config.policy_path = args.policy_path;
  config.cluster_count = soc::default_mobile_soc_config().clusters.size();
  config.registry_dir = args.registry;
  config.candidate_version = args.candidate;
  config.rollout.canary_pct = args.canary_pct;
  config.rollout.regression_threshold = args.canary_threshold;
  config.rollout.window_reports = args.canary_window;
  config.rollout.settle_windows = args.canary_settle;

  obs::MetricsRegistry metrics;
  serve::PolicyServer server(config);
  if (args.metrics_path) server.set_metrics(&metrics);
  server.start();
  if (!config.uds_path.empty()) {
    std::printf("listening on uds %s\n", config.uds_path.c_str());
  }
  if (config.tcp_enable) {
    std::printf("listening on tcp %s:%d\n", args.host.c_str(),
                server.tcp_port());
  }
  if (!config.shm_path.empty()) {
    std::printf("listening on shm %s (%zu lanes)\n", config.shm_path.c_str(),
                config.shm_lanes);
  }
  if (!args.policy_path.empty()) {
    std::printf("policy checkpoint: %s (SIGHUP reloads)\n",
                args.policy_path.c_str());
  }
  if (!args.registry.empty()) {
    std::printf("policy registry: %s\n", args.registry.c_str());
  }
  if (server.candidate_active()) {
    std::printf("canary: v%llu serving %.1f%% of connections\n",
                static_cast<unsigned long long>(server.candidate_version()),
                args.canary_pct);
  }

  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGHUP, serve_signal_handler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_serve_reload.exchange(false)) {
      std::string error;
      if (server.request_reload(&error)) {
        std::printf("policy reloaded%s%s\n",
                    args.policy_path.empty() ? "" : " from ",
                    args.policy_path.c_str());
        if (server.candidate_active()) {
          std::printf("canary: v%llu staged\n",
                      static_cast<unsigned long long>(
                          server.candidate_version()));
        }
      } else {
        std::fprintf(stderr, "reload rejected: %s\n", error.c_str());
      }
    }
  }
  std::printf("shutting down after %llu responses\n",
              static_cast<unsigned long long>(server.responses()));
  if (server.rollbacks() + server.promotions() > 0) {
    std::printf("rollout verdicts: %llu rollback(s), %llu promotion(s)\n",
                static_cast<unsigned long long>(server.rollbacks()),
                static_cast<unsigned long long>(server.promotions()));
  }
  server.stop();
  if (args.metrics_path && !write_metrics(*args.metrics_path, metrics)) {
    return 1;
  }
  return 0;
}

int cmd_query(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "query needs a quantized state index\n");
    return 1;
  }
  const std::uint64_t state = std::stoull(args.positional[1]);
  const auto show = [](const serve::Client::Result& result) {
    std::printf("action %u%s%s%s\n", result.action,
                result.safe_default ? " (safe-default)" : "",
                result.cache_hit ? " (cached)" : "",
                result.canary ? " (canary)" : "");
  };
  if (!args.shm.empty()) {
    serve::ShmClient client(args.shm);
    show(client.query(state, args.agent));
    return 0;
  }
  serve::Client client =
      !args.uds.empty()
          ? serve::Client::connect_uds(args.uds)
          : [&] {
              if (args.tcp_port < 0) {
                throw UsageError(
                    "query needs --uds PATH, --tcp-port N, or --shm PATH");
              }
              return serve::Client::connect_tcp(
                  args.host, static_cast<std::uint16_t>(args.tcp_port));
            }();
  show(client.query(state, args.agent));
  return 0;
}

core::FuzzDriverConfig fuzz_config_from(const Args& args) {
  core::FuzzDriverConfig config;
  config.governor = args.governor;
  config.jobs = args.jobs;
  config.invariants.max_energy_j = args.max_energy_j;
  config.invariants.max_violation_rate = args.max_violation_rate;
  config.invariants.max_peak_temp_c = args.max_peak_temp_c;
  return config;
}

void print_violations(const core::FuzzOutcome& outcome) {
  for (const auto& violation : outcome.violations) {
    std::printf("  %-20s %s\n", violation.invariant.c_str(),
                violation.detail.c_str());
  }
}

int cmd_fuzz(const Args& args) {
  if (args.governor != "rl" && !governors::has_governor(args.governor)) {
    std::fprintf(stderr, "unknown governor '%s'\n", args.governor.c_str());
    return 1;
  }
  obs::MetricsRegistry metrics;
  core::FuzzDriver driver(fuzz_config_from(args));
  if (args.metrics_path) driver.set_metrics(&metrics);

  std::printf("fuzzing %zu scenario(s) from seed %llu under %s...\n",
              args.runs, static_cast<unsigned long long>(args.seed),
              args.governor.c_str());
  const auto outcomes =
      driver.run_batch(args.seed, args.runs, /*show_progress=*/true);

  std::vector<const core::FuzzOutcome*> failures;
  for (const auto& outcome : outcomes) {
    if (!outcome.ok()) failures.push_back(&outcome);
  }
  std::printf("%zu/%zu scenario(s) passed every invariant\n",
              outcomes.size() - failures.size(), outcomes.size());

  for (const auto* failure : failures) {
    std::printf("FAIL seed %llu (%zu phase(s), %zu source(s), %.2f s):\n",
                static_cast<unsigned long long>(failure->spec.seed),
                failure->spec.phases.size(), failure->spec.source_count(),
                failure->spec.total_duration_s());
    print_violations(*failure);
    if (!args.shrink) continue;
    const auto shrunk = driver.shrink(*failure);
    std::printf(
        "  shrunk to %zu phase(s), %zu source(s), %.2f s "
        "(%zu/%zu reductions accepted)\n",
        shrunk.outcome.spec.phases.size(),
        shrunk.outcome.spec.source_count(),
        shrunk.outcome.spec.total_duration_s(), shrunk.accepted,
        shrunk.attempts);
    if (!args.corpus_dir) continue;
    std::filesystem::create_directories(*args.corpus_dir);
    const std::string invariant = failure->violations.front().invariant;
    const std::string path =
        *args.corpus_dir + "/seed" + std::to_string(failure->spec.seed) +
        "-" + invariant + ".scenario";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::string command = "pmrl_cli fuzz --seed " +
                          std::to_string(failure->spec.seed) + " --runs 1";
    if (args.governor != "rl") command += " --governor " + args.governor;
    char bound[64];
    if (std::isfinite(args.max_energy_j)) {
      std::snprintf(bound, sizeof bound, " --max-energy %g",
                    args.max_energy_j);
      command += bound;
    }
    if (args.max_violation_rate < 1.0) {
      std::snprintf(bound, sizeof bound, " --max-violation-rate %g",
                    args.max_violation_rate);
      command += bound;
    }
    if (std::isfinite(args.max_peak_temp_c)) {
      std::snprintf(bound, sizeof bound, " --max-peak-temp %g",
                    args.max_peak_temp_c);
      command += bound;
    }
    shrunk.outcome.spec.save(
        out, {"minimized from: " + command,
              "violated invariant: " + invariant + " (" +
                  failure->violations.front().detail + ")",
              "shrink: " + std::to_string(shrunk.accepted) + "/" +
                  std::to_string(shrunk.attempts) +
                  " reductions accepted"});
    std::printf("  wrote %s\n", path.c_str());
  }
  if (args.metrics_path && !write_metrics(*args.metrics_path, metrics)) {
    return 1;
  }
  return failures.empty() ? 0 : 1;
}

/// Replay format from --format or, when absent, the file extension.
std::string resolve_replay_format(const Args& args,
                                  const std::string& path) {
  if (!args.format.empty()) return args.format;
  const auto extension = std::filesystem::path(path).extension().string();
  if (extension == ".scenario") return "scenario";
  if (extension == ".jsonl") return "jsonl";
  return "util";
}

int cmd_replay(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "replay needs a file path\n");
    return 1;
  }
  const std::string& path = args.positional[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const std::string format = resolve_replay_format(args, path);

  if (format == "scenario") {
    const auto spec = workload::FuzzSpec::load(in);
    core::FuzzDriver driver(fuzz_config_from(args));
    const auto outcome = driver.run_spec(spec);
    std::printf(
        "%s: seed %llu, %.2f s, energy %.2f J, E/QoS %.5f J, "
        "viol rate %.2f%%\n",
        spec.name.c_str(), static_cast<unsigned long long>(spec.seed),
        outcome.result.duration_s, outcome.result.energy_j,
        outcome.result.energy_per_qos,
        100.0 * outcome.result.violation_rate);
    if (!outcome.ok()) {
      std::printf("invariant violations:\n");
      print_violations(outcome);
      return 1;
    }
    std::printf("all invariants hold\n");
    return 0;
  }

  // A recorded utilization trace replayed as a workload.
  const auto trace = format == "jsonl"
                         ? workload::util_trace_from_jsonl(in)
                         : workload::util_trace_from_text(in);
  const std::string name =
      std::filesystem::path(path).stem().string() + "-replay";
  workload::UtilReplayScenario scenario(trace, workload::UtilReplayConfig{},
                                        name);
  core::EngineConfig engine_config;
  engine_config.duration_s =
      std::max(trace.duration_s(), engine_config.decision_period_s);
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);
  std::optional<rl::RlGovernor> rl_policy;
  governors::GovernorPtr baseline;
  governors::Governor* policy = nullptr;
  if (args.governor == "rl") {
    rl_policy.emplace(rl::RlGovernorConfig{},
                      engine.soc_config().clusters.size());
    policy = &*rl_policy;
  } else if (governors::has_governor(args.governor)) {
    baseline = governors::make_governor(args.governor);
    policy = baseline.get();
  } else {
    std::fprintf(stderr, "unknown governor '%s'\n", args.governor.c_str());
    return 1;
  }
  const auto result = engine.run(scenario, *policy);
  std::printf(
      "%s: %zu sample(s) over %.2f s (%zu domain(s)), %zu job(s) "
      "submitted\n",
      name.c_str(), trace.samples.size(), trace.duration_s(),
      trace.domain_count(), scenario.submitted());
  std::printf(
      "%s: energy %.2f J, E/QoS %.5f J, viol rate %.2f%%, "
      "f_little %.0f MHz, f_big %.0f MHz\n",
      policy->name().c_str(), result.energy_j, result.energy_per_qos,
      100.0 * result.violation_rate, result.mean_freq_hz.front() / 1e6,
      result.mean_freq_hz.back() / 1e6);
  return 0;
}

int cmd_fleet(const Args& args) {
  fleet::FleetConfig config;
  config.devices = args.devices;
  config.seed = args.seed;
  config.duration_s = args.duration_s;
  config.jobs = args.jobs;
  config.block_size = args.block;
  config.record_epochs = args.trace_path.has_value();
  if (!args.budget_steps.empty() && args.budget_w <= 0.0) {
    throw UsageError("--budget-step requires --budget");
  }
  if (args.budget_w > 0.0) {
    config.budget.global_cap_w = args.budget_w;
    config.budget.policy = args.budget_policy;
    config.budget.groups = args.budget_groups;
    config.budget.floor_w = args.budget_floor;
    config.budget.seed = args.seed;
    config.budget.schedule = args.budget_steps;
  }

  fleet::FleetEngine engine{config};
  obs::MetricsRegistry metrics;
  if (args.metrics_path) engine.set_metrics(&metrics);

  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double ticks_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.device_ticks) / wall_s : 0.0;

  std::printf("fleet: %zu device(s), %zu epoch(s) x %zu tick(s), %zu job(s)\n",
              result.devices, result.epochs, result.ticks_per_epoch,
              engine.jobs());
  TextTable table({"metric", "value"});
  table.add_row({"wall [s]", TextTable::num(wall_s, 2)});
  table.add_row({"device-ticks/sec", TextTable::num(ticks_per_sec, 0)});
  table.add_row({"energy [J]", TextTable::num(result.energy_j, 1)});
  table.add_row({"violation rate", TextTable::num(result.violation_rate, 4)});
  table.add_row(
      {"batteries depleted", std::to_string(result.battery_depleted)});
  table.add_row(
      {"E/QoS p50 [J/cap-s]", TextTable::num(result.energy_per_served_p50, 3)});
  table.add_row(
      {"E/QoS p95 [J/cap-s]", TextTable::num(result.energy_per_served_p95, 3)});
  table.add_row(
      {"E/QoS p99 [J/cap-s]", TextTable::num(result.energy_per_served_p99, 3)});
  if (result.budget.enabled) {
    table.add_row({"budget cap [W]",
                   TextTable::num(result.budget.effective_cap_w, 1)});
    table.add_row({"cap steps fired", std::to_string(result.budget.cap_steps)});
    table.add_row({"over-cap device-epochs",
                   std::to_string(result.budget.over_cap_device_epochs)});
    table.add_row(
        {"settle epochs", std::to_string(result.budget.settle_epochs)});
    table.add_row({"budget audit", result.budget.audit_error.empty()
                                       ? "ok"
                                       : result.budget.audit_error});
  }
  table.print();

  if (args.trace_path) {
    std::ofstream out(*args.trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   args.trace_path->c_str());
      return 1;
    }
    const bool budgeted = result.budget.enabled;
    if (args.trace_format == "jsonl") {
      for (const auto& p : result.epoch_series) {
        out << "{\"time_s\": " << p.time_s << ", \"energy_j\": " << p.energy_j
            << ", \"served\": " << p.served << ", \"demand\": " << p.demand
            << ", \"violations\": " << p.violations;
        if (budgeted) {
          out << ", \"cap_w\": " << p.cap_w << ", \"over_cap\": " << p.over_cap;
        }
        out << "}\n";
      }
    } else {
      out << (budgeted ? "time_s,energy_j,served,demand,violations,cap_w,over_cap\n"
                       : "time_s,energy_j,served,demand,violations\n");
      for (const auto& p : result.epoch_series) {
        out << p.time_s << ',' << p.energy_j << ',' << p.served << ','
            << p.demand << ',' << p.violations;
        if (budgeted) out << ',' << p.cap_w << ',' << p.over_cap;
        out << '\n';
      }
    }
    std::printf("epoch series (%zu rows) written to %s\n",
                result.epoch_series.size(), args.trace_path->c_str());
  }
  if (args.metrics_path && !write_metrics(*args.metrics_path, metrics)) {
    return 1;
  }
  return 0;
}

}  // namespace

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: pmrl_cli <list|train|eval|latency|serve|query|policy|fuzz|"
      "replay|fleet> [options]\n"
      "  list\n"
      "  train  [--episodes N] [--seed S] [--actors N] [--jobs N]\n"
      "         [--merge-seed S] [--out policy.pmrl] [--registry DIR]\n"
      "  eval   <governor|policy.pmrl> [--scenario NAME] [--seed S]\n"
      "         [--duration SEC] [--fault-intensity X] [--fault-seed S]\n"
      "         [--watchdog] [--jobs N] [--trace PATH]\n"
      "         [--trace-format csv|jsonl] [--metrics PATH|-]\n"
      "  latency [N] [--seed S]\n"
      "  serve  [--policy policy.pmrl] [--registry DIR] [--uds PATH]\n"
      "         [--tcp-port N] [--shm PATH [--shm-lanes N]] [--workers N]\n"
      "         [--batch N] [--batch-deadline-us N] [--queue-capacity N]\n"
      "         [--cache-capacity N] [--metrics PATH|-] [--canary PCT]\n"
      "         [--candidate VERSION] [--canary-threshold X]\n"
      "         [--canary-window N] [--canary-settle N]\n"
      "  query  <state> [--agent N]\n"
      "         (--uds PATH | --tcp-port N [--host H] | --shm PATH)\n"
      "  policy <list|show V|promote V|rollback V> --registry DIR\n"
      "  fuzz   [--seed S] [--runs N] [--jobs N] [--governor NAME]\n"
      "         [--max-energy J] [--max-violation-rate X]\n"
      "         [--max-peak-temp C] [--shrink] [--corpus-dir DIR]\n"
      "         [--metrics PATH|-]\n"
      "  replay <file> [--format scenario|jsonl|util] [--governor NAME]\n"
      "  fleet  [--devices N] [--seed S] [--duration SEC] [--jobs N]\n"
      "         [--block N] [--trace PATH] [--trace-format csv|jsonl]\n"
      "         [--metrics PATH|-] [--budget WATTS]\n"
      "         [--budget-policy uniform|demand|rl] [--budget-groups N]\n"
      "         [--budget-floor WATTS] [--budget-step TIME:WATTS]...\n"
      "  --version\n");
}

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.show_version) {
      std::printf("pmrl %s\n", PMRL_VERSION);
      std::printf(
          "subcommands: list train eval latency serve query policy fuzz "
          "replay fleet\n");
      return 0;
    }
    if (args.positional.empty() || args.positional[0] == "help") {
      print_usage(args.positional.empty() ? stderr : stdout);
      return args.positional.empty() ? 2 : 0;
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "latency") return cmd_latency(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "policy") return cmd_policy(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "fleet") return cmd_fleet(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    print_usage(stderr);
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
