// Hardware policy demo: runs the fixed-point policy through the modeled
// FPGA datapath, verifies it is bit-exact with the fixed-point software
// agent, and prints the latency story (datapath cycles, AXI interface,
// software comparison).
//
//   ./build/examples/hw_policy_demo

#include <cstdio>

#include "hw/latency.hpp"
#include "rl/fixed_agent.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  constexpr std::size_t kStates = 1024;
  constexpr std::size_t kActions = 9;
  constexpr std::size_t kInvocations = 10000;

  // 1. Bit-exactness: the datapath's agent vs a standalone fixed-point
  //    agent fed the same stream must agree on every action and Q word.
  hw::HwPolicyConfig hw_config;
  hw::HwPolicyEngine accelerator(hw_config, kStates, kActions);
  rl::FixedPointQAgent reference(hw_config.agent, kStates, kActions);

  const auto stream = hw::synthetic_stream(kStates, kInvocations, 7);
  std::size_t mismatches = 0;
  bool has_prev = false;
  std::size_t prev_state = 0;
  std::size_t prev_action = 0;
  for (const auto& record : stream) {
    hw::PolicyLatency latency;
    const std::size_t hw_action =
        accelerator.invoke(record.state, record.reward, latency);
    if (has_prev) {
      reference.learn(prev_state, prev_action, record.reward, record.state);
    }
    const std::size_t sw_action = reference.select_action(record.state);
    if (hw_action != sw_action) ++mismatches;
    prev_state = record.state;
    prev_action = sw_action;
    has_prev = true;
  }
  std::printf("bit-exactness: %zu/%zu decisions identical (%s)\n\n",
              kInvocations - mismatches, kInvocations,
              mismatches == 0 ? "OK" : "MISMATCH");

  // 2. Latency story.
  hw::LatencyExperimentConfig lat_config;
  const auto comparison =
      hw::run_latency_experiment(lat_config, kStates, kActions, stream);
  TextTable table({"implementation", "mean latency [us]"});
  table.add_row({"software policy (kernel)",
                 TextTable::num(comparison.sw_latency_s.mean() * 1e6, 3)});
  table.add_row({"hardware policy end-to-end",
                 TextTable::num(comparison.hw_end_to_end_s.mean() * 1e6, 3)});
  table.add_row({"hardware datapath only",
                 TextTable::num(comparison.hw_raw_s.mean() * 1e6, 3)});
  table.print();
  std::printf("\nend-to-end speedup %.2fx, raw datapath speedup %.2fx\n",
              comparison.mean_speedup_end_to_end(),
              comparison.mean_speedup_raw());
  return mismatches == 0 ? 0 : 1;
}
