// Scenario explorer: runs every scenario under a chosen policy and prints
// per-scenario energy/QoS detail plus a coarse OPP/utilization trace of one
// scenario. Useful for understanding what a policy actually does.
//
//   ./build/examples/scenario_explorer [governor] [train_episodes]
//
// `governor` is one of the registered names (performance, powersave,
// userspace, ondemand, conservative, interactive, rl). For "rl" the policy
// is trained for `train_episodes` (default 60) before the frozen evaluation.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "rl/trainer.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "rl";
  const std::size_t episodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;

  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});

  std::unique_ptr<rl::RlGovernor> rl_policy;
  governors::GovernorPtr baseline;
  governors::Governor* policy = nullptr;
  if (name == "rl") {
    rl_policy = std::make_unique<rl::RlGovernor>(
        rl::RlGovernorConfig{}, engine.soc_config().clusters.size());
    rl::Trainer trainer(engine, *rl_policy, rl::TrainerConfig{.episodes = episodes});
    trainer.train();
    rl_policy->set_frozen(true);
    policy = rl_policy.get();
  } else {
    baseline = governors::make_governor(name);
    policy = baseline.get();
  }

  TextTable table({"scenario", "energy [J]", "E/QoS [J]", "viol rate",
                   "deadline jobs", "mean f_little [MHz]",
                   "mean f_big [MHz]", "peak T [C]"});
  for (const auto kind : workload::all_scenario_kinds()) {
    auto scenario = workload::make_scenario(kind, 9001);
    const auto run = engine.run(*scenario, *policy);
    table.add_row({run.scenario, TextTable::num(run.energy_j, 1),
                   TextTable::num(run.energy_per_qos, 5),
                   TextTable::percent(run.violation_rate),
                   std::to_string(run.released_deadline),
                   TextTable::num(run.mean_freq_hz.front() / 1e6, 0),
                   TextTable::num(run.mean_freq_hz.back() / 1e6, 0),
                   TextTable::num(run.peak_temp_c.back(), 1)});
  }
  std::printf("policy: %s\n", policy->name().c_str());
  table.print();

  // Coarse trace of the gaming scenario: OPP indices + utilization once/s.
  std::printf("\ngaming trace (1 sample/s):\n");
  TextTable trace({"t [s]", "opp little", "opp big", "util little",
                   "util big", "power [W]"});
  auto scenario = workload::make_scenario(workload::ScenarioKind::Gaming,
                                          9001);
  int next_sample = 0;
  engine.run(*scenario, *policy, [&](const core::EpochRecord& rec) {
    if (rec.time_s >= next_sample) {
      trace.add_row({TextTable::num(rec.time_s, 1),
                     std::to_string(rec.opp_index.front()),
                     std::to_string(rec.opp_index.back()),
                     TextTable::num(rec.util_avg.front(), 2),
                     TextTable::num(rec.util_avg.back(), 2),
                     TextTable::num(rec.total_power_w, 2)});
      next_sample += 5;
    }
  });
  trace.print();
  return 0;
}
