# Runs `pmrl_cli train` at --jobs 1/2/4 with identical seeds and asserts the
# merged checkpoints are byte-identical — the distributed-training
# determinism contract, checked end to end through the CLI.
foreach(jobs 1 2 4)
  execute_process(
    COMMAND ${CLI} train --episodes 6 --actors 3 --jobs ${jobs}
            --seed 11 --merge-seed 9 --out ${OUT}/cli_det_j${jobs}.pmrl
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "pmrl_cli train --jobs ${jobs} failed (${rc})")
  endif()
endforeach()
foreach(jobs 2 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}/cli_det_j1.pmrl ${OUT}/cli_det_j${jobs}.pmrl
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "merged checkpoint differs between --jobs 1 and --jobs ${jobs}")
  endif()
endforeach()
