// Quickstart: simulate one mobile scenario under a baseline governor and
// under the RL policy, and print the energy/QoS outcome of each.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "rl/trainer.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

int main() {
  // 1. A simulated big.LITTLE mobile SoC and the simulation engine.
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});

  // 2. A workload: 60 seconds of 30 fps video playback.
  constexpr std::uint64_t kSeed = 1;

  // 3. Baseline: the ondemand governor.
  auto ondemand = governors::make_governor("ondemand");
  auto scenario = workload::make_scenario(
      workload::ScenarioKind::VideoPlayback, kSeed);
  const core::RunResult base = engine.run(*scenario, *ondemand);

  // 4. The proposed policy: train briefly, then evaluate (online).
  rl::RlGovernor rl_policy(rl::RlGovernorConfig{},
                           engine.soc_config().clusters.size());
  rl::TrainerConfig train_cfg;
  train_cfg.episodes = 30;
  train_cfg.scenarios = {workload::ScenarioKind::VideoPlayback};
  rl::Trainer trainer(engine, rl_policy, train_cfg);
  trainer.train();

  // Evaluate online: the policy keeps learning at its floor exploration
  // rate, which is how the paper's policy runs in deployment ("adapts to
  // the variations in the system").
  auto eval_scenario = workload::make_scenario(
      workload::ScenarioKind::VideoPlayback, kSeed);
  const core::RunResult ours = engine.run(*eval_scenario, rl_policy);

  // 5. Report.
  TextTable table({"policy", "energy [J]", "QoS units", "energy/QoS [J]",
                   "violations", "mean freq big [MHz]"});
  for (const auto* r : {&base, &ours}) {
    table.add_row({r->governor, TextTable::num(r->energy_j, 2),
                   TextTable::num(r->quality, 1),
                   TextTable::num(r->energy_per_qos, 4),
                   std::to_string(r->violations),
                   TextTable::num(r->mean_freq_hz.back() / 1e6, 0)});
  }
  table.print();

  const double saving =
      (base.energy_per_qos - ours.energy_per_qos) / base.energy_per_qos;
  std::printf("\nRL policy energy/QoS vs ondemand: %+.2f%%\n",
              -saving * 100.0);
  return 0;
}
