#pragma once
// CPU idle-state (C-state) substrate. Real mobile SoCs do not burn full
// idle power on an idle core: the cpuidle subsystem drops cores into
// progressively deeper states (WFI clock gating, core retention/power-off)
// that trade lower power against wake-up latency. This model implements a
// ladder-style idle governor per core: an idle streak promotes the core to
// the next deeper state once it has stayed idle past that state's minimum
// residency, and a wake-up pays the state's exit latency out of the tick's
// compute capacity.

#include <cstddef>
#include <string>
#include <vector>

namespace pmrl::soc {

/// One idle state. Scales apply to the core's idle power components.
struct IdleState {
  std::string name;
  /// Fraction of the idle dynamic (clock-tree) power still burned.
  double dynamic_scale = 1.0;
  /// Fraction of leakage still burned (power gating / retention).
  double leakage_scale = 1.0;
  /// Time to resume execution after wake-up (seconds).
  double exit_latency_s = 0.0;
  /// Idle streak required before the ladder promotes into this state.
  double min_residency_s = 0.0;
};

/// Mobile-class ladder: C1 (WFI) -> C2 (core retention) -> C3 (core off).
/// Parameters follow published big-core cpuidle tables (exit latencies in
/// the tens of microseconds to a millisecond).
std::vector<IdleState> default_idle_states();

/// Idle-state configuration for a SoC.
///
/// Disabled by default: the paper's measured gaps between DVFS governors
/// imply a platform whose idle power was not deep-idle-managed during the
/// experiments (aggressive C-states compress exactly those gaps — see
/// bench_ablation_cpuidle). Enable for studies of the DVFS/cpuidle
/// interaction.
struct CpuidleConfig {
  bool enabled = false;
  std::vector<IdleState> states;  ///< empty => default_idle_states()
};

/// Per-core idle bookkeeping + ladder governor.
class CoreIdleTracker {
 public:
  /// `states` must outlive the tracker (owned by the cluster).
  explicit CoreIdleTracker(const std::vector<IdleState>* states = nullptr);

  /// Accounts one tick. `busy` means the core executed work this tick.
  /// Returns the wake-up penalty (seconds of lost execution time) to apply
  /// to this tick, which is nonzero only on an idle->busy transition out
  /// of a state with exit latency.
  double on_tick(bool busy, double dt_s);

  /// True when the core is currently in an idle state (not C0).
  bool idle() const { return state_ >= 0; }
  /// Index into the state table, or -1 when active.
  int state() const { return state_; }

  /// Power scales for the current tick (1.0 / 1.0 when active or when no
  /// table is attached).
  double dynamic_scale() const;
  double leakage_scale() const;

  /// Cumulative seconds spent per idle state (index-aligned with the state
  /// table) plus active time.
  const std::vector<double>& residency_s() const { return residency_s_; }
  double active_s() const { return active_s_; }

  void reset();

 private:
  const std::vector<IdleState>* states_;
  int state_ = -1;  // -1 = active
  double streak_s_ = 0.0;
  std::vector<double> residency_s_;
  double active_s_ = 0.0;
};

}  // namespace pmrl::soc
