#include "soc/task.hpp"

#include <stdexcept>

namespace pmrl::soc {

Task::Task(TaskId id, std::string name, Affinity affinity, double weight)
    : id_(id), name_(std::move(name)), affinity_(affinity), weight_(weight) {
  if (weight <= 0.0) throw std::invalid_argument("task weight must be > 0");
}

void Task::submit(Job job) {
  if (job.work_cycles <= 0.0) {
    throw std::invalid_argument("job work must be positive");
  }
  job.task = id_;
  backlog_cycles_ += job.work_cycles;
  queue_.push_back(job);
}

double Task::execute(double cycles, double tick_start_s, double dt_s,
                     std::vector<CompletedJob>& completed) {
  double used = 0.0;
  while (cycles > used && !queue_.empty()) {
    Job& front = queue_.front();
    const double need = front.work_cycles - front_progress_;
    const double available = cycles - used;
    if (available >= need) {
      used += need;
      // Uniform-rate interpolation of the finish instant inside the tick.
      const double fraction = cycles > 0.0 ? used / cycles : 1.0;
      completed.push_back({front, tick_start_s + dt_s * fraction});
      backlog_cycles_ -= front.work_cycles;
      queue_.pop_front();
      front_progress_ = 0.0;
    } else {
      front_progress_ += available;
      used = cycles;
    }
  }
  if (backlog_cycles_ < 0.0) backlog_cycles_ = 0.0;  // float dust
  return used;
}

std::size_t Task::overdue_jobs(double now_s) const {
  std::size_t n = 0;
  for (const auto& job : queue_) {
    if (job.has_deadline() && job.deadline_s < now_s) ++n;
  }
  return n;
}

void Task::clear() {
  queue_.clear();
  front_progress_ = 0.0;
  backlog_cycles_ = 0.0;
}

TaskId TaskSet::create(std::string name, Affinity affinity, double weight) {
  const TaskId id = tasks_.size();
  tasks_.emplace_back(id, std::move(name), affinity, weight);
  return id;
}

Task& TaskSet::at(TaskId id) {
  if (id >= tasks_.size()) throw std::out_of_range("task id");
  return tasks_[id];
}

const Task& TaskSet::at(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("task id");
  return tasks_[id];
}

double TaskSet::total_backlog_cycles() const {
  double total = 0.0;
  for (const auto& t : tasks_) total += t.backlog_cycles();
  return total;
}

std::size_t TaskSet::runnable_count() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) n += t.runnable() ? 1 : 0;
  return n;
}

}  // namespace pmrl::soc
