#pragma once
// Per-entity load tracking (PELT) in the style of the Linux scheduler: a
// geometrically decaying average of the busy signal with a 32 ms half-life.
// Governors consume this; it is the "system characteristic" signal the
// paper's policy observes.

namespace pmrl::soc {

/// Geometric-decay utilization tracker. `add_sample` feeds the busy fraction
/// of one simulation tick; the tracked value converges to the true duty
/// cycle with a 32 ms (configurable) half-life.
class PeltTracker {
 public:
  /// half_life_s: time for an old contribution to decay to half weight.
  explicit PeltTracker(double half_life_s = 0.032);

  /// Feeds the busy fraction (0..1) observed over a tick of dt seconds.
  void add_sample(double busy_fraction, double dt_s);

  /// Current decayed utilization estimate in [0, 1].
  double util() const { return util_; }

  void reset() { util_ = 0.0; }

  double half_life_s() const { return half_life_s_; }

 private:
  double half_life_s_;
  double util_ = 0.0;
  /// Memoized geometric decay for the last-seen dt (the engine tick is
  /// fixed, so this caches the exp2 for the whole run).
  double cached_dt_s_ = -1.0;
  double cached_decay_ = 0.0;
};

}  // namespace pmrl::soc
