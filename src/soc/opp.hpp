#pragma once
// Operating performance points (OPPs): the discrete voltage/frequency pairs
// a cluster's DVFS domain can run at. Mirrors the Linux OPP tables of an
// Exynos 5422-class mobile SoC (the board family the authors' group used in
// their mobile power-management work).

#include <cstddef>
#include <vector>

namespace pmrl::soc {

/// One voltage/frequency pair.
struct OperatingPoint {
  double freq_hz = 0.0;
  double voltage_v = 0.0;
};

/// Ordered table of operating points (ascending frequency). Index 0 is the
/// slowest/lowest-voltage point.
class OppTable {
 public:
  /// Throws std::invalid_argument if points are empty, unsorted, or have
  /// non-positive frequency/voltage.
  explicit OppTable(std::vector<OperatingPoint> points);

  std::size_t size() const { return points_.size(); }
  const OperatingPoint& at(std::size_t idx) const;
  const OperatingPoint& lowest() const { return points_.front(); }
  const OperatingPoint& highest() const { return points_.back(); }

  /// Index of the slowest OPP whose frequency is >= freq_hz; returns the
  /// highest index if no OPP is fast enough (cpufreq "ceiling" relation).
  std::size_t index_for_min_freq(double freq_hz) const;

  /// Index of the OPP closest in frequency to freq_hz.
  std::size_t nearest_index(double freq_hz) const;

  const std::vector<OperatingPoint>& points() const { return points_; }

 private:
  std::vector<OperatingPoint> points_;
};

/// OPP table modeled on the Exynos 5422 big (Cortex-A15) DVFS domain:
/// 200 MHz .. 2.0 GHz in 100 MHz steps, 0.9 V .. 1.3625 V.
OppTable big_cluster_opps();

/// OPP table modeled on the Exynos 5422 LITTLE (Cortex-A7) DVFS domain:
/// 200 MHz .. 1.4 GHz in 100 MHz steps, 0.9 V .. 1.25 V.
OppTable little_cluster_opps();

/// Reduced 5-point table used by unit tests and the state-ablation bench.
OppTable tiny_test_opps();

/// Derives a binned/scaled variant of `base`: every frequency is multiplied
/// by `freq_scale` and every voltage by `voltage_scale` (both must be
/// positive). Models silicon-bin and SKU variation across a device fleet —
/// the same curve shape at a shifted operating envelope.
OppTable scaled_opps(const OppTable& base, double freq_scale,
                     double voltage_scale);

}  // namespace pmrl::soc
