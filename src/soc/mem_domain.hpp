#pragma once
// Memory (DRAM/interconnect) DVFS domain — an optional third frequency
// domain beyond the CPU clusters, as on real MPSoCs where devfreq scales
// the memory controller. The model is throughput-coupled: executed CPU
// work generates memory traffic (a configurable intensity fraction); when
// demanded traffic exceeds the domain's bandwidth at its current OPP, all
// clusters stall proportionally during the next tick.
//
// To power-management policies the domain looks like one more cluster in
// the telemetry (its "utilization" is bandwidth utilization), so every
// governor — and a third factored RL agent — can control it unchanged.

#include "soc/opp.hpp"

namespace pmrl::soc {

/// Memory-domain configuration.
struct MemDomainParams {
  bool enabled = false;
  /// Memory OPP table; empty => default_mem_opps().
  std::vector<OperatingPoint> opps;
  /// Reference cycles of CPU work serviceable per memory-clock cycle at
  /// full bandwidth (channels x prefetch). Sized so the default table's top
  /// OPP covers ~125% of the whole CPU complex flat out.
  double service_per_cycle = 7.0;
  /// Fraction of executed CPU reference cycles that demand memory service.
  double traffic_intensity = 0.35;
  /// Static controller+PHY power at 1 V (W); scales linearly with voltage.
  double static_power_w = 0.12;
  /// Effective switched capacitance of the controller/IO (F).
  double c_eff_f = 0.30e-9;
  /// Fraction of dynamic power burned when the bus idles (clocking, ODT).
  double idle_activity = 0.15;
};

/// LPDDR-class table: 400 MHz .. 1866 MHz.
OppTable default_mem_opps();

/// The memory DVFS domain.
class MemDomain {
 public:
  explicit MemDomain(MemDomainParams params);

  const OppTable& opps() const { return opps_; }
  std::size_t opp_index() const { return opp_index_; }
  double freq_hz() const { return opps_.at(opp_index_).freq_hz; }
  double voltage_v() const { return opps_.at(opp_index_).voltage_v; }
  void set_opp(std::size_t idx);
  std::size_t dvfs_transitions() const { return transitions_; }

  /// Bandwidth capacity in CPU reference cycles serviceable per second.
  double capacity_cycles_per_s() const {
    return freq_hz() * params_.service_per_cycle;
  }

  /// Accounts one tick given the CPU work executed (reference cycles).
  /// Returns the bandwidth utilization of this tick (may exceed 1 when
  /// oversubscribed).
  double on_tick(double executed_cycles, double dt_s);

  /// Stall factor (0..1] to apply to CPU execution in the *next* tick:
  /// 1 when bandwidth sufficed, capacity/demand when oversubscribed.
  double stall_factor() const { return stall_factor_; }

  /// Bandwidth utilization of the last tick, clamped to [0, 1] for
  /// telemetry.
  double util() const;

  /// Power over the last tick (W).
  double power_w() const;
  /// Worst-case power at the top OPP (W) — reward normalization reference.
  double max_power_w() const;

  double energy_j() const { return energy_j_; }
  const MemDomainParams& params() const { return params_; }

  void reset_tracking();

 private:
  MemDomainParams params_;
  OppTable opps_;
  std::size_t opp_index_;
  double last_util_raw_ = 0.0;
  double stall_factor_ = 1.0;
  double energy_j_ = 0.0;
  std::size_t transitions_ = 0;
};

}  // namespace pmrl::soc
