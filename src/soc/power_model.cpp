#include "soc/power_model.hpp"

#include <cmath>

namespace pmrl::soc {

CorePowerParams big_core_power_params() {
  CorePowerParams p;
  // 1.5 W per core at 2 GHz / 1.3625 V full load:
  // c_eff = 1.5 / (1.3625^2 * 2e9) ~= 0.404 nF.
  p.c_eff_f = 0.404e-9;
  // ~0.20 W leakage per core at 1.3625 V / 65 C:
  // I0 = 0.20 / (1.3625 * exp(0.03 * 40)) ~= 0.0442 A.
  p.leak_i0_a = 0.0442;
  p.leak_temp_coeff = 0.03;
  p.leak_ref_temp_c = 25.0;
  p.idle_activity = 0.05;
  return p;
}

CorePowerParams little_core_power_params() {
  CorePowerParams p;
  // 0.15 W per core at 1.4 GHz / 1.25 V:
  // c_eff = 0.15 / (1.25^2 * 1.4e9) ~= 0.0686 nF.
  p.c_eff_f = 0.0686e-9;
  // ~0.03 W leakage per core at 1.25 V / 65 C.
  p.leak_i0_a = 0.00723;
  p.leak_temp_coeff = 0.03;
  p.leak_ref_temp_c = 25.0;
  p.idle_activity = 0.05;
  return p;
}

double CorePowerModel::dynamic_power_w(double freq_hz, double voltage_v,
                                       double busy_fraction) const {
  const double activity =
      params_.idle_activity +
      (1.0 - params_.idle_activity) * busy_fraction;
  return params_.c_eff_f * voltage_v * voltage_v * freq_hz * activity;
}

double CorePowerModel::temp_factor(double temp_c) const {
  return std::exp(params_.leak_temp_coeff * (temp_c - params_.leak_ref_temp_c));
}

double CorePowerModel::leakage_power_w(double voltage_v, double temp_c) const {
  return params_.leak_i0_a * voltage_v * temp_factor(temp_c);
}

double CorePowerModel::total_power_w(double freq_hz, double voltage_v,
                                     double busy_fraction,
                                     double temp_c) const {
  return dynamic_power_w(freq_hz, voltage_v, busy_fraction) +
         leakage_power_w(voltage_v, temp_c);
}

double CorePowerModel::total_power_w(double freq_hz, double voltage_v,
                                     double busy_fraction, double temp_c,
                                     double idle_dynamic_scale,
                                     double leakage_scale) const {
  const double idle_component = params_.idle_activity * idle_dynamic_scale;
  const double activity =
      idle_component + (1.0 - params_.idle_activity) * busy_fraction;
  const double dynamic =
      params_.c_eff_f * voltage_v * voltage_v * freq_hz * activity;
  return dynamic + leakage_power_w(voltage_v, temp_c) * leakage_scale;
}

}  // namespace pmrl::soc
