#include "soc/cluster.hpp"

#include <algorithm>

namespace pmrl::soc {

Cluster::Cluster(ClusterId id, ClusterConfig config, OppTable opps,
                 CorePowerParams power_params, CpuidleConfig cpuidle)
    : id_(id),
      config_(std::move(config)),
      opps_(std::move(opps)),
      power_model_(power_params),
      opp_index_(0) {
  opp_index_ = std::min(config_.initial_opp, opps_.size() - 1);
  opp_power_terms_.reserve(opps_.size());
  for (std::size_t i = 0; i < opps_.size(); ++i) {
    const auto& opp = opps_.at(i);
    opp_power_terms_.push_back(
        power_model_.opp_terms(opp.freq_hz, opp.voltage_v));
  }
  if (cpuidle.enabled) {
    idle_states_ = std::make_shared<const std::vector<IdleState>>(
        cpuidle.states.empty() ? default_idle_states()
                               : std::move(cpuidle.states));
  }
  cores_.reserve(config_.core_count);
  for (std::size_t i = 0; i < config_.core_count; ++i) {
    cores_.emplace_back(i, config_.core_type, config_.ipc_factor);
    if (idle_states_) cores_.back().attach_idle_states(idle_states_.get());
  }
}

void Cluster::set_opp(std::size_t idx) {
  idx = std::min(idx, opps_.size() - 1);
  if (idx == opp_index_) return;
  opp_index_ = idx;
  pending_stall_s_ += config_.transition_latency_s;
  ++transitions_;
}

double Cluster::run_tick(TaskSet& tasks, double dt_s, double tick_start_s,
                         std::vector<CompletedJob>& completed,
                         double capacity_scale) {
  // Consume any pending relock stall out of this tick's usable time.
  const double stall = std::min(pending_stall_s_, dt_s);
  pending_stall_s_ -= stall;
  const double usable_dt = dt_s - stall;
  const double freq = freq_hz();
  const std::size_t first_completed = completed.size();
  double busy_sum = 0.0;
  for (auto& core : cores_) {
    // The core sees the full tick for PELT purposes but only gets capacity
    // for the usable window; model this by scaling frequency.
    const double effective_freq = freq * (usable_dt / dt_s) * capacity_scale;
    busy_sum += core.run_tick(tasks, effective_freq, dt_s, tick_start_s,
                              completed);
  }
  for (std::size_t i = first_completed; i < completed.size(); ++i) {
    completed[i].cluster = id_;
  }
  last_busy_avg_ = cores_.empty() ? 0.0 : busy_sum / cores_.size();
  return last_busy_avg_;
}

double Cluster::power_w(double temp_c) const {
  // Hot path (every core, every tick): cached per-OPP terms plus one
  // exp() per cluster — all cores share the die temperature.
  const auto& terms = opp_power_terms_[opp_index_];
  const double temp_factor = power_model_.temp_factor(temp_c);
  double total = 0.0;
  for (const auto& core : cores_) {
    total += power_model_.total_power_w_cached(
        terms, core.last_busy_fraction(), temp_factor,
        core.idle_dynamic_scale(), core.idle_leakage_scale());
  }
  return total;
}

double Cluster::max_power_w(double temp_c) const {
  const auto& top = opps_.highest();
  return static_cast<double>(cores_.size()) *
         power_model_.total_power_w(top.freq_hz, top.voltage_v, 1.0, temp_c);
}

double Cluster::util_avg() const {
  if (cores_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& core : cores_) sum += core.util_pelt();
  return sum / cores_.size();
}

double Cluster::util_max() const {
  double best = 0.0;
  for (const auto& core : cores_) best = std::max(best, core.util_pelt());
  return best;
}

double Cluster::busy_avg() const { return last_busy_avg_; }

double Cluster::util_scale_invariant() const {
  return util_avg() * freq_hz() / opps_.highest().freq_hz;
}

std::size_t Cluster::nr_running(const TaskSet& tasks) const {
  std::size_t n = 0;
  for (const auto& core : cores_) n += core.nr_running(tasks);
  return n;
}

std::size_t Cluster::overdue_jobs(const TaskSet& tasks, double now_s) const {
  std::size_t n = 0;
  for (const auto& core : cores_) {
    for (const auto task_id : core.runqueue()) {
      n += tasks.at(task_id).overdue_jobs(now_s);
    }
  }
  return n;
}

const std::vector<IdleState>& Cluster::idle_states() const {
  static const std::vector<IdleState> kEmpty;
  return idle_states_ ? *idle_states_ : kEmpty;
}

std::vector<double> Cluster::idle_residency_s() const {
  std::vector<double> total(idle_states().size(), 0.0);
  for (const auto& core : cores_) {
    const auto& residency = core.idle_tracker().residency_s();
    for (std::size_t i = 0; i < residency.size() && i < total.size(); ++i) {
      total[i] += residency[i];
    }
  }
  return total;
}

double Cluster::active_core_s() const {
  double total = 0.0;
  for (const auto& core : cores_) total += core.idle_tracker().active_s();
  return total;
}

void Cluster::reset_tracking() {
  for (auto& core : cores_) core.reset_tracking();
  pending_stall_s_ = 0.0;
  transitions_ = 0;
  last_busy_avg_ = 0.0;
}

}  // namespace pmrl::soc
