#include "soc/pelt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmrl::soc {

PeltTracker::PeltTracker(double half_life_s) : half_life_s_(half_life_s) {
  if (half_life_s <= 0.0) {
    throw std::invalid_argument("PELT half-life must be positive");
  }
}

void PeltTracker::add_sample(double busy_fraction, double dt_s) {
  const double clamped = std::clamp(busy_fraction, 0.0, 1.0);
  // decay factor so that after half_life_s seconds the old value halves:
  // decay = 0.5^(dt / half_life). The simulation feeds a fixed tick, so
  // the geometric factor is precomputed and only re-derived when dt
  // changes — exp2 on the same input yields the same bits, so this is
  // result-identical to evaluating it every sample.
  if (dt_s != cached_dt_s_) {
    cached_dt_s_ = dt_s;
    cached_decay_ = std::exp2(-dt_s / half_life_s_);
  }
  const double decay = cached_decay_;
  util_ = util_ * decay + clamped * (1.0 - decay);
}

}  // namespace pmrl::soc
