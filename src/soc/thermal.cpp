#include "soc/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace pmrl::soc {

ThermalModel::ThermalModel(std::vector<ThermalNodeParams> nodes,
                           double ambient_c)
    : params_(std::move(nodes)), ambient_c_(ambient_c) {
  if (params_.empty()) throw std::invalid_argument("thermal: no nodes");
  for (const auto& p : params_) {
    if (p.r_th_k_per_w <= 0.0 || p.c_th_j_per_k <= 0.0) {
      throw std::invalid_argument("thermal: R and C must be positive");
    }
  }
  reset();
}

double ThermalModel::temperature_c(std::size_t node) const {
  if (node >= temp_c_.size()) throw std::out_of_range("thermal node");
  return temp_c_[node];
}

void ThermalModel::step(const std::vector<double>& power_w, double dt_s) {
  if (power_w.size() != params_.size()) {
    throw std::invalid_argument("thermal: power vector size mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    // Steady state for constant power: T_inf = T_amb + P * R.
    const double t_inf = ambient_c_ + power_w[i] * p.r_th_k_per_w;
    const double tau = p.r_th_k_per_w * p.c_th_j_per_k;
    const double decay = std::exp(-dt_s / tau);
    temp_c_[i] = t_inf + (temp_c_[i] - t_inf) * decay;
  }
}

void ThermalModel::inject_heat(std::size_t node, double delta_c) {
  if (node >= temp_c_.size()) throw std::out_of_range("thermal node");
  temp_c_[node] += delta_c;
}

void ThermalModel::reset() {
  temp_c_.clear();
  temp_c_.reserve(params_.size());
  for (const auto& p : params_) temp_c_.push_back(p.initial_temp_c);
}

}  // namespace pmrl::soc
