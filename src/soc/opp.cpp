#include "soc/opp.hpp"

#include <cmath>
#include <stdexcept>

namespace pmrl::soc {

OppTable::OppTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("OPP table is empty");
  double prev_freq = 0.0;
  for (const auto& p : points_) {
    if (p.freq_hz <= prev_freq) {
      throw std::invalid_argument("OPP frequencies must ascend");
    }
    if (p.voltage_v <= 0.0) {
      throw std::invalid_argument("OPP voltage must be positive");
    }
    prev_freq = p.freq_hz;
  }
}

const OperatingPoint& OppTable::at(std::size_t idx) const {
  if (idx >= points_.size()) throw std::out_of_range("OPP index");
  return points_[idx];
}

std::size_t OppTable::index_for_min_freq(double freq_hz) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].freq_hz >= freq_hz) return i;
  }
  return points_.size() - 1;
}

std::size_t OppTable::nearest_index(double freq_hz) const {
  std::size_t best = 0;
  double best_dist = std::abs(points_[0].freq_hz - freq_hz);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dist = std::abs(points_[i].freq_hz - freq_hz);
    if (dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

namespace {

// Builds a table with linearly interpolated voltage between the endpoints.
// Real OPP voltage curves are convex-ish step tables; linear interpolation
// between measured endpoints is within a few percent of published Exynos
// tables and preserves the V^2*f energy ordering that matters here.
std::vector<OperatingPoint> linear_table(double f_lo, double f_hi,
                                         double f_step, double v_lo,
                                         double v_hi) {
  std::vector<OperatingPoint> pts;
  const int steps = static_cast<int>(std::lround((f_hi - f_lo) / f_step));
  for (int i = 0; i <= steps; ++i) {
    const double f = f_lo + f_step * i;
    const double t = (f - f_lo) / (f_hi - f_lo);
    pts.push_back({f, v_lo + (v_hi - v_lo) * t});
  }
  return pts;
}

}  // namespace

OppTable big_cluster_opps() {
  return OppTable(linear_table(200e6, 2000e6, 100e6, 0.9000, 1.3625));
}

OppTable little_cluster_opps() {
  return OppTable(linear_table(200e6, 1400e6, 100e6, 0.9000, 1.2500));
}

OppTable tiny_test_opps() {
  return OppTable({{200e6, 0.90},
                   {500e6, 0.95},
                   {1000e6, 1.05},
                   {1500e6, 1.20},
                   {2000e6, 1.36}});
}

OppTable scaled_opps(const OppTable& base, double freq_scale,
                     double voltage_scale) {
  if (freq_scale <= 0.0 || voltage_scale <= 0.0) {
    throw std::invalid_argument("OPP scale factors must be positive");
  }
  std::vector<OperatingPoint> pts;
  pts.reserve(base.size());
  for (const auto& p : base.points()) {
    pts.push_back({p.freq_hz * freq_scale, p.voltage_v * voltage_scale});
  }
  return OppTable(std::move(pts));
}

}  // namespace pmrl::soc
