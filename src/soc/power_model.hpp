#pragma once
// Per-core power model: switching power C_eff * V^2 * f scaled by activity,
// plus voltage- and temperature-dependent leakage. Parameters default to an
// Exynos 5422-class big.LITTLE part (quad A15 + quad A7).

#include "soc/types.hpp"

namespace pmrl::soc {

/// Electrical parameters of one core type.
struct CorePowerParams {
  /// Effective switched capacitance in farads (P_dyn = c_eff * V^2 * f).
  double c_eff_f = 0.0;
  /// Leakage scale in amperes at V = 1 V and T = leak_ref_temp_c.
  double leak_i0_a = 0.0;
  /// Exponential leakage-vs-temperature coefficient (1/K).
  double leak_temp_coeff = 0.03;
  /// Temperature at which leak_i0_a is specified (Celsius).
  double leak_ref_temp_c = 25.0;
  /// Fraction of c_eff still switching when the core idles clock-gated.
  double idle_activity = 0.05;
};

/// Returns parameters calibrated so a 4-core big cluster dissipates ~6 W at
/// 2 GHz / 1.3625 V full load, matching published Exynos 5422 measurements.
CorePowerParams big_core_power_params();

/// Parameters for a LITTLE core: ~0.6 W for the 4-core cluster flat out at
/// 1.4 GHz / 1.25 V.
CorePowerParams little_core_power_params();

/// Stateless power evaluation for one core.
class CorePowerModel {
 public:
  explicit CorePowerModel(CorePowerParams params) : params_(params) {}

  /// Precomputed per-OPP power terms. The V/f polynomial only depends on
  /// the operating point, so callers that evaluate power every tick (the
  /// cluster hot path) compute these once per OPP-table entry instead of
  /// re-deriving c_eff*V^2*f and I0*V sixty-thousand times per run. The
  /// factor products are formed in exactly the evaluation order of the
  /// uncached methods, so cached results are bit-identical.
  struct OppPowerTerms {
    /// c_eff * V^2 * f — dynamic watts at activity 1.0.
    double dyn_w = 0.0;
    /// I0 * V — leakage watts at temp_factor 1.0.
    double leak_w = 0.0;
  };
  OppPowerTerms opp_terms(double freq_hz, double voltage_v) const {
    return {params_.c_eff_f * voltage_v * voltage_v * freq_hz,
            params_.leak_i0_a * voltage_v};
  }

  /// exp(k * (T - Tref)) — the only temperature-dependent leakage factor;
  /// shared by every core in a cluster (one die temperature per cluster).
  double temp_factor(double temp_c) const;

  /// Cached-path equivalent of total_power_w(f, V, busy, T, ids, ls):
  /// bit-identical given terms = opp_terms(f, V) and tf = temp_factor(T).
  double total_power_w_cached(const OppPowerTerms& terms,
                              double busy_fraction, double temp_factor,
                              double idle_dynamic_scale,
                              double leakage_scale) const {
    const double idle_component = params_.idle_activity * idle_dynamic_scale;
    const double activity =
        idle_component + (1.0 - params_.idle_activity) * busy_fraction;
    return terms.dyn_w * activity + terms.leak_w * temp_factor * leakage_scale;
  }

  /// Dynamic (switching) power in watts given the operating point and the
  /// busy fraction (0..1) of the evaluation interval. An idle core still
  /// burns idle_activity of the dynamic power (clock tree, snoops).
  double dynamic_power_w(double freq_hz, double voltage_v,
                         double busy_fraction) const;

  /// Leakage power in watts at the given voltage and die temperature.
  double leakage_power_w(double voltage_v, double temp_c) const;

  /// Total power for the interval.
  double total_power_w(double freq_hz, double voltage_v, double busy_fraction,
                       double temp_c) const;

  /// Total power with cpuidle scaling: `idle_dynamic_scale` multiplies the
  /// idle (clock-tree) dynamic component and `leakage_scale` multiplies
  /// leakage — both 1.0 for an active core, smaller in deep idle states.
  double total_power_w(double freq_hz, double voltage_v, double busy_fraction,
                       double temp_c, double idle_dynamic_scale,
                       double leakage_scale) const;

  const CorePowerParams& params() const { return params_; }

 private:
  CorePowerParams params_;
};

/// SoC-level always-on power (memory controller, interconnect, display
/// pipeline share attributed to the CPU subsystem).
struct UncorePowerParams {
  double static_power_w = 0.25;
  /// Extra watts per unit of aggregate normalized CPU throughput, modeling
  /// DRAM traffic that scales with executed work.
  double per_throughput_w = 0.35;
};

}  // namespace pmrl::soc
