#include "soc/cpuidle.hpp"

namespace pmrl::soc {

std::vector<IdleState> default_idle_states() {
  return {
      // WFI: clocks gated, logic powered. Cheap to enter/leave.
      {"C1-wfi", /*dyn=*/0.25, /*leak=*/1.00, /*exit=*/5e-6,
       /*residency=*/0.0},
      // Core retention: caches retained at low voltage.
      {"C2-retention", 0.0, 0.55, 150e-6, 2e-3},
      // Core power-off: state saved, rail gated. Vendor tables demand tens
      // of milliseconds of residency before this pays off, so it engages
      // only in genuinely idle stretches.
      {"C3-off", 0.0, 0.08, 1.2e-3, 25e-3},
  };
}

CoreIdleTracker::CoreIdleTracker(const std::vector<IdleState>* states)
    : states_(states) {
  reset();
}

double CoreIdleTracker::on_tick(bool busy, double dt_s) {
  if (states_ == nullptr || states_->empty()) {
    active_s_ += dt_s;
    return 0.0;
  }
  if (busy) {
    double penalty = 0.0;
    if (state_ >= 0) {
      penalty = (*states_)[static_cast<std::size_t>(state_)].exit_latency_s;
      state_ = -1;
      streak_s_ = 0.0;
    }
    active_s_ += dt_s;
    return penalty;
  }
  // Idle tick: enter the shallowest state immediately, then promote down
  // the ladder as the streak exceeds deeper states' residency demands.
  if (state_ < 0) state_ = 0;
  streak_s_ += dt_s;
  while (state_ + 1 < static_cast<int>(states_->size()) &&
         streak_s_ >=
             (*states_)[static_cast<std::size_t>(state_ + 1)]
                 .min_residency_s) {
    ++state_;
  }
  residency_s_[static_cast<std::size_t>(state_)] += dt_s;
  return 0.0;
}

double CoreIdleTracker::dynamic_scale() const {
  if (state_ < 0 || states_ == nullptr) return 1.0;
  return (*states_)[static_cast<std::size_t>(state_)].dynamic_scale;
}

double CoreIdleTracker::leakage_scale() const {
  if (state_ < 0 || states_ == nullptr) return 1.0;
  return (*states_)[static_cast<std::size_t>(state_)].leakage_scale;
}

void CoreIdleTracker::reset() {
  state_ = -1;
  streak_s_ = 0.0;
  active_s_ = 0.0;
  residency_s_.assign(states_ != nullptr ? states_->size() : 0, 0.0);
}

}  // namespace pmrl::soc
