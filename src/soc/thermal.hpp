#pragma once
// Lumped RC thermal model: one thermal node per cluster coupled to ambient.
// Die temperature feeds back into the leakage model and (optionally) into a
// thermal throttle that caps the OPP, both of which real mobile governors
// contend with.

#include <cstddef>
#include <vector>

namespace pmrl::soc {

/// Thermal parameters of one node.
struct ThermalNodeParams {
  /// Thermal resistance to ambient (K/W).
  double r_th_k_per_w = 4.0;
  /// Thermal capacitance (J/K). tau = R*C.
  double c_th_j_per_k = 1.0;
  double initial_temp_c = 35.0;
};

/// First-order RC thermal network with independent nodes (cluster-to-cluster
/// coupling is second-order for the power levels involved and is omitted;
/// both clusters still heat with their own dissipation).
class ThermalModel {
 public:
  ThermalModel(std::vector<ThermalNodeParams> nodes, double ambient_c = 25.0);

  std::size_t node_count() const { return params_.size(); }
  double temperature_c(std::size_t node) const;
  double ambient_c() const { return ambient_c_; }

  /// Advances node temperatures by dt seconds given per-node power (W).
  /// Uses the exact exponential solution of the RC step, so the update is
  /// stable for any dt.
  void step(const std::vector<double>& power_w, double dt_s);

  /// Adds an instantaneous temperature delta to one node — a thermal
  /// emergency event (hot-spot migration, sunlight, charger heat) injected
  /// by the fault subsystem. The RC dynamics then relax it normally.
  void inject_heat(std::size_t node, double delta_c);

  void reset();

 private:
  std::vector<ThermalNodeParams> params_;
  std::vector<double> temp_c_;
  double ambient_c_;
};

}  // namespace pmrl::soc
