#pragma once
// A DVFS cluster: a group of identical cores sharing one voltage/frequency
// domain (one OPP table), as in big.LITTLE parts where the big and LITTLE
// clusters scale independently. The cluster also models the DVFS transition
// cost: each OPP change freezes the domain for a short relock time.

#include <memory>
#include <string>
#include <vector>

#include "soc/core.hpp"
#include "soc/cpuidle.hpp"
#include "soc/opp.hpp"
#include "soc/power_model.hpp"
#include "soc/task.hpp"

namespace pmrl::soc {

/// Static description of a cluster.
struct ClusterConfig {
  std::string name;
  CoreType core_type = CoreType::Big;
  std::size_t core_count = 4;
  double ipc_factor = 1.0;
  /// PLL/regulator relock time per OPP change, during which cores stall.
  double transition_latency_s = 50e-6;
  /// Initial OPP index; SIZE_MAX means "highest".
  std::size_t initial_opp = static_cast<std::size_t>(-1);
};

/// One frequency domain with its cores and power model.
class Cluster {
 public:
  Cluster(ClusterId id, ClusterConfig config, OppTable opps,
          CorePowerParams power_params, CpuidleConfig cpuidle = {});

  ClusterId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  CoreType core_type() const { return config_.core_type; }
  std::size_t core_count() const { return cores_.size(); }
  Core& core(std::size_t i) { return cores_.at(i); }
  const Core& core(std::size_t i) const { return cores_.at(i); }
  std::vector<Core>& cores() { return cores_; }
  const std::vector<Core>& cores() const { return cores_; }

  const OppTable& opps() const { return opps_; }
  std::size_t opp_index() const { return opp_index_; }
  const OperatingPoint& current_opp() const { return opps_.at(opp_index_); }
  double freq_hz() const { return current_opp().freq_hz; }
  double voltage_v() const { return current_opp().voltage_v; }

  /// Requests an OPP change. Clamps to the table, accrues the transition
  /// stall, and counts the transition. No-op if idx already current.
  void set_opp(std::size_t idx);

  std::size_t dvfs_transitions() const { return transitions_; }

  /// Runs all cores for one tick. The usable fraction of the tick shrinks
  /// by any pending DVFS relock stall; `capacity_scale` (0..1] further
  /// derates execution (memory-bandwidth stalls). Returns the mean busy
  /// fraction.
  double run_tick(TaskSet& tasks, double dt_s, double tick_start_s,
                  std::vector<CompletedJob>& completed,
                  double capacity_scale = 1.0);

  /// Cluster power over the last tick at the given die temperature, using
  /// each core's last busy fraction.
  double power_w(double temp_c) const;

  /// Worst-case cluster power: every core fully busy at the highest OPP at
  /// the given temperature. Used to normalize per-domain energy feedback.
  double max_power_w(double temp_c) const;

  /// Mean / max PELT utilization across cores.
  double util_avg() const;
  double util_max() const;
  /// Mean instantaneous busy fraction of the last tick.
  double busy_avg() const;
  /// Frequency-invariant mean utilization: busy scaled by f/f_max.
  double util_scale_invariant() const;
  std::size_t nr_running(const TaskSet& tasks) const;
  /// Overdue queued deadline jobs across tasks placed on this cluster.
  std::size_t overdue_jobs(const TaskSet& tasks, double now_s) const;

  /// Idle-state table in effect (empty when cpuidle is disabled).
  const std::vector<IdleState>& idle_states() const;
  /// Cumulative core-seconds per idle state, summed over cores
  /// (index-aligned with idle_states()).
  std::vector<double> idle_residency_s() const;
  /// Cumulative active core-seconds.
  double active_core_s() const;

  void reset_tracking();

 private:
  ClusterId id_;
  ClusterConfig config_;
  OppTable opps_;
  /// Shared so that moving the Cluster keeps the cores' raw pointers valid.
  std::shared_ptr<const std::vector<IdleState>> idle_states_;
  std::vector<Core> cores_;
  CorePowerModel power_model_;
  /// Per-OPP c_eff*V^2*f and I0*V terms, precomputed once at construction
  /// (index-aligned with opps_) so the per-tick power evaluation does no
  /// polynomial work.
  std::vector<CorePowerModel::OppPowerTerms> opp_power_terms_;
  std::size_t opp_index_;
  double pending_stall_s_ = 0.0;
  std::size_t transitions_ = 0;
  double last_busy_avg_ = 0.0;
};

}  // namespace pmrl::soc
