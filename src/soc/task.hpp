#pragma once
// Jobs and tasks. A *task* models a schedulable thread (render thread, worker
// pool member, background service); a *job* is one unit of work with a
// release time and an optional QoS deadline (e.g. one display frame). Tasks
// execute their job queue in FIFO order on whichever core the scheduler
// placed them on.

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "soc/types.hpp"

namespace pmrl::soc {

/// One releasable unit of work.
struct Job {
  JobId id = 0;
  TaskId task = 0;
  /// Total demand in reference cycles (big-core cycles at IPC 1).
  double work_cycles = 0.0;
  /// Absolute release time in seconds.
  double release_s = 0.0;
  /// Absolute deadline in seconds; negative means best-effort (no deadline).
  double deadline_s = -1.0;

  bool has_deadline() const { return deadline_s >= 0.0; }
};

/// A completed job along with its measured completion time and the cluster
/// whose core finished it (for per-domain QoS attribution).
struct CompletedJob {
  Job job;
  double completion_s = 0.0;
  ClusterId cluster = static_cast<ClusterId>(-1);

  bool met_deadline() const {
    return !job.has_deadline() || completion_s <= job.deadline_s;
  }
  double latency_s() const { return completion_s - job.release_s; }
};

/// A schedulable thread with a FIFO job queue.
class Task {
 public:
  Task(TaskId id, std::string name, Affinity affinity, double weight = 1.0);

  TaskId id() const { return id_; }
  const std::string& name() const { return name_; }
  Affinity affinity() const { return affinity_; }
  /// Scheduling weight (relative share when competing on one core).
  double weight() const { return weight_; }

  /// Enqueues a released job.
  void submit(Job job);

  bool runnable() const { return !queue_.empty(); }
  std::size_t queued_jobs() const { return queue_.size(); }
  /// Total outstanding work in reference cycles.
  double backlog_cycles() const { return backlog_cycles_; }

  /// Queued deadline jobs whose deadline has already passed — work that is
  /// drowning. These jobs have not completed, so they are invisible to
  /// completion-based QoS signals; policies read this count instead.
  std::size_t overdue_jobs(double now_s) const;

  /// Consumes up to `cycles` reference cycles of work during the tick
  /// [tick_start_s, tick_start_s + dt_s). Jobs that finish are appended to
  /// `completed` with a completion time interpolated within the tick
  /// (assuming a uniform execution rate across the tick). Returns the number
  /// of cycles actually consumed (less than `cycles` if the queue drains).
  double execute(double cycles, double tick_start_s, double dt_s,
                 std::vector<CompletedJob>& completed);

  /// Drops all queued work (used when a scenario phase is aborted).
  void clear();

 private:
  TaskId id_;
  std::string name_;
  Affinity affinity_;
  double weight_;
  std::deque<Job> queue_;
  /// Cycles already spent on the front job.
  double front_progress_ = 0.0;
  double backlog_cycles_ = 0.0;
};

/// Owns all tasks of a simulation and allocates ids.
class TaskSet {
 public:
  /// Creates a task and returns its id.
  TaskId create(std::string name, Affinity affinity, double weight = 1.0);

  Task& at(TaskId id);
  const Task& at(TaskId id) const;
  std::size_t size() const { return tasks_.size(); }

  std::vector<Task>& tasks() { return tasks_; }
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Sum of backlog across all tasks (reference cycles).
  double total_backlog_cycles() const;
  std::size_t runnable_count() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace pmrl::soc
