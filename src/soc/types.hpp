#pragma once
// Shared vocabulary types for the MPSoC simulator. The simulator is a
// discrete-time model: time advances in fixed ticks of `dt` seconds; work is
// measured in *reference cycles* (cycles of a big core at IPC 1.0), so a
// core's per-tick capacity is freq_hz * dt * ipc_factor reference cycles.

#include <cstdint>
#include <string>

namespace pmrl::soc {

/// Simulation tick index (tick * dt = seconds since simulation start).
using Tick = std::int64_t;

/// Identifier types. Plain integers with distinct aliases; the simulator is
/// single-threaded and ids are array indices into the owning containers.
using CoreId = std::size_t;
using ClusterId = std::size_t;
using TaskId = std::size_t;
using JobId = std::uint64_t;

/// Heterogeneous core types of a big.LITTLE MPSoC.
enum class CoreType { Little, Big };

inline const char* core_type_name(CoreType t) {
  return t == CoreType::Big ? "big" : "little";
}

/// Scheduling affinity hint carried by tasks (mobile schedulers steer
/// foreground/render threads to big cores and background work to LITTLE).
enum class Affinity { Any, PreferLittle, PreferBig };

inline const char* affinity_name(Affinity a) {
  switch (a) {
    case Affinity::Any: return "any";
    case Affinity::PreferLittle: return "little";
    case Affinity::PreferBig: return "big";
  }
  return "?";
}

}  // namespace pmrl::soc
