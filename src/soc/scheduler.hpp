#pragma once
// Load-balancing task placement across the heterogeneous clusters, in the
// spirit of a mobile EAS/CFS scheduler: affinity-aware, capacity-normalized
// least-loaded placement with periodic rebalancing and sticky assignment
// between rebalances (to avoid migration thrash that would pollute the
// per-core PELT signals the governors read).

#include <vector>

#include "soc/cluster.hpp"
#include "soc/task.hpp"

namespace pmrl::soc {

/// Scheduler tuning knobs.
struct SchedulerConfig {
  /// Seconds between full rebalances; newly runnable tasks are placed
  /// immediately regardless.
  double rebalance_period_s = 0.010;
};

/// Deterministic affinity-aware load balancer.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config = {});

  /// Places runnable tasks onto cores. Called every tick; performs a full
  /// rebalance only when the rebalance period elapses or a task has no
  /// placement yet. Updates each core's run-queue.
  void schedule(TaskSet& tasks, std::vector<Cluster>& clusters, double now_s);

  /// Forces a full rebalance on the next call.
  void invalidate();

  /// Core currently hosting a task, or (cluster, core) = (SIZE_MAX, ...) if
  /// unplaced. Exposed for tests.
  struct Placement {
    std::size_t cluster = static_cast<std::size_t>(-1);
    std::size_t core = static_cast<std::size_t>(-1);
    bool valid() const { return cluster != static_cast<std::size_t>(-1); }
  };
  Placement placement_of(TaskId id) const;

 private:
  void rebalance(TaskSet& tasks, std::vector<Cluster>& clusters);
  void apply(TaskSet& tasks, std::vector<Cluster>& clusters);

  SchedulerConfig config_;
  double last_rebalance_s_ = -1.0;
  std::vector<Placement> placements_;
  /// Last core each task ever ran on (persists across idle periods; used
  /// for the sticky tie-break).
  std::vector<Placement> history_;
  /// Per-(cluster, core) run-queue scratch, reused every tick so apply()
  /// allocates nothing in steady state.
  std::vector<std::vector<std::vector<TaskId>>> queue_scratch_;
};

}  // namespace pmrl::soc
