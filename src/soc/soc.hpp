#pragma once
// The MPSoC assembly: clusters + scheduler + power/thermal models + energy
// accounting, advanced tick by tick. Governors interact with it only through
// telemetry() (observe) and set_cluster_opp() (act), mirroring the
// cpufreq-policy interface on a real mobile SoC.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "soc/cluster.hpp"
#include "soc/mem_domain.hpp"
#include "soc/scheduler.hpp"
#include "soc/task.hpp"
#include "soc/telemetry.hpp"
#include "soc/thermal.hpp"

namespace pmrl::soc {

/// Thermal-throttle safety valve: above trip_temp_c the affected cluster's
/// OPP is capped at throttle_cap_index until it cools below the hysteresis
/// point.
struct ThrottleConfig {
  bool enabled = true;
  double trip_temp_c = 95.0;
  double clear_temp_c = 85.0;
  std::size_t throttle_cap_index = 4;
};

/// Full SoC description.
struct SocConfig {
  struct ClusterSpec {
    ClusterConfig cluster;
    OppTable opps;
    CorePowerParams power;
    ThermalNodeParams thermal;
  };
  std::vector<ClusterSpec> clusters;
  UncorePowerParams uncore;
  SchedulerConfig scheduler;
  ThrottleConfig throttle;
  /// Idle-state (C-state) model, applied to every cluster.
  CpuidleConfig cpuidle;
  /// Optional memory DVFS domain (disabled by default; the paper's policy
  /// controls CPU clusters — the memory domain is the E7 extension).
  MemDomainParams memory;
  double ambient_c = 25.0;
};

/// Default big.LITTLE mobile SoC: 4 big (A15-class) + 4 LITTLE (A7-class)
/// cores with Exynos 5422-style OPP tables and calibrated power parameters.
SocConfig default_mobile_soc_config();

/// Reduced single-cluster SoC for unit tests.
SocConfig tiny_test_soc_config();

/// The simulated MPSoC.
class Soc {
 public:
  explicit Soc(SocConfig config);

  // ---- Task/workload side -------------------------------------------------
  TaskSet& tasks() { return tasks_; }
  const TaskSet& tasks() const { return tasks_; }
  /// Creates a schedulable task; returns its id.
  TaskId create_task(std::string name, Affinity affinity, double weight = 1.0);
  /// Releases a job into a task's queue.
  void submit(TaskId task, Job job);

  // ---- Governor-facing control surface ------------------------------------
  std::size_t cluster_count() const { return clusters_.size(); }
  Cluster& cluster(std::size_t i) { return clusters_.at(i); }
  const Cluster& cluster(std::size_t i) const { return clusters_.at(i); }

  /// DVFS domains a governor controls: the CPU clusters plus the optional
  /// memory domain (which, when enabled, is telemetry cluster index
  /// cluster_count()).
  std::size_t domain_count() const {
    return clusters_.size() + (mem_ ? 1 : 0);
  }
  bool has_memory_domain() const { return mem_.has_value(); }
  MemDomain& memory_domain() { return *mem_; }
  const MemDomain& memory_domain() const { return *mem_; }
  /// Current frequency / transition count of any domain (cluster or mem).
  double domain_freq_hz(std::size_t domain) const;
  std::size_t domain_dvfs_transitions(std::size_t domain) const;
  /// Cumulative seconds the memory domain throttled CPU execution.
  double mem_stalled_s() const { return mem_stalled_s_; }

  /// Requests an OPP for a domain; the thermal throttle may cap CPU
  /// clusters. Index cluster_count() addresses the memory domain.
  void set_cluster_opp(std::size_t cluster, std::size_t opp_index);

  /// Current observation snapshot.
  SocTelemetry telemetry() const;

  /// Allocation-free variant: fills `out` in place, reusing its cluster
  /// vector's capacity. The engine calls this once per decision epoch into
  /// a persistent observation buffer.
  void telemetry_into(SocTelemetry& out) const;

  // ---- Simulation side -----------------------------------------------------
  /// Advances one tick of dt seconds. Completed jobs are appended to
  /// `completed`.
  void step(double dt_s, std::vector<CompletedJob>& completed);

  /// Thermal-emergency injection seam (fault subsystem): instantly raises
  /// the cluster's die temperature by `delta_c` and re-evaluates the
  /// throttle, exactly as a hot-spot event between governor epochs would.
  void inject_thermal_event(std::size_t cluster, double delta_c);

  double now_s() const { return now_s_; }
  double total_energy_j() const { return total_energy_j_; }
  bool throttled(std::size_t cluster) const { return throttled_.at(cluster); }
  /// Cumulative seconds this cluster spent thermally throttled.
  double throttled_s(std::size_t cluster) const {
    return throttled_s_.at(cluster);
  }

  /// Clears time, energy, tracking and task queues (config and OPPs remain).
  void reset();

 private:
  void apply_throttle();

  SocConfig config_;
  TaskSet tasks_;
  std::vector<Cluster> clusters_;
  std::optional<MemDomain> mem_;
  Scheduler scheduler_;
  ThermalModel thermal_;
  std::vector<bool> throttled_;
  std::vector<double> throttled_s_;
  std::vector<double> cluster_energy_j_;
  /// Per-tick cluster power scratch (reused; step() allocates nothing in
  /// steady state).
  std::vector<double> cluster_power_scratch_;
  double uncore_energy_j_ = 0.0;
  double total_energy_j_ = 0.0;
  double last_uncore_power_w_ = 0.0;
  double mem_stalled_s_ = 0.0;
  double now_s_ = 0.0;
};

}  // namespace pmrl::soc
