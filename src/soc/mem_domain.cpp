#include "soc/mem_domain.hpp"

#include <algorithm>

namespace pmrl::soc {

OppTable default_mem_opps() {
  // LPDDR4-class operating points (controller clock, rail voltage).
  return OppTable({{400e6, 0.60},
                   {666e6, 0.65},
                   {800e6, 0.70},
                   {1066e6, 0.80},
                   {1333e6, 0.90},
                   {1600e6, 1.00},
                   {1866e6, 1.10}});
}

MemDomain::MemDomain(MemDomainParams params)
    : params_(std::move(params)),
      opps_(params_.opps.empty() ? default_mem_opps()
                                 : OppTable(params_.opps)),
      opp_index_(opps_.size() - 1) {}

void MemDomain::set_opp(std::size_t idx) {
  idx = std::min(idx, opps_.size() - 1);
  if (idx == opp_index_) return;
  opp_index_ = idx;
  ++transitions_;
}

double MemDomain::on_tick(double executed_cycles, double dt_s) {
  const double demand = executed_cycles * params_.traffic_intensity;
  const double capacity = capacity_cycles_per_s() * dt_s;
  last_util_raw_ = capacity > 0.0 ? demand / capacity : 0.0;
  stall_factor_ =
      last_util_raw_ > 1.0 ? 1.0 / last_util_raw_ : 1.0;
  energy_j_ += power_w() * dt_s;
  return last_util_raw_;
}

double MemDomain::util() const {
  return std::clamp(last_util_raw_, 0.0, 1.0);
}

double MemDomain::power_w() const {
  const double v = voltage_v();
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * util();
  return params_.static_power_w * v +
         params_.c_eff_f * v * v * freq_hz() * activity;
}

double MemDomain::max_power_w() const {
  const auto& top = opps_.highest();
  return params_.static_power_w * top.voltage_v +
         params_.c_eff_f * top.voltage_v * top.voltage_v * top.freq_hz;
}

void MemDomain::reset_tracking() {
  last_util_raw_ = 0.0;
  stall_factor_ = 1.0;
  energy_j_ = 0.0;
  transitions_ = 0;
}

}  // namespace pmrl::soc
