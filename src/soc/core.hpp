#pragma once
// A single CPU core: executes its run-queue of tasks each tick using
// weighted fair sharing of its cycle capacity, and tracks utilization with a
// PELT signal plus the instantaneous busy fraction of the last tick.

#include <vector>

#include "soc/cpuidle.hpp"
#include "soc/pelt.hpp"
#include "soc/task.hpp"
#include "soc/types.hpp"

namespace pmrl::soc {

/// One CPU core. Frequency/voltage come from its cluster each tick; the core
/// itself only knows its type, its IPC factor, and its run-queue.
class Core {
 public:
  Core(CoreId id, CoreType type, double ipc_factor);

  CoreId id() const { return id_; }
  CoreType type() const { return type_; }
  /// Reference cycles delivered per clock cycle (big = 1.0 baseline).
  double ipc_factor() const { return ipc_factor_; }

  /// Scheduler interface: replaces the run-queue contents.
  void set_runqueue(std::vector<TaskId> task_ids);
  /// Copy-assign variant for the per-tick scheduler path: reuses the
  /// run-queue's existing capacity instead of swapping in a fresh vector.
  void assign_runqueue(const std::vector<TaskId>& task_ids) {
    runqueue_ = task_ids;
  }
  const std::vector<TaskId>& runqueue() const { return runqueue_; }
  std::size_t nr_running(const TaskSet& tasks) const;

  /// Reference-cycle capacity over dt at the given clock frequency.
  double capacity_cycles(double freq_hz, double dt_s) const {
    return freq_hz * dt_s * ipc_factor_;
  }

  /// Runs one tick: distributes capacity across runnable queued tasks by
  /// weighted max-min fair sharing (unused share spills to backlogged
  /// tasks). Appends finished jobs to `completed`, updates utilization
  /// signals, and returns the busy fraction of the tick.
  double run_tick(TaskSet& tasks, double freq_hz, double dt_s,
                  double tick_start_s, std::vector<CompletedJob>& completed);

  /// Busy fraction of the most recent tick (0..1).
  double last_busy_fraction() const { return last_busy_; }
  /// PELT-decayed utilization (0..1) at the current frequency.
  double util_pelt() const { return pelt_.util(); }

  /// Attaches the cluster's idle-state table (nullptr disables cpuidle —
  /// an idle core then stays in C0). The table must outlive the core.
  void attach_idle_states(const std::vector<IdleState>* states);

  /// Idle-power scales of the current tick (1.0/1.0 when active or when
  /// cpuidle is disabled).
  double idle_dynamic_scale() const { return idle_.dynamic_scale(); }
  double idle_leakage_scale() const { return idle_.leakage_scale(); }
  const CoreIdleTracker& idle_tracker() const { return idle_; }

  void reset_tracking();

 private:
  CoreId id_;
  CoreType type_;
  double ipc_factor_;
  std::vector<TaskId> runqueue_;
  PeltTracker pelt_;
  CoreIdleTracker idle_;
  double last_busy_ = 0.0;
  /// Scratch lists for the per-tick fair-share rounds (reused to keep the
  /// tick loop allocation-free).
  std::vector<TaskId> sched_active_scratch_;
  std::vector<TaskId> sched_next_scratch_;
};

}  // namespace pmrl::soc
