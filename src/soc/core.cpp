#include "soc/core.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmrl::soc {

Core::Core(CoreId id, CoreType type, double ipc_factor)
    : id_(id), type_(type), ipc_factor_(ipc_factor) {
  if (ipc_factor <= 0.0) throw std::invalid_argument("ipc factor must be > 0");
}

void Core::set_runqueue(std::vector<TaskId> task_ids) {
  runqueue_ = std::move(task_ids);
}

std::size_t Core::nr_running(const TaskSet& tasks) const {
  std::size_t n = 0;
  for (TaskId id : runqueue_) n += tasks.at(id).runnable() ? 1 : 0;
  return n;
}

void Core::attach_idle_states(const std::vector<IdleState>* states) {
  idle_ = CoreIdleTracker(states);
}

double Core::run_tick(TaskSet& tasks, double freq_hz, double dt_s,
                      double tick_start_s,
                      std::vector<CompletedJob>& completed) {
  bool will_run = false;
  for (TaskId id : runqueue_) {
    if (tasks.at(id).runnable()) {
      will_run = true;
      break;
    }
  }
  // Idle-state bookkeeping: a wake-up pays the exit latency out of this
  // tick's execution time.
  const double wake_penalty_s =
      idle_.on_tick(will_run && freq_hz > 0.0, dt_s);
  if (wake_penalty_s > 0.0) {
    const double usable = dt_s - std::min(wake_penalty_s, dt_s);
    freq_hz *= usable / dt_s;
  }

  const double capacity = capacity_cycles(freq_hz, dt_s);
  double used_total = 0.0;
  if (capacity > 0.0 && !runqueue_.empty()) {
    // Weighted max-min fair share with spill: rounds of proportional
    // allocation; tasks that drain return their unused share to the pool.
    // The active/next lists are member scratch buffers — this runs every
    // core every tick, and per-tick allocations dominated the profile.
    std::vector<TaskId>& active = sched_active_scratch_;
    std::vector<TaskId>& still_active = sched_next_scratch_;
    active.clear();
    for (TaskId id : runqueue_) {
      if (tasks.at(id).runnable()) active.push_back(id);
    }
    double remaining = capacity;
    // Each round either consumes all remaining capacity or retires at least
    // one task, so this terminates in <= active.size() rounds.
    while (remaining > 1e-9 && !active.empty()) {
      double weight_sum = 0.0;
      for (TaskId id : active) weight_sum += tasks.at(id).weight();
      double consumed_this_round = 0.0;
      still_active.clear();
      for (TaskId id : active) {
        Task& task = tasks.at(id);
        const double share = remaining * task.weight() / weight_sum;
        const double used = task.execute(share, tick_start_s, dt_s, completed);
        consumed_this_round += used;
        if (task.runnable()) still_active.push_back(id);
      }
      remaining -= consumed_this_round;
      if (still_active.size() == active.size() &&
          consumed_this_round <= 1e-9) {
        break;  // nothing progressed; avoid spinning on float dust
      }
      std::swap(active, still_active);
    }
    used_total = capacity - std::max(remaining, 0.0);
  }
  last_busy_ = capacity > 0.0 ? std::clamp(used_total / capacity, 0.0, 1.0)
                              : 0.0;
  pelt_.add_sample(last_busy_, dt_s);
  return last_busy_;
}

void Core::reset_tracking() {
  pelt_.reset();
  idle_.reset();
  last_busy_ = 0.0;
}

}  // namespace pmrl::soc
