#pragma once
// Telemetry snapshots exposed to governors. This is the entire observation
// surface a power-management policy gets — identical for the six baseline
// governors and for the RL policy, matching the paper's setup where the
// policy reads the same counters the kernel governors read.

#include <cstddef>
#include <vector>

namespace pmrl::soc {

/// Per-cluster observation at a governor decision point.
struct ClusterTelemetry {
  std::size_t cluster_id = 0;
  std::size_t opp_index = 0;
  std::size_t opp_count = 0;
  double freq_hz = 0.0;
  /// Frequency of the table's highest OPP (the cluster's f_max).
  double max_freq_hz = 0.0;
  double voltage_v = 0.0;
  /// Mean / max PELT utilization across the cluster's cores (0..1, relative
  /// to the *current* frequency).
  double util_avg = 0.0;
  double util_max = 0.0;
  /// Frequency-invariant utilization: util_avg * f / f_max.
  double util_invariant = 0.0;
  /// Instantaneous busy fraction of the last tick.
  double busy_avg = 0.0;
  double power_w = 0.0;
  /// Worst-case cluster power at the current temperature (normalization
  /// reference for energy feedback).
  double max_power_w = 0.0;
  double energy_j = 0.0;
  double temp_c = 0.0;
  std::size_t nr_running = 0;
  /// Queued deadline jobs on this cluster already past their deadline.
  std::size_t overdue_jobs = 0;
  std::size_t dvfs_transitions = 0;
};

/// Whole-SoC observation.
struct SocTelemetry {
  double time_s = 0.0;
  std::vector<ClusterTelemetry> clusters;
  double uncore_power_w = 0.0;
  double total_power_w = 0.0;
  double total_energy_j = 0.0;
  std::size_t runnable_tasks = 0;
  double backlog_cycles = 0.0;
};

}  // namespace pmrl::soc
