#include "soc/soc.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace pmrl::soc {

SocConfig default_mobile_soc_config() {
  SocConfig cfg;

  SocConfig::ClusterSpec little{
      ClusterConfig{"little", CoreType::Little, 4, /*ipc=*/0.5,
                    /*transition_latency_s=*/50e-6,
                    /*initial_opp=*/static_cast<std::size_t>(-1)},
      little_cluster_opps(), little_core_power_params(),
      // LITTLE cluster: small silicon area -> higher Rth, small Cth.
      ThermalNodeParams{/*r_th=*/8.0, /*c_th=*/0.5, /*initial=*/35.0}};

  SocConfig::ClusterSpec big{
      ClusterConfig{"big", CoreType::Big, 4, /*ipc=*/1.0,
                    /*transition_latency_s=*/50e-6,
                    /*initial_opp=*/static_cast<std::size_t>(-1)},
      big_cluster_opps(), big_core_power_params(),
      ThermalNodeParams{/*r_th=*/4.0, /*c_th=*/1.2, /*initial=*/35.0}};

  cfg.clusters.push_back(std::move(little));
  cfg.clusters.push_back(std::move(big));
  return cfg;
}

SocConfig tiny_test_soc_config() {
  SocConfig cfg;
  SocConfig::ClusterSpec only{
      ClusterConfig{"test", CoreType::Big, 2, /*ipc=*/1.0,
                    /*transition_latency_s=*/0.0,
                    /*initial_opp=*/static_cast<std::size_t>(-1)},
      tiny_test_opps(), big_core_power_params(),
      ThermalNodeParams{4.0, 1.0, 35.0}};
  cfg.clusters.push_back(std::move(only));
  cfg.throttle.enabled = false;
  return cfg;
}

namespace {
std::vector<ThermalNodeParams> thermal_nodes(const SocConfig& cfg) {
  std::vector<ThermalNodeParams> nodes;
  nodes.reserve(cfg.clusters.size());
  for (const auto& spec : cfg.clusters) nodes.push_back(spec.thermal);
  return nodes;
}
}  // namespace

Soc::Soc(SocConfig config)
    : config_(std::move(config)),
      scheduler_(config_.scheduler),
      thermal_(thermal_nodes(config_), config_.ambient_c) {
  if (config_.clusters.empty()) {
    throw std::invalid_argument("SoC needs at least one cluster");
  }
  clusters_.reserve(config_.clusters.size());
  for (std::size_t i = 0; i < config_.clusters.size(); ++i) {
    const auto& spec = config_.clusters[i];
    clusters_.emplace_back(i, spec.cluster, spec.opps, spec.power,
                           config_.cpuidle);
  }
  if (config_.memory.enabled) mem_.emplace(config_.memory);
  throttled_.assign(clusters_.size(), false);
  throttled_s_.assign(clusters_.size(), 0.0);
  cluster_energy_j_.assign(clusters_.size(), 0.0);
}

double Soc::domain_freq_hz(std::size_t domain) const {
  if (domain < clusters_.size()) return clusters_[domain].freq_hz();
  if (mem_ && domain == clusters_.size()) return mem_->freq_hz();
  throw std::out_of_range("domain id");
}

std::size_t Soc::domain_dvfs_transitions(std::size_t domain) const {
  if (domain < clusters_.size()) return clusters_[domain].dvfs_transitions();
  if (mem_ && domain == clusters_.size()) return mem_->dvfs_transitions();
  throw std::out_of_range("domain id");
}

TaskId Soc::create_task(std::string name, Affinity affinity, double weight) {
  return tasks_.create(std::move(name), affinity, weight);
}

void Soc::submit(TaskId task, Job job) {
  job.release_s = now_s_;
  tasks_.at(task).submit(job);
}

void Soc::set_cluster_opp(std::size_t cluster, std::size_t opp_index) {
  if (mem_ && cluster == clusters_.size()) {
    mem_->set_opp(opp_index);
    return;
  }
  if (cluster >= clusters_.size()) throw std::out_of_range("cluster id");
  if (config_.throttle.enabled && throttled_[cluster]) {
    opp_index = std::min(opp_index, config_.throttle.throttle_cap_index);
  }
  clusters_[cluster].set_opp(opp_index);
}

void Soc::inject_thermal_event(std::size_t cluster, double delta_c) {
  if (cluster >= clusters_.size()) throw std::out_of_range("cluster id");
  thermal_.inject_heat(cluster, delta_c);
  apply_throttle();
}

void Soc::apply_throttle() {
  if (!config_.throttle.enabled) return;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const double temp = thermal_.temperature_c(i);
    if (!throttled_[i] && temp >= config_.throttle.trip_temp_c) {
      throttled_[i] = true;
      PMRL_WARN("soc") << clusters_[i].name() << " thermal throttle at "
                       << temp << " C";
    } else if (throttled_[i] && temp <= config_.throttle.clear_temp_c) {
      throttled_[i] = false;
    }
    if (throttled_[i] &&
        clusters_[i].opp_index() > config_.throttle.throttle_cap_index) {
      clusters_[i].set_opp(config_.throttle.throttle_cap_index);
    }
  }
}

void Soc::step(double dt_s, std::vector<CompletedJob>& completed) {
  if (dt_s <= 0.0) throw std::invalid_argument("dt must be positive");
  scheduler_.schedule(tasks_, clusters_, now_s_);

  // Memory-bandwidth stall from the previous tick derates this tick.
  const double capacity_scale = mem_ ? mem_->stall_factor() : 1.0;

  double executed_norm = 0.0;  // normalized executed throughput for uncore
  double executed_cycles = 0.0;
  std::vector<double>& cluster_power = cluster_power_scratch_;
  cluster_power.assign(clusters_.size(), 0.0);
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    auto& cluster = clusters_[i];
    const double busy =
        cluster.run_tick(tasks_, dt_s, now_s_, completed, capacity_scale);
    executed_norm += busy * static_cast<double>(cluster.core_count()) *
                     cluster.freq_hz() /
                     cluster.opps().highest().freq_hz;
    executed_cycles += busy * static_cast<double>(cluster.core_count()) *
                       cluster.freq_hz() * capacity_scale * dt_s *
                       cluster.cores().front().ipc_factor();
    const double power = cluster.power_w(thermal_.temperature_c(i));
    cluster_power[i] = power;
    cluster_energy_j_[i] += power * dt_s;
  }
  if (mem_) {
    mem_->on_tick(executed_cycles, dt_s);
    if (mem_->stall_factor() < 1.0) mem_stalled_s_ += dt_s;
  }

  last_uncore_power_w_ = config_.uncore.static_power_w +
                         config_.uncore.per_throughput_w * executed_norm /
                             std::max<std::size_t>(1, clusters_.size());
  uncore_energy_j_ += last_uncore_power_w_ * dt_s;

  double tick_power = last_uncore_power_w_;
  for (double p : cluster_power) tick_power += p;
  if (mem_) tick_power += mem_->power_w();
  total_energy_j_ += tick_power * dt_s;

  thermal_.step(cluster_power, dt_s);
  apply_throttle();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (throttled_[i]) throttled_s_[i] += dt_s;
  }

  now_s_ += dt_s;
}

SocTelemetry Soc::telemetry() const {
  SocTelemetry t;
  telemetry_into(t);
  return t;
}

void Soc::telemetry_into(SocTelemetry& t) const {
  t.time_s = now_s_;
  t.clusters.resize(domain_count());
  double power_sum = 0.0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const auto& c = clusters_[i];
    ClusterTelemetry& ct = t.clusters[i];
    ct.cluster_id = i;
    ct.opp_index = c.opp_index();
    ct.opp_count = c.opps().size();
    ct.freq_hz = c.freq_hz();
    ct.max_freq_hz = c.opps().highest().freq_hz;
    ct.voltage_v = c.voltage_v();
    ct.util_avg = c.util_avg();
    ct.util_max = c.util_max();
    ct.util_invariant = c.util_scale_invariant();
    ct.busy_avg = c.busy_avg();
    ct.power_w = c.power_w(thermal_.temperature_c(i));
    ct.max_power_w = c.max_power_w(thermal_.temperature_c(i));
    ct.energy_j = cluster_energy_j_[i];
    ct.temp_c = thermal_.temperature_c(i);
    ct.nr_running = c.nr_running(tasks_);
    ct.overdue_jobs = c.overdue_jobs(tasks_, now_s_);
    ct.dvfs_transitions = c.dvfs_transitions();
    power_sum += ct.power_w;
  }
  if (mem_) {
    ClusterTelemetry& ct = t.clusters[clusters_.size()];
    ct.cluster_id = clusters_.size();
    ct.opp_index = mem_->opp_index();
    ct.opp_count = mem_->opps().size();
    ct.freq_hz = mem_->freq_hz();
    ct.max_freq_hz = mem_->opps().highest().freq_hz;
    ct.voltage_v = mem_->voltage_v();
    // Bandwidth utilization plays the role of per-domain utilization.
    ct.util_avg = mem_->util();
    ct.util_max = mem_->util();
    ct.util_invariant =
        mem_->util() * mem_->freq_hz() / mem_->opps().highest().freq_hz;
    ct.busy_avg = mem_->util();
    ct.power_w = mem_->power_w();
    ct.max_power_w = mem_->max_power_w();
    ct.energy_j = mem_->energy_j();
    ct.temp_c = config_.ambient_c;
    ct.nr_running = 0;
    // When the bus is the bottleneck, every overdue job is its problem.
    ct.overdue_jobs = 0;
    if (mem_->stall_factor() < 1.0) {
      for (const auto& c : clusters_) {
        ct.overdue_jobs += c.overdue_jobs(tasks_, now_s_);
      }
    }
    ct.dvfs_transitions = mem_->dvfs_transitions();
    power_sum += ct.power_w;
  }
  t.uncore_power_w = last_uncore_power_w_;
  t.total_power_w = power_sum + last_uncore_power_w_;
  t.total_energy_j = total_energy_j_;
  t.runnable_tasks = tasks_.runnable_count();
  t.backlog_cycles = tasks_.total_backlog_cycles();
}

void Soc::reset() {
  for (auto& task : tasks_.tasks()) task.clear();
  for (auto& cluster : clusters_) cluster.reset_tracking();
  scheduler_.invalidate();
  if (mem_) mem_->reset_tracking();
  mem_stalled_s_ = 0.0;
  thermal_.reset();
  throttled_.assign(clusters_.size(), false);
  throttled_s_.assign(clusters_.size(), 0.0);
  cluster_energy_j_.assign(clusters_.size(), 0.0);
  uncore_energy_j_ = 0.0;
  total_energy_j_ = 0.0;
  last_uncore_power_w_ = 0.0;
  now_s_ = 0.0;
}

}  // namespace pmrl::soc
