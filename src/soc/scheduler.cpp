#include "soc/scheduler.hpp"

#include <algorithm>

namespace pmrl::soc {

Scheduler::Scheduler(SchedulerConfig config) : config_(config) {}

void Scheduler::invalidate() { last_rebalance_s_ = -1.0; }

Scheduler::Placement Scheduler::placement_of(TaskId id) const {
  if (id < placements_.size()) return placements_[id];
  return {};
}

void Scheduler::schedule(TaskSet& tasks, std::vector<Cluster>& clusters,
                         double now_s) {
  placements_.resize(tasks.size());
  bool need_rebalance =
      last_rebalance_s_ < 0.0 ||
      now_s - last_rebalance_s_ >= config_.rebalance_period_s;
  if (!need_rebalance) {
    for (const auto& task : tasks.tasks()) {
      if (task.runnable() && !placements_[task.id()].valid()) {
        need_rebalance = true;
        break;
      }
    }
  }
  if (need_rebalance) {
    rebalance(tasks, clusters);
    last_rebalance_s_ = now_s;
  }
  apply(tasks, clusters);
}

void Scheduler::rebalance(TaskSet& tasks, std::vector<Cluster>& clusters) {
  // Per-core normalized load = sum of weights of tasks placed there divided
  // by the core's relative capacity at the current OPP.
  struct Slot {
    std::size_t cluster;
    std::size_t core;
    CoreType type;
    double capacity;  // relative reference-cycle rate
    double load = 0.0;
  };
  std::vector<Slot> slots;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& cluster = clusters[c];
    const double cap =
        cluster.freq_hz() * cluster.cores().front().ipc_factor();
    for (std::size_t k = 0; k < cluster.core_count(); ++k) {
      slots.push_back({c, k, cluster.core_type(), cap, 0.0});
    }
  }

  // Deterministic order: heaviest tasks first, ties by id.
  std::vector<const Task*> order;
  for (const auto& task : tasks.tasks()) {
    if (task.runnable()) order.push_back(&task);
  }
  std::sort(order.begin(), order.end(), [](const Task* a, const Task* b) {
    if (a->weight() != b->weight()) return a->weight() > b->weight();
    return a->id() < b->id();
  });

  // History gives the sticky tie-break: on load ties a task stays where it
  // last ran (cache affinity — and it stops every newly-runnable task from
  // piling onto core 0, which would concentrate staggered periodic tasks
  // onto one core and inflate util_max).
  history_.resize(placements_.size());
  for (auto& p : placements_) p = {};

  auto pick = [&](const Task& task) -> Slot* {
    // Two passes: preferred core type, then any. Affinity::Any prefers the
    // LITTLE side when loads tie (energy-aware tie-break).
    auto better = [&](const Slot& a, const Slot& b) {
      if (a.load != b.load) return a.load < b.load;
      if (task.affinity() == Affinity::PreferBig) {
        if (a.type != b.type) return a.type == CoreType::Big;
      } else {
        if (a.type != b.type) return a.type == CoreType::Little;
      }
      if (a.cluster != b.cluster) return a.cluster < b.cluster;
      return a.core < b.core;
    };
    const CoreType preferred =
        task.affinity() == Affinity::PreferBig ? CoreType::Big
                                               : CoreType::Little;
    Slot* best = nullptr;
    if (task.affinity() != Affinity::Any) {
      for (auto& slot : slots) {
        if (slot.type != preferred) continue;
        // Spill to the other cluster once every preferred core already has
        // a task; a loaded preferred core is worse than an idle other core.
        if (slot.load > 0.0) continue;
        if (!best || better(slot, *best)) best = &slot;
      }
    }
    if (!best) {
      for (auto& slot : slots) {
        if (!best || better(slot, *best)) best = &slot;
      }
    }
    return best;
  };

  auto slot_of = [&](const Placement& p) -> Slot* {
    if (!p.valid()) return nullptr;
    for (auto& slot : slots) {
      if (slot.cluster == p.cluster && slot.core == p.core) return &slot;
    }
    return nullptr;
  };

  for (const Task* task : order) {
    Slot* slot = pick(*task);
    // Sticky tie-break: stay on the last core this task ran on when it is
    // no worse and of the same core type the balancer picked (so affinity
    // spills still return to the preferred cluster once it frees up).
    if (task->id() < history_.size()) {
      Slot* prev = slot_of(history_[task->id()]);
      if (prev != nullptr && prev->type == slot->type &&
          prev->load <= slot->load) {
        slot = prev;
      }
    }
    placements_[task->id()] = {slot->cluster, slot->core};
    history_[task->id()] = placements_[task->id()];
    slot->load += task->weight() / (slot->capacity / 1e9);
  }
}

void Scheduler::apply(TaskSet& tasks, std::vector<Cluster>& clusters) {
  // Reuse the nested scratch queues (and, via assign_runqueue, the cores'
  // own run-queue storage): this runs every tick and was the engine's
  // biggest steady-state allocation source.
  if (queue_scratch_.size() != clusters.size()) {
    queue_scratch_.resize(clusters.size());
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    auto& cluster_queues = queue_scratch_[c];
    if (cluster_queues.size() != clusters[c].core_count()) {
      cluster_queues.resize(clusters[c].core_count());
    }
    for (auto& queue : cluster_queues) queue.clear();
  }
  for (const auto& task : tasks.tasks()) {
    const Placement& p = placements_[task.id()];
    if (task.runnable() && p.valid()) {
      queue_scratch_[p.cluster][p.core].push_back(task.id());
    }
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t k = 0; k < clusters[c].core_count(); ++k) {
      clusters[c].core(k).assign_runqueue(queue_scratch_[c][k]);
    }
  }
}

}  // namespace pmrl::soc
