#pragma once
// The hardware-implemented policy engine: the Q-datapath plus the CPU
// interface, invoked once per decision epoch exactly like the software
// governor. Decision values are bit-exact with FixedPointQAgent; latency is
// the sum of the interface cost (paid by the CPU) and the datapath cycles
// (paid at the FPGA clock).

#include "hw/axi.hpp"
#include "hw/datapath.hpp"

namespace pmrl::hw {

/// Accelerator + interface configuration.
struct HwPolicyConfig {
  double fpga_clock_hz = 100e6;
  DatapathTiming timing;
  AxiParams axi;
  /// MMIO writes per invocation: packed state word, packed reward word,
  /// doorbell.
  std::size_t invocation_writes = 3;
  /// MMIO reads per invocation: the action/status word.
  std::size_t invocation_reads = 1;
  rl::FixedAgentConfig agent;
};

/// Latency of one policy invocation.
struct PolicyLatency {
  /// Datapath-only latency (the "raw" hardware decision time).
  double raw_s = 0.0;
  /// CPU-observed latency including driver + AXI transfers.
  double end_to_end_s = 0.0;
  unsigned datapath_cycles = 0;
};

/// One hardware policy instance.
class HwPolicyEngine {
 public:
  HwPolicyEngine(HwPolicyConfig config, std::size_t states,
                 std::size_t actions);

  /// One governor invocation: applies the TD update for the previous
  /// transition (using `reward`) and selects the action for `state`.
  /// The first invocation skips the update (no previous transition).
  std::size_t invoke(std::size_t state, double reward,
                     PolicyLatency& latency);

  /// Clears the previous-transition chain (not the Q memory).
  void reset_chain();

  rl::FixedPointQAgent& agent() { return datapath_.agent(); }
  const rl::FixedPointQAgent& agent() const { return datapath_.agent(); }
  QDatapath& datapath() { return datapath_; }
  const AxiLiteModel& axi() const { return axi_; }
  const HwPolicyConfig& config() const { return config_; }

  /// Constant per-invocation interface latency (seconds).
  double interface_latency_s() const;

 private:
  HwPolicyConfig config_;
  QDatapath datapath_;
  AxiLiteModel axi_;
  bool has_prev_ = false;
  std::size_t prev_state_ = 0;
  std::size_t prev_action_ = 0;
};

}  // namespace pmrl::hw
