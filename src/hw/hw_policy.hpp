#pragma once
// The hardware-implemented policy engine: the Q-datapath plus the CPU
// interface, invoked once per decision epoch exactly like the software
// governor. Decision values are bit-exact with FixedPointQAgent; latency is
// the sum of the interface cost (paid by the CPU) and the datapath cycles
// (paid at the FPGA clock).

#include "hw/axi.hpp"
#include "hw/datapath.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
}  // namespace pmrl::obs

namespace pmrl::hw {

/// Accelerator + interface configuration.
struct HwPolicyConfig {
  double fpga_clock_hz = 100e6;
  DatapathTiming timing;
  AxiParams axi;
  /// MMIO writes per invocation: packed state word, packed reward word,
  /// doorbell.
  std::size_t invocation_writes = 3;
  /// MMIO reads per invocation: the action/status word.
  std::size_t invocation_reads = 1;
  rl::FixedAgentConfig agent;
};

/// Latency of one policy invocation.
struct PolicyLatency {
  /// Datapath-only latency (the "raw" hardware decision time).
  double raw_s = 0.0;
  /// CPU-observed latency including driver + AXI transfers — and, under
  /// an active interface fault model, every retried/timed-out attempt.
  double end_to_end_s = 0.0;
  unsigned datapath_cycles = 0;
  /// Interface attempts beyond the first (0 without faults).
  unsigned interface_retries = 0;
  /// Attempts that expired the driver timeout (subset of the retries,
  /// plus possibly the final failed attempt).
  unsigned interface_timeouts = 0;
  /// False when the interface exhausted its retry budget; the returned
  /// action is then the previous action (held), not a fresh decision.
  bool interface_ok = true;
};

/// One hardware policy instance.
class HwPolicyEngine {
 public:
  HwPolicyEngine(HwPolicyConfig config, std::size_t states,
                 std::size_t actions);

  /// One governor invocation: applies the TD update for the previous
  /// transition (using `reward`) and selects the action for `state`.
  /// The first invocation skips the update (no previous transition).
  /// With a fault model installed (set_interface_faults) the AXI leg may
  /// retry or fail outright; on failure the datapath is not invoked and
  /// the previous action is held — the call always returns in bounded
  /// time.
  std::size_t invoke(std::size_t state, double reward,
                     PolicyLatency& latency);

  /// Installs (or, with default-constructed params, removes) an interface
  /// fault model. Fault sampling is driven by a private RNG seeded here,
  /// so a fixed seed replays an identical fault sequence.
  void set_interface_faults(AxiFaultParams faults, std::uint64_t seed);
  /// Invocations that exhausted the interface retry budget so far.
  std::size_t interface_failures() const { return interface_failures_; }

  /// Clears the previous-transition chain (not the Q memory).
  void reset_chain();

  rl::FixedPointQAgent& agent() { return datapath_.agent(); }
  const rl::FixedPointQAgent& agent() const { return datapath_.agent(); }
  QDatapath& datapath() { return datapath_; }
  const AxiLiteModel& axi() const { return axi_; }
  const HwPolicyConfig& config() const { return config_; }

  /// Constant per-invocation interface latency (seconds).
  double interface_latency_s() const;

  /// Installs a trace sink (nullptr disengages): every invoke() emits one
  /// HwInvoke event carrying state/action/reward, the end-to-end latency,
  /// and the retry count (value); failed invocations get detail="hold".
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a metrics registry (nullptr detaches): invocation, AXI
  /// retry/timeout, and interface-failure counters.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  HwPolicyConfig config_;
  QDatapath datapath_;
  AxiLiteModel axi_;
  AxiFaultParams faults_;
  Rng fault_rng_;
  std::size_t interface_failures_ = 0;
  bool has_prev_ = false;
  std::size_t prev_state_ = 0;
  std::size_t prev_action_ = 0;
  std::size_t invocations_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* invocations_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
};

}  // namespace pmrl::hw
