#include "hw/sw_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace pmrl::hw {

SwPolicyCostModel::SwPolicyCostModel(SwCostParams params,
                                     std::size_t action_count,
                                     std::uint64_t seed)
    : params_(params), action_count_(action_count) {
  (void)seed;
  if (params_.cpu_clock_hz <= 0.0) {
    throw std::invalid_argument("cpu clock must be positive");
  }
  if (action_count_ == 0) {
    throw std::invalid_argument("action count must be positive");
  }
}

double SwPolicyCostModel::mean_latency_s() const {
  const double cycle_s = 1.0 / params_.cpu_clock_hz;
  const double invoke = params_.invoke_overhead_s;
  const double telemetry =
      static_cast<double>(params_.counters_read) * params_.counter_read_s;
  const double featurize = params_.featurize_cycles * cycle_s;
  const double q_access =
      static_cast<double>(params_.q_line_fills) * params_.line_fill_s +
      static_cast<double>(action_count_) * params_.per_action_cycles *
          cycle_s;
  const double update = params_.update_cycles * cycle_s;
  return invoke + telemetry + featurize + q_access + update;
}

double SwPolicyCostModel::sample_latency_s(Rng& rng) const {
  const double mean = mean_latency_s();
  if (params_.jitter_sigma <= 0.0) return mean;
  // Lognormal multiplier with unit mean: exp(N(-sigma^2/2, sigma)).
  const double sigma = params_.jitter_sigma;
  const double factor = std::exp(rng.normal(-0.5 * sigma * sigma, sigma));
  return mean * factor;
}

}  // namespace pmrl::hw
