#pragma once
// Cycle-accurate model of the FPGA Q-policy datapath. The pipeline mirrors
// a straightforward RTL implementation of tabular Q-learning:
//
//   decide:  state capture -> Q-row address -> banked BRAM read (all action
//            words in parallel) -> comparator argmax tree -> epsilon LFSR
//            test -> action mux
//   update:  next-state row read -> max tree -> gamma multiply -> reward add
//            -> old-Q subtract -> alpha multiply -> accumulate -> write-back
//
// Values are computed by the bit-exact FixedPointQAgent; this class only
// accounts cycles, so the "hardware" produces the same numbers as the
// fixed-point software agent while modeling its latency.

#include <cstddef>
#include <string>
#include <vector>

#include "rl/fixed_agent.hpp"

namespace pmrl::hw {

/// Datapath timing parameters (cycles at the FPGA clock).
struct DatapathTiming {
  unsigned bram_read_cycles = 2;   ///< synchronous BRAM with output register
  unsigned mult_cycles = 2;        ///< pipelined DSP multiply
  unsigned add_cycles = 1;
  unsigned compare_stage_cycles = 1;  ///< per level of the argmax tree
  unsigned lfsr_cycles = 1;           ///< runs in parallel with the read
  unsigned mux_cycles = 1;
  unsigned writeback_cycles = 1;
};

/// Per-phase cycle breakdown of one policy iteration.
struct CycleBreakdown {
  unsigned decide_cycles = 0;
  unsigned update_cycles = 0;
  unsigned total() const { return decide_cycles + update_cycles; }
};

/// The modeled accelerator datapath.
class QDatapath {
 public:
  QDatapath(rl::FixedAgentConfig agent_config, std::size_t states,
            std::size_t actions, DatapathTiming timing = {});

  /// Action selection: returns the chosen action and accounts the cycles.
  std::size_t decide(std::size_t state, CycleBreakdown& cycles);

  /// TD update for the previous transition; accounts the cycles.
  void update(std::size_t state, std::size_t action, double reward,
              std::size_t next_state, CycleBreakdown& cycles);

  /// Cycles of a decide phase (constant: the pipeline has no data-dependent
  /// stalls).
  unsigned decide_cycle_count() const;
  /// Cycles of an update phase.
  unsigned update_cycle_count() const;

  /// Depth of the argmax comparator tree: ceil(log2(actions)).
  unsigned argmax_tree_depth() const;

  rl::FixedPointQAgent& agent() { return agent_; }
  const rl::FixedPointQAgent& agent() const { return agent_; }
  const DatapathTiming& timing() const { return timing_; }

  /// BRAM bits required for the Q memory (states x actions x word width) —
  /// reported by the resource table in EXPERIMENTS.md.
  std::size_t qmem_bits() const;

 private:
  rl::FixedPointQAgent agent_;
  DatapathTiming timing_;
  std::size_t actions_;
};

}  // namespace pmrl::hw
