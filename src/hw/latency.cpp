#include "hw/latency.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pmrl::hw {

double LatencyComparison::mean_speedup_end_to_end() const {
  if (hw_end_to_end_s.mean() <= 0.0) return 0.0;
  return sw_latency_s.mean() / hw_end_to_end_s.mean();
}

double LatencyComparison::mean_speedup_raw() const {
  if (hw_raw_s.mean() <= 0.0) return 0.0;
  return sw_latency_s.mean() / hw_raw_s.mean();
}

double LatencyComparison::max_speedup_raw() const {
  if (hw_raw_s.count() == 0 || hw_raw_s.min() <= 0.0) return 0.0;
  return sw_latency_s.max() / hw_raw_s.min();
}

LatencyComparison run_latency_experiment(
    const LatencyExperimentConfig& config, std::size_t states,
    std::size_t actions, const std::vector<InvocationRecord>& stream) {
  LatencyComparison result;
  HwPolicyEngine hw(config.hw, states, actions);
  SwPolicyCostModel sw(config.sw, actions);
  Rng jitter(config.jitter_seed);

  result.sw_latency_s.reserve(stream.size());
  result.hw_raw_s.reserve(stream.size());
  result.hw_end_to_end_s.reserve(stream.size());

  for (const auto& record : stream) {
    PolicyLatency latency;
    hw.invoke(record.state, record.reward, latency);
    result.hw_raw_s.add(latency.raw_s);
    result.hw_end_to_end_s.add(latency.end_to_end_s);
    result.sw_latency_s.add(sw.sample_latency_s(jitter));
  }
  return result;
}

std::vector<InvocationRecord> synthetic_stream(std::size_t states,
                                               std::size_t count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InvocationRecord> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    InvocationRecord record;
    record.state = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states) - 1));
    record.reward = rng.uniform(-2.0, 0.0);
    stream.push_back(record);
  }
  return stream;
}

}  // namespace pmrl::hw
