#pragma once
// Latency cost model of the *software* policy implementation running inside
// the kernel of a mobile CPU — the baseline the paper measures its FPGA
// implementation against. The cost is assembled from the same phases the
// kernel-governor path pays on real silicon:
//
//   invoke      timer/softirq entry into the governor callback
//   telemetry   uncached reads of per-core activity/energy counters
//   featurize   state discretization arithmetic
//   q_access    Q-row loads (cold in cache at governor cadence) + argmax
//   update      TD arithmetic + store
//
// Per-invocation jitter (preemption, cache state) is modeled with a
// lognormal multiplier so latency *distributions*, not just means, can be
// compared.

#include "util/rng.hpp"

namespace pmrl::hw {

/// Software-policy cost parameters (mobile-CPU class defaults: 2 GHz core,
/// LPDDR-backed last-level cache).
struct SwCostParams {
  double cpu_clock_hz = 2.0e9;
  /// Fixed governor-invocation overhead (timer softirq, callback dispatch),
  /// seconds.
  double invoke_overhead_s = 2.8e-6;
  /// Uncached counter read cost (seconds) and how many are read per
  /// decision (utilization + energy per cluster, QoS counters).
  double counter_read_s = 400e-9;
  unsigned counters_read = 8;
  /// Featurization arithmetic, CPU cycles.
  unsigned featurize_cycles = 320;
  /// Cache-miss cost of one Q-table line fill (seconds) and the expected
  /// number of line fills per decision (Q row + neighbors; cold at ~50 ms
  /// cadence).
  double line_fill_s = 150e-9;
  unsigned q_line_fills = 6;
  /// Per-action compare/ALU cycles for argmax.
  unsigned per_action_cycles = 8;
  /// TD-update arithmetic + store, CPU cycles.
  unsigned update_cycles = 260;
  /// Lognormal jitter sigma applied multiplicatively (0 disables).
  double jitter_sigma = 0.12;
};

/// Samples per-invocation software decision latency.
class SwPolicyCostModel {
 public:
  SwPolicyCostModel(SwCostParams params, std::size_t action_count,
                    std::uint64_t seed = 7);

  /// Deterministic mean latency of one decide+update invocation (seconds).
  double mean_latency_s() const;

  /// One jittered latency sample (seconds).
  double sample_latency_s(Rng& rng) const;

  const SwCostParams& params() const { return params_; }

 private:
  SwCostParams params_;
  std::size_t action_count_;
};

}  // namespace pmrl::hw
