#include "hw/hw_policy.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace pmrl::hw {

namespace {
void emit_hw_event(pmrl::obs::TraceSink* sink, std::size_t invocation,
                   std::size_t state, std::size_t action, double reward,
                   const PolicyLatency& latency) {
  if (!sink) return;
  pmrl::obs::TraceEvent event;
  event.kind = pmrl::obs::EventKind::HwInvoke;
  event.epoch = invocation;
  event.state = state;
  event.action = static_cast<std::uint32_t>(action);
  event.reward = reward;
  event.latency_s = latency.end_to_end_s;
  event.value = static_cast<double>(latency.interface_retries);
  if (!latency.interface_ok) event.detail = "hold";
  sink->record(event);
}
}  // namespace

HwPolicyEngine::HwPolicyEngine(HwPolicyConfig config, std::size_t states,
                               std::size_t actions)
    : config_(config),
      datapath_(config.agent, states, actions, config.timing),
      axi_(config.axi) {
  if (config_.fpga_clock_hz <= 0.0) {
    throw std::invalid_argument("fpga clock must be positive");
  }
}

double HwPolicyEngine::interface_latency_s() const {
  return axi_.invocation_latency_s(config_.invocation_writes,
                                   config_.invocation_reads);
}

void HwPolicyEngine::set_metrics(pmrl::obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  invocations_counter_ =
      metrics ? &metrics->counter("hw.invocations") : nullptr;
  retries_counter_ = metrics ? &metrics->counter("hw.axi_retries") : nullptr;
  timeouts_counter_ =
      metrics ? &metrics->counter("hw.axi_timeouts") : nullptr;
  failures_counter_ =
      metrics ? &metrics->counter("hw.interface_failures") : nullptr;
}

void HwPolicyEngine::set_interface_faults(AxiFaultParams faults,
                                          std::uint64_t seed) {
  faults_ = faults;
  fault_rng_ = Rng(seed);
  interface_failures_ = 0;
}

std::size_t HwPolicyEngine::invoke(std::size_t state, double reward,
                                   PolicyLatency& latency) {
  const std::size_t invocation = invocations_++;
  if (invocations_counter_) invocations_counter_->inc();
  latency.interface_retries = 0;
  latency.interface_timeouts = 0;
  latency.interface_ok = true;
  double interface_s = interface_latency_s();
  if (faults_.enabled()) {
    const AxiInvocationResult transfer = axi_.faulty_invocation(
        config_.invocation_writes, config_.invocation_reads, faults_,
        fault_rng_);
    // Replace the clean interface cost with the (retry-inclusive) actual
    // cost; driver overhead is paid once per attempt inside the model.
    interface_s = transfer.latency_s;
    latency.interface_retries = transfer.retries;
    latency.interface_timeouts = transfer.timeouts;
    if (retries_counter_ && transfer.retries > 0) {
      retries_counter_->inc(transfer.retries);
    }
    if (timeouts_counter_ && transfer.timeouts > 0) {
      timeouts_counter_->inc(transfer.timeouts);
    }
    if (!transfer.success) {
      // The accelerator never received this state/reward: hold the last
      // action, skip the TD update, and charge only the wasted bus time.
      ++interface_failures_;
      if (failures_counter_) failures_counter_->inc();
      latency.interface_ok = false;
      latency.datapath_cycles = 0;
      latency.raw_s = 0.0;
      latency.end_to_end_s = interface_s;
      const std::size_t held = has_prev_ ? prev_action_ : 0;
      emit_hw_event(trace_, invocation, state, held, reward, latency);
      return held;
    }
  }

  CycleBreakdown cycles;
  if (has_prev_) {
    datapath_.update(prev_state_, prev_action_, reward, state, cycles);
  }
  const std::size_t action = datapath_.decide(state, cycles);
  prev_state_ = state;
  prev_action_ = action;
  has_prev_ = true;

  latency.datapath_cycles = cycles.total();
  latency.raw_s =
      static_cast<double>(cycles.total()) / config_.fpga_clock_hz;
  latency.end_to_end_s = latency.raw_s + interface_s;
  emit_hw_event(trace_, invocation, state, action, reward, latency);
  return action;
}

void HwPolicyEngine::reset_chain() { has_prev_ = false; }

}  // namespace pmrl::hw
