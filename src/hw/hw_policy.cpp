#include "hw/hw_policy.hpp"

#include <stdexcept>

namespace pmrl::hw {

HwPolicyEngine::HwPolicyEngine(HwPolicyConfig config, std::size_t states,
                               std::size_t actions)
    : config_(config),
      datapath_(config.agent, states, actions, config.timing),
      axi_(config.axi) {
  if (config_.fpga_clock_hz <= 0.0) {
    throw std::invalid_argument("fpga clock must be positive");
  }
}

double HwPolicyEngine::interface_latency_s() const {
  return axi_.invocation_latency_s(config_.invocation_writes,
                                   config_.invocation_reads);
}

std::size_t HwPolicyEngine::invoke(std::size_t state, double reward,
                                   PolicyLatency& latency) {
  CycleBreakdown cycles;
  if (has_prev_) {
    datapath_.update(prev_state_, prev_action_, reward, state, cycles);
  }
  const std::size_t action = datapath_.decide(state, cycles);
  prev_state_ = state;
  prev_action_ = action;
  has_prev_ = true;

  latency.datapath_cycles = cycles.total();
  latency.raw_s =
      static_cast<double>(cycles.total()) / config_.fpga_clock_hz;
  latency.end_to_end_s = latency.raw_s + interface_latency_s();
  return action;
}

void HwPolicyEngine::reset_chain() { has_prev_ = false; }

}  // namespace pmrl::hw
