#include "hw/axi.hpp"

#include <stdexcept>

namespace pmrl::hw {

AxiLiteModel::AxiLiteModel(AxiParams params) : params_(params) {
  if (params_.bus_clock_hz <= 0.0) {
    throw std::invalid_argument("bus clock must be positive");
  }
}

double AxiLiteModel::write_latency_s(std::size_t n_writes) const {
  const double bus_s =
      static_cast<double>(params_.write_cycles) / params_.bus_clock_hz;
  return static_cast<double>(n_writes) *
         (bus_s + params_.cpu_mmio_overhead_s);
}

double AxiLiteModel::read_latency_s(std::size_t n_reads) const {
  const double bus_s =
      static_cast<double>(params_.read_cycles) / params_.bus_clock_hz;
  return static_cast<double>(n_reads) * (bus_s + params_.cpu_mmio_overhead_s);
}

double AxiLiteModel::invocation_latency_s(std::size_t n_writes,
                                          std::size_t n_reads) const {
  return params_.driver_overhead_s + write_latency_s(n_writes) +
         read_latency_s(n_reads);
}

AxiInvocationResult AxiLiteModel::faulty_invocation(
    std::size_t n_writes, std::size_t n_reads, const AxiFaultParams& faults,
    Rng& rng) const {
  AxiInvocationResult result;
  const double clean_s = invocation_latency_s(n_writes, n_reads);
  const unsigned attempts = faults.max_attempts > 0 ? faults.max_attempts : 1;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    // Sample the two fault classes independently; a timeout dominates an
    // error reply (the response never arrived to carry the error).
    const bool timed_out = rng.bernoulli(faults.timeout_rate);
    const bool errored = rng.bernoulli(faults.error_rate);
    if (timed_out) {
      result.latency_s += clean_s + faults.timeout_s;
      ++result.timeouts;
    } else if (errored) {
      result.latency_s += clean_s;
    } else {
      result.latency_s += clean_s;
      result.retries = attempt;
      return result;
    }
  }
  result.success = false;
  result.retries = attempts - 1;
  return result;
}

}  // namespace pmrl::hw
