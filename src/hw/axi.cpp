#include "hw/axi.hpp"

#include <stdexcept>

namespace pmrl::hw {

AxiLiteModel::AxiLiteModel(AxiParams params) : params_(params) {
  if (params_.bus_clock_hz <= 0.0) {
    throw std::invalid_argument("bus clock must be positive");
  }
}

double AxiLiteModel::write_latency_s(std::size_t n_writes) const {
  const double bus_s =
      static_cast<double>(params_.write_cycles) / params_.bus_clock_hz;
  return static_cast<double>(n_writes) *
         (bus_s + params_.cpu_mmio_overhead_s);
}

double AxiLiteModel::read_latency_s(std::size_t n_reads) const {
  const double bus_s =
      static_cast<double>(params_.read_cycles) / params_.bus_clock_hz;
  return static_cast<double>(n_reads) * (bus_s + params_.cpu_mmio_overhead_s);
}

double AxiLiteModel::invocation_latency_s(std::size_t n_writes,
                                          std::size_t n_reads) const {
  return params_.driver_overhead_s + write_latency_s(n_writes) +
         read_latency_s(n_reads);
}

}  // namespace pmrl::hw
