#pragma once
// AXI-Lite transaction model for the CPU <-> policy-accelerator interface
// the paper constructs. Latency is modeled from the CPU's side: each MMIO
// access to the device is uncached and strongly ordered, so its cost is
// dominated by the interconnect round trip plus the bus-clock handshake.

#include <cstddef>

namespace pmrl::hw {

/// Interface timing parameters.
struct AxiParams {
  /// Bus clock of the AXI-Lite slave (the accelerator side).
  double bus_clock_hz = 100e6;
  /// Bus cycles to complete one write (address + data + response phases).
  unsigned write_cycles = 5;
  /// Bus cycles to complete one read (address + data phases).
  unsigned read_cycles = 4;
  /// CPU-side fixed cost per uncached MMIO access (interconnect round trip,
  /// store buffer drain / load stall), in seconds.
  double cpu_mmio_overhead_s = 250e-9;
  /// One-time driver entry/exit cost per policy invocation (seconds):
  /// argument marshalling and the memory barriers around the doorbell.
  double driver_overhead_s = 450e-9;
};

/// Accumulates the latency of a sequence of MMIO transactions.
class AxiLiteModel {
 public:
  explicit AxiLiteModel(AxiParams params = {});

  /// Latency of n back-to-back register writes (seconds).
  double write_latency_s(std::size_t n_writes) const;
  /// Latency of n back-to-back register reads (seconds).
  double read_latency_s(std::size_t n_reads) const;
  /// Fixed per-invocation driver cost (seconds).
  double driver_overhead_s() const { return params_.driver_overhead_s; }

  /// Full cost of one policy invocation over the interface:
  /// `n_writes` state/reward/doorbell writes plus `n_reads` result reads
  /// plus the driver overhead.
  double invocation_latency_s(std::size_t n_writes, std::size_t n_reads) const;

  const AxiParams& params() const { return params_; }

 private:
  AxiParams params_;
};

}  // namespace pmrl::hw
