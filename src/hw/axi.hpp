#pragma once
// AXI-Lite transaction model for the CPU <-> policy-accelerator interface
// the paper constructs. Latency is modeled from the CPU's side: each MMIO
// access to the device is uncached and strongly ordered, so its cost is
// dominated by the interconnect round trip plus the bus-clock handshake.
//
// The model optionally injects transaction faults (SLVERR responses and
// lost responses that expire a driver timeout) so the degradation path —
// retry with bounded attempts, every failed attempt's latency charged to
// the CPU — can be exercised and its cost accounted.

#include <cstddef>

#include "util/rng.hpp"

namespace pmrl::hw {

/// Interface timing parameters.
struct AxiParams {
  /// Bus clock of the AXI-Lite slave (the accelerator side).
  double bus_clock_hz = 100e6;
  /// Bus cycles to complete one write (address + data + response phases).
  unsigned write_cycles = 5;
  /// Bus cycles to complete one read (address + data phases).
  unsigned read_cycles = 4;
  /// CPU-side fixed cost per uncached MMIO access (interconnect round trip,
  /// store buffer drain / load stall), in seconds.
  double cpu_mmio_overhead_s = 250e-9;
  /// One-time driver entry/exit cost per policy invocation (seconds):
  /// argument marshalling and the memory barriers around the doorbell.
  double driver_overhead_s = 450e-9;
};

/// Transaction fault injection parameters. All probabilities are per
/// *invocation attempt* (one bundle of writes + reads), which matches how
/// a driver observes faults: a bad response or a stuck completion aborts
/// the whole invocation and the driver retries it from the top.
struct AxiFaultParams {
  /// Probability an attempt fails fast with a SLVERR/DECERR response.
  /// The failed attempt still pays its full transfer latency.
  double error_rate = 0.0;
  /// Probability an attempt's response is lost; the driver blocks until
  /// `timeout_s` expires, then treats the attempt as failed.
  double timeout_rate = 0.0;
  /// Driver completion-timeout budget per attempt (seconds). Bounded by
  /// construction: no lost response can stall the caller longer than this.
  double timeout_s = 5e-6;
  /// Attempts per invocation (1 initial + max_retries - 1 retries) before
  /// the driver gives up and reports failure to the policy layer.
  unsigned max_attempts = 3;

  bool enabled() const { return error_rate > 0.0 || timeout_rate > 0.0; }
};

/// Outcome of one fault-aware invocation over the interface.
struct AxiInvocationResult {
  /// True when some attempt completed; false after max_attempts failures
  /// (the caller must degrade, e.g. keep the previous action).
  bool success = true;
  /// Total CPU-observed latency including every failed attempt and every
  /// expired timeout (seconds).
  double latency_s = 0.0;
  /// Attempts beyond the first (0 on a clean invocation).
  unsigned retries = 0;
  /// Attempts that ended in a driver timeout rather than an error reply.
  unsigned timeouts = 0;
};

/// Accumulates the latency of a sequence of MMIO transactions.
class AxiLiteModel {
 public:
  explicit AxiLiteModel(AxiParams params = {});

  /// Latency of n back-to-back register writes (seconds).
  double write_latency_s(std::size_t n_writes) const;
  /// Latency of n back-to-back register reads (seconds).
  double read_latency_s(std::size_t n_reads) const;
  /// Fixed per-invocation driver cost (seconds).
  double driver_overhead_s() const { return params_.driver_overhead_s; }

  /// Full cost of one fault-free policy invocation over the interface:
  /// `n_writes` state/reward/doorbell writes plus `n_reads` result reads
  /// plus the driver overhead.
  double invocation_latency_s(std::size_t n_writes, std::size_t n_reads) const;

  /// One invocation under the given fault model. Samples per-attempt
  /// faults from `rng` (deterministic under a seeded stream), retries up
  /// to `faults.max_attempts` attempts, and charges the latency of every
  /// attempt — including the full `timeout_s` of timed-out ones — into the
  /// result. Total latency is bounded by
  /// max_attempts * (attempt latency + timeout_s), so the caller can
  /// never hang.
  AxiInvocationResult faulty_invocation(std::size_t n_writes,
                                        std::size_t n_reads,
                                        const AxiFaultParams& faults,
                                        Rng& rng) const;

  const AxiParams& params() const { return params_; }

 private:
  AxiParams params_;
};

}  // namespace pmrl::hw
