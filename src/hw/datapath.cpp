#include "hw/datapath.hpp"

#include <cmath>

namespace pmrl::hw {

QDatapath::QDatapath(rl::FixedAgentConfig agent_config, std::size_t states,
                     std::size_t actions, DatapathTiming timing)
    : agent_(agent_config, states, actions),
      timing_(timing),
      actions_(actions) {}

unsigned QDatapath::argmax_tree_depth() const {
  unsigned depth = 0;
  std::size_t n = actions_;
  while (n > 1) {
    n = (n + 1) / 2;
    ++depth;
  }
  return depth;
}

unsigned QDatapath::decide_cycle_count() const {
  // capture + address + banked read + max(argmax tree, lfsr) + mux.
  const unsigned tree = argmax_tree_depth() * timing_.compare_stage_cycles;
  const unsigned select = tree > timing_.lfsr_cycles ? tree
                                                     : timing_.lfsr_cycles;
  return 1 /*capture*/ + 1 /*addr*/ + timing_.bram_read_cycles + select +
         timing_.mux_cycles;
}

unsigned QDatapath::update_cycle_count() const {
  // next-row read + max tree + gamma*max (DSP) + (+r) + (-Qold, read folded
  // into the same banked read) + alpha*delta (DSP) + accumulate + write.
  const unsigned tree = argmax_tree_depth() * timing_.compare_stage_cycles;
  return timing_.bram_read_cycles + tree + timing_.mult_cycles +
         timing_.add_cycles + timing_.add_cycles + timing_.mult_cycles +
         timing_.add_cycles + timing_.writeback_cycles;
}

std::size_t QDatapath::decide(std::size_t state, CycleBreakdown& cycles) {
  cycles.decide_cycles += decide_cycle_count();
  return agent_.select_action(state);
}

void QDatapath::update(std::size_t state, std::size_t action, double reward,
                       std::size_t next_state, CycleBreakdown& cycles) {
  cycles.update_cycles += update_cycle_count();
  agent_.learn(state, action, reward, next_state);
}

std::size_t QDatapath::qmem_bits() const {
  return agent_.state_count() * agent_.action_count() *
         agent_.format().total_bits();
}

}  // namespace pmrl::hw
