#pragma once
// The HW-vs-SW decision-latency experiment (the paper's second result).
// Replays one stream of (state, reward) invocations through both policy
// implementations and collects latency distributions:
//   software  — kernel-governor cost model (SwPolicyCostModel)
//   hardware  — AXI interface + datapath cycles (HwPolicyEngine)
// Reported speedups: end-to-end (the journal's 3.92x) and raw datapath
// (the LBR's "up to 40x").

#include <cstddef>
#include <vector>

#include "hw/hw_policy.hpp"
#include "hw/sw_cost.hpp"
#include "util/stats.hpp"

namespace pmrl::hw {

/// One replayed policy invocation.
struct InvocationRecord {
  std::size_t state = 0;
  double reward = 0.0;
};

/// Latency distributions and derived speedups.
struct LatencyComparison {
  SampleSet sw_latency_s;
  SampleSet hw_raw_s;
  SampleSet hw_end_to_end_s;

  double mean_speedup_end_to_end() const;
  double mean_speedup_raw() const;
  /// Max per-invocation raw speedup observed (the "up to N x" number).
  double max_speedup_raw() const;
};

/// Experiment configuration.
struct LatencyExperimentConfig {
  HwPolicyConfig hw;
  SwCostParams sw;
  std::uint64_t jitter_seed = 2024;
};

/// Runs the comparison over a recorded invocation stream.
LatencyComparison run_latency_experiment(
    const LatencyExperimentConfig& config, std::size_t states,
    std::size_t actions, const std::vector<InvocationRecord>& stream);

/// Generates a synthetic invocation stream (uniform random states, rewards
/// in [-2, 0]) for microbenchmarks and tests; real-workload streams come
/// from a simulation capture.
std::vector<InvocationRecord> synthetic_stream(std::size_t states,
                                               std::size_t count,
                                               std::uint64_t seed);

}  // namespace pmrl::hw
