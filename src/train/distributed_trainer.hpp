#pragma once
// DistributedTrainer: shards a training schedule across run-farm actors.
//
// The episode schedule (scenario rotation + workload seeds) is the serial
// Trainer's, split into contiguous per-actor chunks by *global* episode
// index, so actor k replays exactly the episodes the serial trainer would
// have run at those indices. Each actor is one farm task that owns all of
// its mutable state — its own SimEngine, its own governor whose learning
// seed derives from (merge_seed, actor index) — per the farm's RNG-stream
// isolation rule. Actors never share a Q-table; each exports an ActorDelta
// and the seeded QMerge reducer combines them. The actor count is a config
// knob *independent of the farm's thread count*, which is why the merged
// table is bit-identical at --jobs 1/2/4 and under any completion order.

#include <cstdint>
#include <vector>

#include "core/runfarm/runfarm.hpp"
#include "rl/rl_governor.hpp"
#include "rl/trainer.hpp"
#include "train/qmerge.hpp"

namespace pmrl::train {

struct DistributedTrainerConfig {
  /// Episode schedule (episodes, scenario rotation, workload seeds).
  rl::TrainerConfig schedule;
  /// Actor shards. Fixed by config, not by --jobs: changing the farm's
  /// thread count must not change a single output bit.
  std::size_t actors = 4;
  /// Seeds the per-actor learning RNG streams and the merge reduction
  /// order; the single knob that (with the schedule) determines the
  /// merged table exactly.
  std::uint64_t merge_seed = 1;
};

/// Outcome of one distributed training run.
struct DistributedTrainResult {
  /// Learning curve in global episode order (actor chunks concatenated).
  std::vector<rl::EpisodeResult> curve;
  std::size_t actors = 0;
  std::size_t episodes = 0;
  std::uint64_t merge_seed = 0;
  /// Per-actor deltas in actor-index order (inspectable by tests/benches;
  /// already merged into the output governor).
  std::vector<ActorDelta> deltas;
};

class DistributedTrainer {
 public:
  /// `farm` supplies the SoC/engine configuration and the thread pool;
  /// `policy` is the governor shape every actor trains (Float backend,
  /// plain Q-learning — see qmerge). Throws std::invalid_argument on zero
  /// actors/episodes.
  DistributedTrainer(core::runfarm::RunFarm& farm,
                     rl::RlGovernorConfig policy, std::size_t cluster_count,
                     DistributedTrainerConfig config);

  /// Runs every actor shard on the farm and merges the deltas into
  /// `merged` (a freshly constructed governor of the same shape).
  DistributedTrainResult train(rl::RlGovernor& merged);

  /// Global episode range [first, first + count) of actor `k`: contiguous
  /// chunks, remainder spread over the leading actors.
  std::pair<std::size_t, std::size_t> actor_range(std::size_t actor) const;

  /// Learning seed of actor `k`'s governor: mix_seed(merge_seed, k) folded
  /// with the configured base seed.
  std::uint64_t actor_seed(std::size_t actor) const;

  const DistributedTrainerConfig& config() const { return config_; }

 private:
  ActorDelta run_actor(std::size_t actor) const;

  core::runfarm::RunFarm& farm_;
  rl::RlGovernorConfig policy_;
  std::size_t cluster_count_;
  DistributedTrainerConfig config_;
};

}  // namespace pmrl::train
