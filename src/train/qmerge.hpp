#pragma once
// Order-independent merging of per-actor Q-table deltas.
//
// Each distributed-training actor trains a private governor on its episode
// shard and exports one ActorDelta: per-(state, action) visit counts and
// visit-weighted Q sums for every agent. The QMerge reducer combines the
// deltas into one governor by visit-weighted averaging:
//
//   Q_merged(s, a) = sum_i visits_i(s, a) * Q_i(s, a)
//                    ---------------------------------   (initial_q when
//                        sum_i visits_i(s, a)             nobody visited)
//
// Floating-point addition is not associative, so the reduction order
// matters for the low bits. merge_into therefore reduces in a canonical
// order: deltas sorted by actor index, then permuted by a deterministic
// shuffle seeded with `merge_seed`. The merged table is a pure function of
// (deltas, merge_seed) — independent of how many farm jobs ran the actors
// or which actor finished first.

#include <cstdint>
#include <vector>

#include "rl/rl_governor.hpp"
#include "rl/trainer.hpp"

namespace pmrl::train {

/// One agent's training delta: dense per-(s, a) visit counts and
/// visit-weighted Q sums (row-major [state][action], like QTable).
struct AgentDelta {
  std::size_t states = 0;
  std::size_t actions = 0;
  std::vector<std::uint64_t> visits;
  std::vector<double> weighted_q;

  bool operator==(const AgentDelta&) const = default;
};

/// Everything one actor hands back: its shard's learning-curve chunk plus
/// one AgentDelta per governor agent.
struct ActorDelta {
  std::size_t actor_index = 0;
  /// Global episode indices [first_episode, first_episode + episodes).
  std::size_t first_episode = 0;
  std::size_t episodes = 0;
  std::vector<AgentDelta> agents;
  std::vector<rl::EpisodeResult> curve;
};

/// Extracts the delta of a trained governor relative to the initial_q
/// baseline. Requires the Float backend with plain per-agent tables
/// (QLearningAgent, single table); throws std::invalid_argument otherwise —
/// Double Q's two tables and the fixed-point agent's quantized storage have
/// no well-defined visit-weighted sum to merge.
ActorDelta extract_delta(const rl::RlGovernor& governor);

/// Merges actor deltas into `governor` (freshly constructed, matching
/// shape). Reduction order is the seeded canonical permutation described
/// above; duplicate actor indices or shape mismatches throw
/// std::invalid_argument. The merged tables also carry the summed visit
/// counts (saturating), so visited_pairs()/visits() reflect the fleet.
void merge_into(rl::RlGovernor& governor, std::vector<ActorDelta> deltas,
                std::uint64_t merge_seed);

/// SplitMix64 hash used for per-actor seed derivation and the merge
/// permutation (kept here so trainer and tests agree bit-for-bit).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace pmrl::train
