#include "train/qmerge.hpp"

#include <algorithm>
#include <stdexcept>

#include "rl/agent.hpp"

namespace pmrl::train {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const rl::QLearningAgent& mergeable_agent(const rl::RlGovernor& governor,
                                          std::size_t index) {
  const auto* agent =
      dynamic_cast<const rl::QLearningAgent*>(&governor.agent(index));
  if (agent == nullptr) {
    throw std::invalid_argument(
        "qmerge: governor agents must be float QLearningAgents");
  }
  if (agent->table_b() != nullptr) {
    throw std::invalid_argument(
        "qmerge: Double Q-learning tables are not mergeable");
  }
  return *agent;
}

/// Seeded Fisher-Yates permutation of [0, n): the canonical reduction
/// order. Deterministic for a given (merge_seed, n).
std::vector<std::size_t> merge_order(std::uint64_t merge_seed,
                                     std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::uint64_t state = mix_seed(merge_seed, 0x714d657267651ULL);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(splitmix64(state) % i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(x);
}

ActorDelta extract_delta(const rl::RlGovernor& governor) {
  if (governor.config().backend != rl::AgentBackend::Float) {
    throw std::invalid_argument("qmerge: only the Float backend merges");
  }
  ActorDelta delta;
  delta.agents.reserve(governor.agent_count());
  for (std::size_t a = 0; a < governor.agent_count(); ++a) {
    const rl::QLearningAgent& agent = mergeable_agent(governor, a);
    const rl::QTable& table = agent.table();
    AgentDelta out;
    out.states = table.states();
    out.actions = table.actions();
    out.visits.resize(out.states * out.actions, 0);
    out.weighted_q.resize(out.states * out.actions, 0.0);
    for (std::size_t s = 0; s < out.states; ++s) {
      for (std::size_t act = 0; act < out.actions; ++act) {
        const std::size_t i = s * out.actions + act;
        const std::uint64_t visits = table.visits(s, act);
        out.visits[i] = visits;
        out.weighted_q[i] =
            static_cast<double>(visits) * table.get(s, act);
      }
    }
    delta.agents.push_back(std::move(out));
  }
  return delta;
}

void merge_into(rl::RlGovernor& governor, std::vector<ActorDelta> deltas,
                std::uint64_t merge_seed) {
  if (governor.config().backend != rl::AgentBackend::Float) {
    throw std::invalid_argument("qmerge: only the Float backend merges");
  }
  // Canonical order: sort by actor index (completion/submission order must
  // not matter), reject duplicates, then apply the seeded permutation.
  std::sort(deltas.begin(), deltas.end(),
            [](const ActorDelta& a, const ActorDelta& b) {
              return a.actor_index < b.actor_index;
            });
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    if (deltas[i].actor_index == deltas[i - 1].actor_index) {
      throw std::invalid_argument("qmerge: duplicate actor index");
    }
  }
  const std::vector<std::size_t> order =
      merge_order(merge_seed, deltas.size());

  const double initial_q = governor.config().learning.initial_q;
  for (std::size_t a = 0; a < governor.agent_count(); ++a) {
    mergeable_agent(governor, a);  // validates backend/table shape
    auto& agent = static_cast<rl::QLearningAgent&>(governor.agent(a));
    rl::QTable& table = agent.table();
    const std::size_t states = table.states();
    const std::size_t actions = table.actions();
    std::vector<std::uint64_t> visits(states * actions, 0);
    std::vector<double> sums(states * actions, 0.0);
    for (const std::size_t d : order) {
      const ActorDelta& delta = deltas[d];
      if (a >= delta.agents.size()) {
        throw std::invalid_argument("qmerge: agent count mismatch");
      }
      const AgentDelta& part = delta.agents[a];
      if (part.states != states || part.actions != actions ||
          part.visits.size() != states * actions ||
          part.weighted_q.size() != states * actions) {
        throw std::invalid_argument("qmerge: table shape mismatch");
      }
      for (std::size_t i = 0; i < states * actions; ++i) {
        visits[i] += part.visits[i];
        sums[i] += part.weighted_q[i];
      }
    }
    for (std::size_t s = 0; s < states; ++s) {
      for (std::size_t act = 0; act < actions; ++act) {
        const std::size_t i = s * actions + act;
        const double value =
            visits[i] > 0 ? sums[i] / static_cast<double>(visits[i])
                          : initial_q;
        table.set(s, act, value);
        table.set_visits(s, act, visits[i]);
      }
    }
  }
}

}  // namespace pmrl::train
