#include "train/distributed_trainer.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

namespace pmrl::train {

DistributedTrainer::DistributedTrainer(core::runfarm::RunFarm& farm,
                                       rl::RlGovernorConfig policy,
                                       std::size_t cluster_count,
                                       DistributedTrainerConfig config)
    : farm_(farm),
      policy_(std::move(policy)),
      cluster_count_(cluster_count),
      config_(std::move(config)) {
  if (config_.actors == 0) {
    throw std::invalid_argument("distributed trainer: actors must be >= 1");
  }
  if (config_.schedule.episodes == 0) {
    throw std::invalid_argument(
        "distributed trainer: episodes must be >= 1");
  }
  if (policy_.backend != rl::AgentBackend::Float) {
    throw std::invalid_argument(
        "distributed trainer: only the Float backend merges");
  }
  // More actors than episodes would leave trailing actors with empty
  // shards; clamp so every actor trains at least one episode.
  config_.actors = std::min(config_.actors, config_.schedule.episodes);
}

std::pair<std::size_t, std::size_t> DistributedTrainer::actor_range(
    std::size_t actor) const {
  const std::size_t episodes = config_.schedule.episodes;
  const std::size_t base = episodes / config_.actors;
  const std::size_t extra = episodes % config_.actors;
  const std::size_t count = base + (actor < extra ? 1 : 0);
  const std::size_t first =
      actor * base + std::min(actor, extra);
  return {first, count};
}

std::uint64_t DistributedTrainer::actor_seed(std::size_t actor) const {
  return mix_seed(config_.merge_seed ^ policy_.learning.seed, actor + 1);
}

ActorDelta DistributedTrainer::run_actor(std::size_t actor) const {
  // The actor owns everything mutable: engine, governor, trainer. All of
  // it is constructed here, on whichever worker thread runs the task.
  core::SimEngine engine = farm_.make_engine();
  rl::RlGovernorConfig policy = policy_;
  policy.learning.seed = actor_seed(actor);
  rl::RlGovernor governor(policy, cluster_count_);
  rl::Trainer trainer(engine, governor, config_.schedule);

  const auto [first, count] = actor_range(actor);
  ActorDelta delta;
  delta.actor_index = actor;
  delta.first_episode = first;
  delta.episodes = count;
  delta.curve.reserve(count);
  for (std::size_t e = first; e < first + count; ++e) {
    delta.curve.push_back(
        trainer.train_episode(e, config_.schedule.episode_kind(e)));
  }
  ActorDelta extracted = extract_delta(governor);
  extracted.actor_index = actor;
  extracted.first_episode = first;
  extracted.episodes = count;
  extracted.curve = std::move(delta.curve);
  return extracted;
}

DistributedTrainResult DistributedTrainer::train(rl::RlGovernor& merged) {
  std::vector<std::function<ActorDelta()>> tasks;
  tasks.reserve(config_.actors);
  for (std::size_t actor = 0; actor < config_.actors; ++actor) {
    tasks.push_back([this, actor] { return run_actor(actor); });
  }
  std::vector<ActorDelta> deltas = farm_.map<ActorDelta>(tasks);

  DistributedTrainResult result;
  result.actors = config_.actors;
  result.episodes = config_.schedule.episodes;
  result.merge_seed = config_.merge_seed;
  result.curve.reserve(config_.schedule.episodes);
  for (const ActorDelta& delta : deltas) {
    result.curve.insert(result.curve.end(), delta.curve.begin(),
                        delta.curve.end());
  }
  merge_into(merged, deltas, config_.merge_seed);
  result.deltas = std::move(deltas);
  return result;
}

}  // namespace pmrl::train
