#pragma once
// LRU decision cache of the policy-decision service. Keyed by the
// quantized state (the server composes agent and state indices into one
// key), valued by the greedy action index. The table a decision comes from
// only changes on policy hot-reload, so entries never expire — the server
// calls clear() at the reload swap point instead, which is the only
// invalidation the cache needs.
//
// Thread-safe: workers of several batches probe and fill concurrently; a
// single mutex is plenty because the critical section is a hash probe plus
// a list splice (the Q-table lookup it saves is about the same cost, but
// the cache's real win is keeping hot states out of the batching queue's
// tail latency and giving the service a knob that scales with skew).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace pmrl::serve {

class DecisionCache {
 public:
  /// capacity == 0 disables the cache (get always misses, put is a no-op).
  explicit DecisionCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// Looks up `key`, promoting a hit to most-recently-used.
  std::optional<std::uint32_t> get(std::uint64_t key) {
    if (capacity_ == 0) return std::nullopt;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when full.
  void put(std::uint64_t key, std::uint32_t action) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = action;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, action);
    map_.emplace(key, order_.begin());
  }

  /// Drops every entry (policy hot-reload invalidation).
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// MRU at the front.
  std::list<std::pair<std::uint64_t, std::uint32_t>> order_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t,
                                         std::uint32_t>>::iterator>
      map_;
};

}  // namespace pmrl::serve
