#pragma once
// LRU decision cache of the policy-decision service. Keyed by the
// quantized state (the server composes agent and state indices into one
// key), valued by the greedy action index. The table a decision comes from
// only changes on policy hot-reload, so entries never expire — reload
// invalidation is the only invalidation the cache needs.
//
// Since the acceptor was sharded (PR 7) each worker owns a private
// WorkerCache, so the hot path never contends on a shared cache mutex.
// Reload invalidation moved from a global clear() to a generation check:
// the server bumps an atomic generation counter at the governor swap
// point, and each worker compares its recorded generation on probe
// (under the governor's reader lock) and clears its private cache when
// the counter moved. DecisionCache keeps its internal mutex — it is
// uncontended in per-worker use and still serves shared-use callers
// (tests, tools).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace pmrl::serve {

class DecisionCache {
 public:
  /// capacity == 0 disables the cache (get always misses, put is a no-op).
  explicit DecisionCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// Looks up `key`, promoting a hit to most-recently-used.
  std::optional<std::uint32_t> get(std::uint64_t key) {
    if (capacity_ == 0) return std::nullopt;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when full.
  void put(std::uint64_t key, std::uint32_t action) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = action;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, action);
    map_.emplace(key, order_.begin());
  }

  /// Drops every entry (policy hot-reload invalidation).
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// MRU at the front.
  std::list<std::pair<std::uint64_t, std::uint32_t>> order_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t,
                                         std::uint32_t>>::iterator>
      map_;
};

/// A worker-private DecisionCache plus the policy generation its entries
/// were filled under. The owning worker calls sync() with the server's
/// current generation before probing (while it holds the governor reader
/// lock, so the generation cannot move mid-batch): a moved generation
/// means the governor was hot-swapped, and every cached decision is
/// dropped before it can be served or re-filled stale.
class WorkerCache {
 public:
  explicit WorkerCache(std::size_t capacity) : cache_(capacity) {}

  /// Reconciles with the server's reload generation; clears the cache when
  /// it moved. Returns true when entries were invalidated.
  bool sync(std::uint64_t generation) {
    if (generation == generation_) return false;
    cache_.clear();
    generation_ = generation;
    return true;
  }

  /// sync() + lookup in one call, for single-decision paths.
  std::optional<std::uint32_t> probe(std::uint64_t key,
                                     std::uint64_t generation) {
    sync(generation);
    return cache_.get(key);
  }

  std::optional<std::uint32_t> get(std::uint64_t key) {
    return cache_.get(key);
  }
  void put(std::uint64_t key, std::uint32_t action) { cache_.put(key, action); }

  std::uint64_t generation() const { return generation_; }
  std::size_t size() const { return cache_.size(); }
  std::size_t capacity() const { return cache_.capacity(); }

 private:
  DecisionCache cache_;
  std::uint64_t generation_ = 0;
};

}  // namespace pmrl::serve
