#include "serve/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pmrl::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve shm: " + what + ": " + std::strerror(errno));
}

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Spin a little, then yield the CPU: shm has no fd to block on, so both
/// sides poll; the backoff keeps an idle lane from burning a core.
void backoff(unsigned& spins) {
  if (spins < 64) {
    ++spins;
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

constexpr std::size_t kLaneAlign = 64;

std::size_t ring_block_size(std::size_t ring_bytes) {
  return sizeof(ShmRingHeader) + ring_bytes;
}

std::size_t lane_stride(std::size_t ring_bytes) {
  return sizeof(ShmLaneHeader) + 2 * ring_block_size(ring_bytes);
}

}  // namespace

// ---- ShmRing -------------------------------------------------------------

std::size_t ShmRing::write_some(const char* src, std::size_t len) {
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  const std::size_t free_bytes =
      capacity_ - static_cast<std::size_t>(head - tail);
  const std::size_t n = len < free_bytes ? len : free_bytes;
  if (n == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(head) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - idx);
  std::memcpy(data_ + idx, src, first);
  if (n > first) std::memcpy(data_, src + first, n - first);
  header_->head.store(head + n, std::memory_order_release);
  return n;
}

std::size_t ShmRing::read_some(char* dst, std::size_t len) {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t n = len < avail ? len : avail;
  if (n == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(tail) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - idx);
  std::memcpy(dst, data_ + idx, first);
  if (n > first) std::memcpy(dst + first, data_, n - first);
  header_->tail.store(tail + n, std::memory_order_release);
  return n;
}

// ---- ShmSegment ----------------------------------------------------------

std::size_t ShmSegment::segment_size(std::size_t lanes,
                                     std::size_t ring_bytes) {
  return sizeof(ShmSegmentHeader) + lanes * lane_stride(ring_bytes);
}

char* ShmSegment::lane_base(std::size_t lane) const {
  return static_cast<char*>(map_) + sizeof(ShmSegmentHeader) +
         lane * lane_stride(ring_bytes());
}

std::atomic<std::uint32_t>& ShmSegment::lane_state(std::size_t lane) {
  return reinterpret_cast<ShmLaneHeader*>(lane_base(lane))->state;
}

ShmRing ShmSegment::request_ring(std::size_t lane) {
  char* base = lane_base(lane) + sizeof(ShmLaneHeader);
  return ShmRing(reinterpret_cast<ShmRingHeader*>(base),
                 base + sizeof(ShmRingHeader), ring_bytes());
}

ShmRing ShmSegment::response_ring(std::size_t lane) {
  char* base = lane_base(lane) + sizeof(ShmLaneHeader) +
               ring_block_size(ring_bytes());
  return ShmRing(reinterpret_cast<ShmRingHeader*>(base),
                 base + sizeof(ShmRingHeader), ring_bytes());
}

ShmSegment ShmSegment::create(const std::string& path, std::size_t lanes,
                              std::size_t ring_bytes) {
  if (lanes == 0) throw std::invalid_argument("serve shm: lanes must be >= 1");
  if (!is_pow2(ring_bytes) || ring_bytes % kLaneAlign != 0) {
    throw std::invalid_argument(
        "serve shm: ring_bytes must be a 64-byte-aligned power of two");
  }
  // A ring must hold at least one max-size frame or a writer could stall
  // forever with a frame that never fits.
  if (ring_bytes < util::kFrameHeaderSize + util::kMaxFramePayload) {
    throw std::invalid_argument("serve shm: ring_bytes too small for a frame");
  }
  const std::size_t size = segment_size(lanes, ring_bytes);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600);
  if (fd < 0) fail_errno("open " + path);
  if (::ftruncate(fd, static_cast<off_t>(size)) < 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    fail_errno("ftruncate " + path);
  }
  void* map =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ::unlink(path.c_str());
    fail_errno("mmap " + path);
  }
  std::memset(map, 0, size);
  auto* header = new (map) ShmSegmentHeader;
  std::memcpy(header->magic, kShmMagic, sizeof(kShmMagic));
  header->version = kShmVersion;
  header->lane_count = static_cast<std::uint32_t>(lanes);
  header->ring_bytes = ring_bytes;
  header->server_alive.store(1, std::memory_order_relaxed);
  ShmSegment segment(path, map, size, /*creator=*/true);
  for (std::size_t l = 0; l < lanes; ++l) {
    char* base = segment.lane_base(l);
    new (base) ShmLaneHeader;
    new (base + sizeof(ShmLaneHeader)) ShmRingHeader;
    new (base + sizeof(ShmLaneHeader) + ring_block_size(ring_bytes))
        ShmRingHeader;
  }
  std::atomic_thread_fence(std::memory_order_release);
  return segment;
}

ShmSegment ShmSegment::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    throw ClientError("serve shm: cannot open '" + path +
                      "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) < 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(ShmSegmentHeader)) {
    ::close(fd);
    throw ClientError("serve shm: '" + path + "' is not a shm segment");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* map =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw ClientError("serve shm: mmap '" + path +
                      "': " + std::strerror(errno));
  }
  ShmSegment segment(path, map, size, /*creator=*/false);
  const auto* header = segment.header();
  if (std::memcmp(header->magic, kShmMagic, sizeof(kShmMagic)) != 0 ||
      header->version != kShmVersion || header->lane_count == 0 ||
      !is_pow2(static_cast<std::size_t>(header->ring_bytes)) ||
      segment_size(header->lane_count,
                   static_cast<std::size_t>(header->ring_bytes)) > size) {
    throw ClientError("serve shm: '" + path + "' has a malformed header");
  }
  return segment;
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : path_(std::move(other.path_)),
      map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      creator_(std::exchange(other.creator_, false)) {}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    this->~ShmSegment();
    new (this) ShmSegment(std::move(other));
  }
  return *this;
}

ShmSegment::~ShmSegment() {
  if (map_) {
    if (creator_) {
      header()->server_alive.store(0, std::memory_order_release);
    }
    ::munmap(map_, map_size_);
    if (creator_) ::unlink(path_.c_str());
  }
  map_ = nullptr;
}

// ---- ShmClient -----------------------------------------------------------

ShmClient::ShmClient(const std::string& path)
    : segment_(ShmSegment::open(path)) {
  if (segment_.server_alive().load(std::memory_order_acquire) == 0) {
    throw ClientError("serve shm: server is gone");
  }
  for (std::size_t l = 0; l < segment_.lane_count(); ++l) {
    std::uint32_t expected = kLaneFree;
    if (segment_.lane_state(l).compare_exchange_strong(
            expected, kLaneClaimed, std::memory_order_acq_rel)) {
      lane_ = l;
      return;
    }
  }
  throw ClientError("serve shm: no free lane");
}

ShmClient::~ShmClient() {
  if (!segment_.valid()) return;  // moved-from
  segment_.lane_state(lane_).store(kLaneClosed, std::memory_order_release);
}

void ShmClient::send_all(const char* data, std::size_t len) {
  ShmRing ring = segment_.request_ring(lane_);
  std::size_t off = 0;
  unsigned spins = 0;
  while (off < len) {
    const std::size_t n = ring.write_some(data + off, len - off);
    if (n > 0) {
      off += n;
      spins = 0;
      continue;
    }
    if (segment_.server_alive().load(std::memory_order_acquire) == 0) {
      throw ClientError("serve shm: server is gone");
    }
    if (segment_.lane_state(lane_).load(std::memory_order_acquire) ==
        kLanePoisoned) {
      // Keep the poisoned lane's error frame readable; the next recv
      // surfaces it. Further sends are dropped, like writes to a
      // half-closed socket.
      return;
    }
    backoff(spins);
  }
}

void ShmClient::send_raw(const void* data, std::size_t len) {
  send_all(static_cast<const char*>(data), len);
}

util::Frame ShmClient::read_frame() {
  ShmRing ring = segment_.response_ring(lane_);
  unsigned spins = 0;
  for (;;) {
    util::Frame frame;
    const auto status = util::decode_frame(rx_, rx_off_, frame);
    if (status == util::FrameStatus::Ok) {
      if (rx_off_ > 4096 && rx_off_ * 2 > rx_.size()) {
        rx_.erase(0, rx_off_);
        rx_off_ = 0;
      }
      return frame;
    }
    if (status != util::FrameStatus::NeedMore) {
      throw ClientError(std::string("serve shm: corrupt frame: ") +
                        util::frame_status_name(status));
    }
    char buf[4096];
    const std::size_t n = ring.read_some(buf, sizeof buf);
    if (n > 0) {
      rx_.append(buf, n);
      spins = 0;
      continue;
    }
    if (segment_.server_alive().load(std::memory_order_acquire) == 0) {
      throw ClientError("serve shm: server is gone");
    }
    backoff(spins);
  }
}

std::uint64_t ShmClient::send_query(std::uint64_t state, std::uint32_t agent) {
  const std::uint64_t id = next_id_++;
  std::string out;
  append_query(out, QueryMsg{id, agent, state});
  send_all(out.data(), out.size());
  return id;
}

ResponseMsg ShmClient::recv_response() {
  if (!stashed_.empty()) {
    ResponseMsg msg = stashed_.front();
    stashed_.pop_front();
    return msg;
  }
  for (;;) {
    const util::Frame frame = read_frame();
    const auto type = static_cast<MsgType>(frame.type);
    if (type == MsgType::Response) {
      ResponseMsg msg;
      if (!parse_response(frame, msg)) {
        throw ClientError("serve shm: malformed response payload");
      }
      return msg;
    }
    if (type == MsgType::Error) {
      ErrorMsg err;
      parse_error(frame, err);
      throw ClientError("serve shm: server error " +
                        std::to_string(err.code) + ": " + err.message);
    }
  }
}

Client::Result ShmClient::query(std::uint64_t state, std::uint32_t agent) {
  const std::uint64_t id = send_query(state, agent);
  for (;;) {
    const ResponseMsg msg = recv_response();
    if (msg.request_id != id) {
      stashed_.push_back(msg);
      continue;
    }
    return Client::Result{msg.action, (msg.flags & kRespSafeDefault) != 0,
                          (msg.flags & kRespCacheHit) != 0,
                          (msg.flags & kRespCanary) != 0};
  }
}

bool ShmClient::ping(std::uint64_t token) {
  std::string out;
  append_ping(out, token);
  send_all(out.data(), out.size());
  for (;;) {
    const util::Frame frame = read_frame();
    if (static_cast<MsgType>(frame.type) == MsgType::Pong) {
      std::uint64_t echoed = 0;
      if (!parse_pong(frame, echoed)) {
        throw ClientError("serve shm: malformed pong payload");
      }
      return echoed == token;
    }
    if (static_cast<MsgType>(frame.type) == MsgType::Response) {
      ResponseMsg msg;
      if (parse_response(frame, msg)) stashed_.push_back(msg);
      continue;
    }
    throw ClientError("serve shm: unexpected reply to ping");
  }
}

bool ShmClient::reload(std::string* error) {
  std::string out;
  append_reload(out);
  send_all(out.data(), out.size());
  for (;;) {
    const util::Frame frame = read_frame();
    if (static_cast<MsgType>(frame.type) == MsgType::ReloadAck) {
      ReloadAckMsg ack;
      if (!parse_reload_ack(frame, ack)) {
        throw ClientError("serve shm: malformed reload ack");
      }
      if (!ack.ok && error) *error = ack.error;
      return ack.ok;
    }
    if (static_cast<MsgType>(frame.type) == MsgType::Response) {
      ResponseMsg msg;
      if (parse_response(frame, msg)) stashed_.push_back(msg);
      continue;
    }
    throw ClientError("serve shm: unexpected reply to reload");
  }
}

}  // namespace pmrl::serve
