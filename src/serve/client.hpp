#pragma once
// C++ client for the policy-decision service. Two usage shapes:
//
//  * blocking RPC: `query(state)` sends one Query and waits for its
//    Response (out-of-order responses for other ids are buffered);
//  * pipelined: `send_query()` / `recv_response()` let a load generator
//    keep many requests in flight on one connection — the pattern that
//    reaches the service's batched throughput.
//
// The client is deliberately synchronous and single-threaded (one
// connection per thread); the server side handles the concurrency.

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>

#include "serve/wire.hpp"

namespace pmrl::serve {

/// Connection-level failure: socket error, peer close, corrupt frame, or
/// an Error message from the server (message() carries the detail).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  static Client connect_uds(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One decision, blocking. Throws ClientError on any failure, including
  /// a server-side Error response (bad state/agent).
  struct Result {
    std::uint32_t action = 0;
    bool safe_default = false;  ///< shed or timed out: all-hold degradation
    bool cache_hit = false;
    bool canary = false;  ///< decided by the canary candidate policy
  };
  Result query(std::uint64_t state, std::uint32_t agent = 0);

  /// Reports a realized decision outcome (energy spent, QoS delivered) to
  /// the server's canary evaluator and waits for the acknowledgement.
  struct ReportResult {
    bool candidate_arm = false;   ///< arm the report was credited to
    std::uint8_t rollout_state = 0;  ///< policy::RolloutState after it
  };
  ReportResult report(double energy_j, double qos);

  // -- pipelined interface -------------------------------------------------

  /// Sends one Query without waiting. Returns the request id used.
  std::uint64_t send_query(std::uint64_t state, std::uint32_t agent = 0);

  /// Receives the next Response (any id; batching may reorder). Throws
  /// ClientError on socket failure, corrupt frames, or Error messages.
  ResponseMsg recv_response();

  /// Round-trips a Ping; false only on token mismatch (failures throw).
  bool ping(std::uint64_t token = 1);

  /// Asks the server to hot-reload its checkpoint. Returns the server's
  /// verdict; on failure `error` (when non-null) carries the reason.
  bool reload(std::string* error = nullptr);

  /// Writes raw bytes to the socket (corruption/fuzz tests).
  void send_raw(const void* data, std::size_t len);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  util::Frame read_frame();
  void send_all(const std::string& bytes);

  int fd_ = -1;
  std::string rx_;
  std::size_t rx_off_ = 0;
  std::uint64_t next_id_ = 1;
  /// Responses received while waiting for a specific id.
  std::deque<ResponseMsg> stashed_;
};

}  // namespace pmrl::serve
