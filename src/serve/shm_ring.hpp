#pragma once
// Shared-memory ring transport of the policy-decision service, for
// clients co-located with the server (the paper's deployment: the policy
// runs on the device making the decisions, so a socket round-trip is pure
// overhead). A mappable file holds a fixed set of *lanes*; each lane is a
// pair of SPSC byte rings (request: client→server, response:
// server→client) plus a lane-state word a client claims with a CAS.
//
// The bytes inside the rings are the exact CRC-32-framed wire protocol of
// the socket transports (serve/wire.hpp over util/framing.hpp): frames are
// self-delimiting, util::decode_frame is reused verbatim on both sides,
// and the corruption semantics carry over — a frame that fails
// magic/version/length/CRC validation gets an Error frame in the response
// ring and the lane is poisoned (the shm analog of dropping a TCP
// connection, since a byte stream that lost framing cannot be resynced).
//
// Ring memory layout (all offsets 64-byte aligned; ring capacities are
// powers of two):
//
//   ShmSegmentHeader                         magic, version, geometry,
//                                            server_alive flag
//   lane 0: lane-state word (u32 atomic)
//           request  ring  header + data     head/tail u64 atomics on
//           response ring  header + data     separate cache lines
//   lane 1: ...
//
// head/tail are free-running byte counters (head - tail = readable);
// acquire/release pairs make the data copied before a head store visible
// to the consumer that loads it. One producer and one consumer per ring —
// the claiming client and the serving worker — so no further
// synchronization is needed.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "serve/client.hpp"
#include "serve/wire.hpp"

namespace pmrl::serve {

inline constexpr char kShmMagic[8] = {'P', 'M', 'R', 'L', 'S', 'H', 'M', '1'};
inline constexpr std::uint32_t kShmVersion = 1;

/// Lane lifecycle: Free -> (client CAS) Claimed -> (client close) Closed
/// -> (server reset) Free. A server that detects corrupt framing moves a
/// Claimed lane to Poisoned; the client's close still moves it to Closed.
enum : std::uint32_t {
  kLaneFree = 0,
  kLaneClaimed = 1,
  kLaneClosed = 2,
  kLanePoisoned = 3,
};

struct alignas(64) ShmSegmentHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t lane_count;
  std::uint64_t ring_bytes;  ///< per direction, per lane; power of two
  std::atomic<std::uint32_t> server_alive;
};

struct alignas(64) ShmRingHeader {
  std::atomic<std::uint64_t> head;  ///< bytes produced (producer-owned)
  char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail;  ///< bytes consumed (consumer-owned)
  char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
};

struct alignas(64) ShmLaneHeader {
  std::atomic<std::uint32_t> state;
};

/// Non-owning producer/consumer view of one SPSC byte ring.
class ShmRing {
 public:
  ShmRing(ShmRingHeader* header, char* data, std::size_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Bytes ready to read (consumer side).
  std::size_t readable() const {
    return header_->head.load(std::memory_order_acquire) -
           header_->tail.load(std::memory_order_relaxed);
  }
  /// Free space (producer side).
  std::size_t writable() const {
    return capacity_ - (header_->head.load(std::memory_order_relaxed) -
                        header_->tail.load(std::memory_order_acquire));
  }

  /// Producer: copies up to `len` bytes in; returns how many fit.
  std::size_t write_some(const char* src, std::size_t len);
  /// Consumer: copies up to `len` bytes out; returns how many were there.
  std::size_t read_some(char* dst, std::size_t len);

  /// Drops all content (lane recycling; only safe with no active peer).
  void reset() {
    header_->head.store(0, std::memory_order_relaxed);
    header_->tail.store(0, std::memory_order_relaxed);
  }

 private:
  ShmRingHeader* header_;
  char* data_;
  std::size_t capacity_;
};

/// One mapped segment. The server create()s (file is truncated and
/// initialized); clients open() and validate the header. The mapping is
/// released on destruction; the creator also unlinks the file.
class ShmSegment {
 public:
  static ShmSegment create(const std::string& path, std::size_t lanes,
                           std::size_t ring_bytes);
  static ShmSegment open(const std::string& path);

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();

  /// False after being moved from.
  bool valid() const { return map_ != nullptr; }
  std::size_t lane_count() const { return header()->lane_count; }
  std::size_t ring_bytes() const {
    return static_cast<std::size_t>(header()->ring_bytes);
  }
  const std::string& path() const { return path_; }

  std::atomic<std::uint32_t>& server_alive() {
    return header()->server_alive;
  }
  std::atomic<std::uint32_t>& lane_state(std::size_t lane);
  ShmRing request_ring(std::size_t lane);   ///< client -> server
  ShmRing response_ring(std::size_t lane);  ///< server -> client

  /// Total mapped size for the given geometry.
  static std::size_t segment_size(std::size_t lanes, std::size_t ring_bytes);

 private:
  ShmSegment(std::string path, void* map, std::size_t map_size, bool creator)
      : path_(std::move(path)),
        map_(map),
        map_size_(map_size),
        creator_(creator) {}
  ShmSegmentHeader* header() const {
    return static_cast<ShmSegmentHeader*>(map_);
  }
  char* lane_base(std::size_t lane) const;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  bool creator_ = false;
};

/// Client for the shm transport. Mirrors serve::Client's surface
/// (query / send_query / recv_response / ping / reload / send_raw), so
/// load generators template over either. Claims one free lane on
/// construction (throws ClientError when the segment is full) and marks
/// it Closed on destruction. Single-threaded, like the socket client.
class ShmClient {
 public:
  explicit ShmClient(const std::string& path);
  ShmClient(ShmClient&&) = default;
  ShmClient(const ShmClient&) = delete;
  ShmClient& operator=(const ShmClient&) = delete;
  ~ShmClient();

  Client::Result query(std::uint64_t state, std::uint32_t agent = 0);
  std::uint64_t send_query(std::uint64_t state, std::uint32_t agent = 0);
  ResponseMsg recv_response();
  bool ping(std::uint64_t token = 1);
  bool reload(std::string* error = nullptr);
  /// Raw bytes into the request ring (corruption tests).
  void send_raw(const void* data, std::size_t len);

  std::size_t lane() const { return lane_; }

 private:
  util::Frame read_frame();
  void send_all(const char* data, std::size_t len);

  ShmSegment segment_;
  std::size_t lane_ = 0;
  std::string rx_;
  std::size_t rx_off_ = 0;
  std::uint64_t next_id_ = 1;
  std::deque<ResponseMsg> stashed_;
};

}  // namespace pmrl::serve
