#include "serve/wire.hpp"

#include <cstring>

namespace pmrl::serve {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

bool check(const util::Frame& frame, MsgType type, std::size_t min_payload) {
  return frame.type == static_cast<std::uint8_t>(type) &&
         frame.payload.size() >= min_payload;
}

// Doubles travel as their IEEE-754 bit patterns so a report round-trips
// bit-exactly (no text formatting in the hot feedback path).
std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double f64_from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::Query: return "query";
    case MsgType::Response: return "response";
    case MsgType::Ping: return "ping";
    case MsgType::Pong: return "pong";
    case MsgType::Reload: return "reload";
    case MsgType::ReloadAck: return "reload-ack";
    case MsgType::Error: return "error";
    case MsgType::Report: return "report";
    case MsgType::ReportAck: return "report-ack";
  }
  return "unknown";
}

void append_query(std::string& out, const QueryMsg& msg) {
  std::string payload;
  payload.reserve(20);
  put_u64(payload, msg.request_id);
  util::framing_detail::put_u32(payload, msg.agent);
  put_u64(payload, msg.state);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Query), 0,
                     payload);
}

void append_response(std::string& out, const ResponseMsg& msg) {
  std::string payload;
  payload.reserve(16);
  put_u64(payload, msg.request_id);
  util::framing_detail::put_u32(payload, msg.action);
  util::framing_detail::put_u16(payload, msg.flags);
  util::framing_detail::put_u16(payload, 0);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Response), 0,
                     payload);
}

void append_ping(std::string& out, std::uint64_t token) {
  std::string payload;
  put_u64(payload, token);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Ping), 0,
                     payload);
}

void append_pong(std::string& out, std::uint64_t token) {
  std::string payload;
  put_u64(payload, token);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Pong), 0,
                     payload);
}

void append_reload(std::string& out) {
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Reload), 0, {});
}

void append_reload_ack(std::string& out, const ReloadAckMsg& msg) {
  std::string payload;
  payload.push_back(msg.ok ? 1 : 0);
  payload.append(msg.error);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::ReloadAck), 0,
                     payload);
}

void append_error(std::string& out, const ErrorMsg& msg) {
  std::string payload;
  payload.reserve(12 + msg.message.size());
  put_u64(payload, msg.request_id);
  util::framing_detail::put_u32(payload, msg.code);
  payload.append(msg.message);
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Error), 0,
                     payload);
}

void append_report(std::string& out, const ReportMsg& msg) {
  std::string payload;
  payload.reserve(24);
  put_u64(payload, msg.request_id);
  put_u64(payload, f64_bits(msg.energy_j));
  put_u64(payload, f64_bits(msg.qos));
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::Report), 0,
                     payload);
}

void append_report_ack(std::string& out, const ReportAckMsg& msg) {
  std::string payload;
  payload.reserve(10);
  put_u64(payload, msg.request_id);
  payload.push_back(msg.candidate_arm ? 1 : 0);
  payload.push_back(static_cast<char>(msg.rollout_state));
  util::append_frame(out, static_cast<std::uint8_t>(MsgType::ReportAck), 0,
                     payload);
}

bool parse_query(const util::Frame& frame, QueryMsg& msg) {
  if (!check(frame, MsgType::Query, 20)) return false;
  const char* p = frame.payload.data();
  msg.request_id = get_u64(p);
  msg.agent = util::framing_detail::get_u32(p + 8);
  msg.state = get_u64(p + 12);
  return true;
}

bool parse_response(const util::Frame& frame, ResponseMsg& msg) {
  if (!check(frame, MsgType::Response, 16)) return false;
  const char* p = frame.payload.data();
  msg.request_id = get_u64(p);
  msg.action = util::framing_detail::get_u32(p + 8);
  msg.flags = util::framing_detail::get_u16(p + 12);
  return true;
}

bool parse_ping(const util::Frame& frame, std::uint64_t& token) {
  if (!check(frame, MsgType::Ping, 8)) return false;
  token = get_u64(frame.payload.data());
  return true;
}

bool parse_pong(const util::Frame& frame, std::uint64_t& token) {
  if (!check(frame, MsgType::Pong, 8)) return false;
  token = get_u64(frame.payload.data());
  return true;
}

bool parse_reload_ack(const util::Frame& frame, ReloadAckMsg& msg) {
  if (!check(frame, MsgType::ReloadAck, 1)) return false;
  msg.ok = frame.payload[0] != 0;
  msg.error = frame.payload.substr(1);
  return true;
}

bool parse_report(const util::Frame& frame, ReportMsg& msg) {
  if (!check(frame, MsgType::Report, 24)) return false;
  const char* p = frame.payload.data();
  msg.request_id = get_u64(p);
  msg.energy_j = f64_from_bits(get_u64(p + 8));
  msg.qos = f64_from_bits(get_u64(p + 16));
  return true;
}

bool parse_report_ack(const util::Frame& frame, ReportAckMsg& msg) {
  if (!check(frame, MsgType::ReportAck, 10)) return false;
  const char* p = frame.payload.data();
  msg.request_id = get_u64(p);
  msg.candidate_arm = p[8] != 0;
  msg.rollout_state = static_cast<std::uint8_t>(p[9]);
  return true;
}

bool parse_error(const util::Frame& frame, ErrorMsg& msg) {
  if (!check(frame, MsgType::Error, 12)) return false;
  const char* p = frame.payload.data();
  msg.request_id = get_u64(p);
  msg.code = util::framing_detail::get_u32(p + 8);
  msg.message = frame.payload.substr(12);
  return true;
}

}  // namespace pmrl::serve
