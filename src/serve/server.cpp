#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "policy/registry.hpp"
#include "rl/policy_io.hpp"
#include "util/log.hpp"

namespace pmrl::serve {

namespace {

/// Blocks in poll(POLLOUT) this long before declaring a peer stuck and
/// abandoning the write (the connection is then marked closed).
constexpr int kWriteStallTimeoutMs = 1000;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

/// Route-key domain for shm lanes (kept apart from the accept-sequence
/// keys socket connections use).
constexpr std::uint64_t kLaneRouteBase = 0x73686d0000000000ull;

/// Spin a little, then sleep: used where there is no fd to block on
/// (shm rings).
void ring_backoff(unsigned& spins) {
  if (spins < 64) {
    ++spins;
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

}  // namespace

/// One client connection, owned by exactly one shard thread (reads,
/// decides, and writes all happen on that thread, so no per-connection
/// lock is needed). The file descriptor closes when the last shared_ptr
/// drops, so a response for a request that outlived its connection writes
/// to a still-valid fd (at worst into a shut-down socket) instead of a
/// recycled one.
struct PolicyServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  bool open = true;
  /// This connection belongs to the canary cohort (deterministic hash of
  /// its accept-order key); decisions/reports go to the candidate arm
  /// while a candidate is active.
  bool canary = false;
  std::string rx;
  std::size_t rx_off = 0;
};

/// A request awaiting a decision. Exactly one of `conn` (socket
/// transports) or `lane != kNoLane` (shm transport) identifies where the
/// response goes.
struct PolicyServer::Pending {
  std::shared_ptr<Connection> conn;
  std::uint32_t lane = kNoLane;
  /// Canary-cohort flag of the originating connection/lane.
  bool canary = false;
  QueryMsg query;
  std::chrono::steady_clock::time_point enqueued;
};

/// Per-worker state: the private decision cache, the bounded pending
/// queue, and reusable scratch for batching. One Worker per shard thread
/// and one per shm worker thread; nothing in here is shared.
struct PolicyServer::Worker {
  explicit Worker(std::size_t cache_capacity)
      : cache(cache_capacity), canary_cache(cache_capacity) {}

  WorkerCache cache;
  /// Candidate-arm decisions cache separately: one key can map to
  /// different actions under the two policies.
  WorkerCache canary_cache;
  std::deque<Pending> pending;
  // Batch scratch (reused allocation across batches).
  std::vector<Pending> batch;
  std::vector<ResponseMsg> msgs;
  std::vector<std::size_t> miss_slots;
  std::vector<std::size_t> agent_slots;
  std::vector<std::uint64_t> miss_states;
  std::vector<std::uint32_t> miss_actions;
  std::string tx;
};

struct PolicyServer::Shard {
  explicit Shard(std::size_t cache_capacity) : worker(cache_capacity) {}
  ~Shard() {
    auto close_fd = [](int& fd) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    };
    close_fd(tcp_listen_fd);
    close_fd(wake_rx);
    close_fd(wake_tx);
  }

  Worker worker;
  int wake_rx = -1;
  int wake_tx = -1;
  int tcp_listen_fd = -1;
  std::thread thread;
};

struct PolicyServer::ShmWorker {
  ShmWorker(std::size_t index_in, std::size_t cache_capacity)
      : index(index_in), worker(cache_capacity) {}

  std::size_t index;
  Worker worker;
  std::thread thread;
};

PolicyServer::PolicyServer(ServerConfig config)
    : config_(std::move(config)), rollout_(config_.rollout) {
  if (config_.workers == 0) {
    throw std::invalid_argument("serve: workers must be >= 1");
  }
  if (config_.batch_max == 0) {
    throw std::invalid_argument("serve: batch_max must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("serve: queue_capacity must be >= 1");
  }
  if (config_.uds_path.empty() && !config_.tcp_enable &&
      config_.shm_path.empty()) {
    throw std::invalid_argument("serve: no listener configured");
  }
  if (!config_.shm_path.empty() && config_.shm_workers == 0) {
    throw std::invalid_argument("serve: shm_workers must be >= 1");
  }
  governor_ = std::make_unique<rl::RlGovernor>(config_.governor,
                                               config_.cluster_count);
}

PolicyServer::~PolicyServer() { stop(); }

void PolicyServer::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  requests_counter_ = metrics ? &metrics->counter("serve.requests") : nullptr;
  shed_counter_ = metrics ? &metrics->counter("serve.shed") : nullptr;
  timeout_counter_ = metrics ? &metrics->counter("serve.timeouts") : nullptr;
  cache_hit_counter_ =
      metrics ? &metrics->counter("serve.cache_hit") : nullptr;
  cache_miss_counter_ =
      metrics ? &metrics->counter("serve.cache_miss") : nullptr;
  wire_error_counter_ =
      metrics ? &metrics->counter("serve.wire_errors") : nullptr;
  reload_counter_ = metrics ? &metrics->counter("serve.reloads") : nullptr;
  connection_counter_ =
      metrics ? &metrics->counter("serve.connections") : nullptr;
  report_counter_[0] =
      metrics ? &metrics->counter("serve.rollout.incumbent_reports")
              : nullptr;
  report_counter_[1] =
      metrics ? &metrics->counter("serve.rollout.candidate_reports")
              : nullptr;
  rollback_counter_ =
      metrics ? &metrics->counter("serve.rollout.rollbacks") : nullptr;
  promote_counter_ =
      metrics ? &metrics->counter("serve.rollout.promotions") : nullptr;
  arm_epq_gauge_[0] =
      metrics ? &metrics->gauge("serve.rollout.incumbent_energy_per_qos")
              : nullptr;
  arm_epq_gauge_[1] =
      metrics ? &metrics->gauge("serve.rollout.candidate_energy_per_qos")
              : nullptr;
  queue_depth_gauge_ =
      metrics ? &metrics->gauge("serve.queue_depth") : nullptr;
  batch_size_hist_ =
      metrics ? &metrics->histogram("serve.batch_size",
                                    {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                     128.0})
              : nullptr;
  latency_hist_ =
      metrics ? &metrics->histogram(
                    "serve.latency_s",
                    {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
                     1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 0.1, 1.0})
              : nullptr;
}

void PolicyServer::start() {
  if (running_) return;
  if (!config_.policy_path.empty()) {
    std::ifstream in(config_.policy_path);
    std::string error;
    if (!in) {
      PMRL_WARN("serve") << "cannot open checkpoint '" << config_.policy_path
                         << "'; serving fresh-init policy";
    } else if (!rl::try_load_policy(*governor_, in, &error)) {
      PMRL_WARN("serve") << "checkpoint rejected (" << error
                         << "); serving fresh-init policy";
    }
  }
  if (!config_.registry_dir.empty()) {
    registry_ = std::make_unique<policy::PolicyRegistry>(config_.registry_dir);
    if (config_.policy_path.empty()) {
      if (const auto cur = registry_->current()) {
        try {
          registry_->load(*cur, *governor_);
        } catch (const std::exception& ex) {
          PMRL_WARN("serve") << "registry CURRENT v" << *cur << " rejected ("
                             << ex.what() << "); serving fresh-init policy";
        }
      }
    }
  }
  governor_->set_frozen(true);
  agent_count_ = governor_->agent_count();
  states_per_agent_ = governor_->agent(0).state_count();
  // The safe default is the all-hold action: move/action 0 by the action
  // space's construction (and the value Q-ties resolve to), i.e. "keep the
  // current OPP" — the same stance the watchdog's conservative fallback
  // opens with.
  if (config_.governor.structure == rl::PolicyStructure::Joint) {
    safe_action_ =
        static_cast<std::uint32_t>(governor_->actions().hold_action());
  } else {
    safe_action_ = 0;
    for (std::size_t m = 0; m < governor_->actions().moves_per_cluster();
         ++m) {
      if (governor_->actions().move_value(m) == 0) {
        safe_action_ = static_cast<std::uint32_t>(m);
        break;
      }
    }
  }

  if (registry_ && config_.rollout.canary_pct > 0.0) {
    std::string stage_error;
    if (!stage_candidate_from_registry(&stage_error)) {
      PMRL_WARN("serve") << "canary not staged: " << stage_error;
    }
  }

  if (!config_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.uds_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("serve: uds path too long");
    }
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_listen_fd_ < 0) fail_errno("uds socket");
    ::unlink(config_.uds_path.c_str());
    if (::bind(uds_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      fail_errno("uds bind " + config_.uds_path);
    }
    if (::listen(uds_listen_fd_, 128) < 0) fail_errno("uds listen");
    set_nonblocking(uds_listen_fd_);
  }

  shards_.clear();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.cache_capacity));
  }
  if (config_.tcp_enable) {
    // One listener per shard, all bound to the same port with
    // SO_REUSEPORT: the kernel hashes each new connection to one shard's
    // accept queue, so no shard ever touches another's connections.
    bound_tcp_port_ = config_.tcp_port;
    for (auto& shard : shards_) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail_errno("tcp socket");
      shard->tcp_listen_fd = fd;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
        fail_errno("tcp SO_REUSEPORT");
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(bound_tcp_port_);
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        fail_errno("tcp bind port " + std::to_string(bound_tcp_port_));
      }
      if (::listen(fd, 128) < 0) fail_errno("tcp listen");
      if (bound_tcp_port_ == 0) {
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
        bound_tcp_port_ = ntohs(addr.sin_port);
      }
      set_nonblocking(fd);
    }
  }
  for (auto& shard : shards_) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0) fail_errno("wake pipe");
    shard->wake_rx = pipe_fds[0];
    shard->wake_tx = pipe_fds[1];
    set_nonblocking(shard->wake_rx);
    set_nonblocking(shard->wake_tx);
  }

  shm_workers_.clear();
  if (!config_.shm_path.empty()) {
    shm_ = std::make_unique<ShmSegment>(ShmSegment::create(
        config_.shm_path, config_.shm_lanes, config_.shm_ring_bytes));
    const std::size_t count =
        std::min(config_.shm_workers, config_.shm_lanes);
    for (std::size_t i = 0; i < count; ++i) {
      shm_workers_.push_back(
          std::make_unique<ShmWorker>(i, config_.cache_capacity));
    }
  }

  stopping_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }
  for (auto& worker : shm_workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { shm_loop(*w); });
  }
  running_ = true;
}

void PolicyServer::stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 'x';
  for (auto& shard : shards_) {
    [[maybe_unused]] const auto n = ::write(shard->wake_tx, &byte, 1);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& worker : shm_workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  shards_.clear();       // closes listener fds and drops pending requests
  shm_workers_.clear();
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
  }
  if (!config_.uds_path.empty()) ::unlink(config_.uds_path.c_str());
  shm_.reset();  // clears server_alive, unmaps, unlinks
  queued_total_.store(0, std::memory_order_relaxed);
  running_ = false;
}

bool PolicyServer::request_reload(std::string* error) {
  const std::lock_guard<std::mutex> serial(reload_mutex_);
  if (config_.policy_path.empty() && !registry_) {
    if (error) *error = "no policy path configured";
    return false;
  }
  if (!config_.policy_path.empty()) {
    std::ifstream in(config_.policy_path);
    if (!in) {
      if (error) *error = "cannot open '" + config_.policy_path + "'";
      return false;
    }
    // Stage into a fresh governor; the serving one is untouched until the
    // whole checkpoint has validated (same transactional stance as
    // load_policy itself).
    auto staged = std::make_unique<rl::RlGovernor>(config_.governor,
                                                   config_.cluster_count);
    std::string load_error;
    if (!rl::try_load_policy(*staged, in, &load_error)) {
      if (error) *error = load_error;
      return false;
    }
    staged->set_frozen(true);
    {
      const std::unique_lock<std::shared_mutex> lock(governor_mutex_);
      governor_ = std::move(staged);
      // Bump under the writer lock: every in-flight batch holds the reader
      // side, so a worker that filled cache entries against the old
      // governor observes the new generation (and clears them) before its
      // next probe of the new one.
      cache_generation_.fetch_add(1, std::memory_order_release);
    }
  }
  // SIGHUP-staged canary: with a registry configured, every reload also
  // re-stages the candidate (a new registry entry becomes the canary
  // without restarting the service).
  if (registry_ && config_.rollout.canary_pct > 0.0) {
    std::string stage_error;
    if (!stage_candidate_from_registry(&stage_error)) {
      if (config_.policy_path.empty()) {
        if (error) *error = stage_error;
        return false;
      }
      PMRL_WARN("serve") << "canary not staged on reload: " << stage_error;
    }
  }
  if (reload_counter_) reload_counter_->inc();
  return true;
}

void PolicyServer::stage_candidate(std::unique_ptr<rl::RlGovernor> candidate,
                                   std::uint64_t version) {
  if (!candidate) {
    throw std::invalid_argument("serve: null candidate");
  }
  if (candidate->agent_count() != governor_->agent_count() ||
      candidate->agent(0).state_count() !=
          governor_->agent(0).state_count()) {
    throw std::invalid_argument("serve: candidate shape mismatch");
  }
  candidate->set_frozen(true);
  {
    const std::unique_lock<std::shared_mutex> lock(governor_mutex_);
    candidate_ = std::move(candidate);
    candidate_version_.store(version, std::memory_order_release);
    candidate_active_.store(true, std::memory_order_release);
    cache_generation_.fetch_add(1, std::memory_order_release);
  }
  {
    const std::lock_guard<std::mutex> lock(rollout_mutex_);
    rollout_.start(version);
    rollout_state_.store(
        static_cast<std::uint8_t>(policy::RolloutState::Canary),
        std::memory_order_release);
  }
  emit_rollout_trace("canary_start", version);
}

bool PolicyServer::stage_candidate_from_registry(std::string* error) {
  if (!registry_) {
    if (error) *error = "no registry configured";
    return false;
  }
  std::uint64_t version = config_.candidate_version;
  if (version == 0) {
    const auto latest = registry_->latest_candidate();
    if (!latest) {
      if (error) *error = "registry has no candidate entry";
      return false;
    }
    version = *latest;
  }
  auto staged = std::make_unique<rl::RlGovernor>(config_.governor,
                                                 config_.cluster_count);
  try {
    registry_->load(version, *staged);
  } catch (const std::exception& ex) {
    if (error) *error = ex.what();
    return false;
  }
  try {
    registry_->set_status(version, policy::PolicyStatus::Canary);
  } catch (const std::exception& ex) {
    PMRL_WARN("serve") << "registry status update failed: " << ex.what();
  }
  stage_candidate(std::move(staged), version);
  return true;
}

void PolicyServer::finish_rollout(policy::RolloutDecision decision) {
  const std::uint64_t version =
      candidate_version_.load(std::memory_order_acquire);
  if (decision == policy::RolloutDecision::Rollback) {
    // Rollback never touches a connection: it deactivates the candidate
    // (canary-cohort decisions fall back to the incumbent on the very
    // next batch) and invalidates the worker caches.
    {
      const std::unique_lock<std::shared_mutex> lock(governor_mutex_);
      candidate_active_.store(false, std::memory_order_release);
      candidate_.reset();
      cache_generation_.fetch_add(1, std::memory_order_release);
    }
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    if (rollback_counter_) rollback_counter_->inc();
    if (registry_) {
      try {
        registry_->rollback(version);
      } catch (const std::exception& ex) {
        PMRL_WARN("serve") << "registry rollback failed: " << ex.what();
      }
    }
    emit_rollout_trace("rollback", version);
  } else if (decision == policy::RolloutDecision::Promote) {
    {
      const std::unique_lock<std::shared_mutex> lock(governor_mutex_);
      if (candidate_) governor_ = std::move(candidate_);
      candidate_active_.store(false, std::memory_order_release);
      cache_generation_.fetch_add(1, std::memory_order_release);
    }
    promotions_.fetch_add(1, std::memory_order_relaxed);
    if (promote_counter_) promote_counter_->inc();
    if (registry_) {
      try {
        registry_->promote(version);
      } catch (const std::exception& ex) {
        PMRL_WARN("serve") << "registry promote failed: " << ex.what();
      }
    }
    emit_rollout_trace("promote", version);
  }
}

void PolicyServer::emit_rollout_trace(const char* what,
                                      std::uint64_t version) {
  if (!trace_) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::Rollout;
  event.value = static_cast<double>(version);
  event.detail = what;
  const std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_->record(event);
}

void PolicyServer::pause_workers() {
  paused_.store(true, std::memory_order_release);
}

void PolicyServer::resume_workers() {
  paused_.store(false, std::memory_order_release);
  const char byte = 'x';
  for (auto& shard : shards_) {
    [[maybe_unused]] const auto n = ::write(shard->wake_tx, &byte, 1);
  }
}

void PolicyServer::note_queue_depth(std::ptrdiff_t delta) {
  const auto depth =
      queued_total_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (queue_depth_gauge_) {
    queue_depth_gauge_->set(static_cast<double>(depth));
  }
}

void PolicyServer::shard_loop(Shard& shard) {
  Worker& worker = shard.worker;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::vector<pollfd> fds;
  std::vector<int> ready;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({shard.wake_rx, POLLIN, 0});
    if (uds_listen_fd_ >= 0) fds.push_back({uds_listen_fd_, POLLIN, 0});
    if (shard.tcp_listen_fd >= 0) {
      fds.push_back({shard.tcp_listen_fd, POLLIN, 0});
    }
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});
    const bool work_ready = !worker.pending.empty() &&
                            !paused_.load(std::memory_order_acquire);
    const int n = ::poll(fds.data(), fds.size(), work_ready ? 0 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    ready.clear();
    for (const auto& pfd : fds) {
      if (pfd.revents == 0) continue;
      if (pfd.fd == shard.wake_rx) {
        char buf[16];
        while (::read(shard.wake_rx, buf, sizeof buf) > 0) {
        }
      } else if (pfd.fd == uds_listen_fd_ ||
                 pfd.fd == shard.tcp_listen_fd) {
        // The UDS listener is shared: every shard polls it and races
        // accept; losers get EAGAIN and move on. TCP listeners are per
        // shard, so there accept never races.
        for (;;) {
          const int client = ::accept(pfd.fd, nullptr, nullptr);
          if (client < 0) break;
          set_nonblocking(client);
          if (pfd.fd == shard.tcp_listen_fd) {
            const int one = 1;
            ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
          }
          auto conn = std::make_shared<Connection>(client);
          conn->canary = policy::RolloutController::routes_to_candidate(
              conn_seq_.fetch_add(1, std::memory_order_relaxed),
              config_.rollout.canary_pct, config_.rollout.route_salt);
          conns.emplace(client, std::move(conn));
          if (connection_counter_) connection_counter_->inc();
        }
      } else {
        ready.push_back(pfd.fd);
      }
    }
    for (const int fd : ready) {
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      handle_readable(worker, it->second);
      if (!it->second->open) conns.erase(it);
    }
    if (!paused_.load(std::memory_order_acquire)) process_pending(worker);
  }
}

void PolicyServer::shm_loop(ShmWorker& shm_worker) {
  Worker& worker = shm_worker.worker;
  const std::size_t lanes = shm_->lane_count();
  const std::size_t stride = shm_workers_.size();
  std::vector<std::string> rx(lanes);
  std::vector<std::size_t> rx_off(lanes, 0);
  unsigned idle = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    bool did_work = false;
    for (std::size_t l = shm_worker.index; l < lanes; l += stride) {
      const auto state =
          shm_->lane_state(l).load(std::memory_order_acquire);
      if (state == kLaneClosed) {
        // Client detached: recycle the lane for the next claimant.
        shm_->request_ring(l).reset();
        shm_->response_ring(l).reset();
        rx[l].clear();
        rx_off[l] = 0;
        shm_->lane_state(l).store(kLaneFree, std::memory_order_release);
        did_work = true;
        continue;
      }
      if (state != kLaneClaimed) continue;
      ShmRing ring = shm_->request_ring(l);
      char buf[4096];
      std::size_t got;
      while ((got = ring.read_some(buf, sizeof buf)) > 0) {
        rx[l].append(buf, got);
        did_work = true;
      }
      for (;;) {
        util::Frame frame;
        const auto status = util::decode_frame(rx[l], rx_off[l], frame);
        if (status == util::FrameStatus::NeedMore) break;
        if (status != util::FrameStatus::Ok) {
          // The lane's byte stream lost framing — the shm analog of the
          // socket case, except there is no connection to drop: report,
          // poison the lane, and stop servicing it until the client
          // detaches.
          if (wire_error_counter_) wire_error_counter_->inc();
          std::string out;
          append_error(out, ErrorMsg{0,
                                     static_cast<std::uint32_t>(
                                         WireErrorCode::BadMessage),
                                     std::string("frame error: ") +
                                         util::frame_status_name(status)});
          send_lane(static_cast<std::uint32_t>(l), out);
          // CAS: a client that raced to Closed must not be overwritten,
          // or the lane would never recycle.
          std::uint32_t expected = kLaneClaimed;
          shm_->lane_state(l).compare_exchange_strong(
              expected, kLanePoisoned, std::memory_order_acq_rel);
          rx[l].clear();
          rx_off[l] = 0;
          break;
        }
        handle_frame(worker, nullptr, static_cast<std::uint32_t>(l), frame);
      }
      if (rx_off[l] > 4096 && rx_off[l] * 2 > rx[l].size()) {
        rx[l].erase(0, rx_off[l]);
        rx_off[l] = 0;
      }
    }
    if (!paused_.load(std::memory_order_acquire) &&
        !worker.pending.empty()) {
      process_pending(worker);
      did_work = true;
    }
    if (did_work) {
      idle = 0;
    } else if (++idle >= 64) {
      // No fd to block on: adaptive backoff keeps an idle segment cheap
      // while a busy one is serviced at memory speed.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void PolicyServer::handle_readable(Worker& worker,
                                   const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->rx.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {  // orderly shutdown by the peer
      conn->open = false;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->open = false;
    return;
  }
  while (conn->open) {
    util::Frame frame;
    const auto status = util::decode_frame(conn->rx, conn->rx_off, frame);
    if (status == util::FrameStatus::NeedMore) break;
    if (status != util::FrameStatus::Ok) {
      // Framing is lost; there is no safe way to find the next frame
      // boundary in a corrupted byte stream. Tell the peer, then drop
      // only this connection.
      if (wire_error_counter_) wire_error_counter_->inc();
      std::string out;
      append_error(out, ErrorMsg{0,
                                 static_cast<std::uint32_t>(
                                     WireErrorCode::BadMessage),
                                 std::string("frame error: ") +
                                     util::frame_status_name(status)});
      send_bytes(conn, out);
      conn->open = false;
      return;
    }
    handle_frame(worker, conn, kNoLane, frame);
  }
  // Reclaim the parsed prefix once it dominates the buffer.
  if (conn->rx_off > 4096 && conn->rx_off * 2 > conn->rx.size()) {
    conn->rx.erase(0, conn->rx_off);
    conn->rx_off = 0;
  }
}

void PolicyServer::handle_frame(Worker& worker,
                                const std::shared_ptr<Connection>& conn,
                                std::uint32_t lane, const util::Frame& frame) {
  std::string out;
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::Query: {
      QueryMsg query;
      if (!parse_query(frame, query)) {
        if (wire_error_counter_) wire_error_counter_->inc();
        append_error(out, ErrorMsg{0,
                                   static_cast<std::uint32_t>(
                                       WireErrorCode::BadMessage),
                                   "malformed query payload"});
        send_to(conn, lane, out);
        return;
      }
      if (query.agent >= agent_count_) {
        append_error(
            out, ErrorMsg{query.request_id,
                          static_cast<std::uint32_t>(WireErrorCode::BadAgent),
                          "agent index out of range"});
        send_to(conn, lane, out);
        return;
      }
      if (query.state >= states_per_agent_) {
        append_error(
            out, ErrorMsg{query.request_id,
                          static_cast<std::uint32_t>(WireErrorCode::BadState),
                          "state index out of range"});
        send_to(conn, lane, out);
        return;
      }
      enqueue_or_shed(worker, conn, lane, query);
      return;
    }
    case MsgType::Ping: {
      std::uint64_t token = 0;
      parse_ping(frame, token);
      append_pong(out, token);
      send_to(conn, lane, out);
      return;
    }
    case MsgType::Reload: {
      std::string error;
      const bool ok = request_reload(&error);
      append_reload_ack(out, ReloadAckMsg{ok, error});
      send_to(conn, lane, out);
      return;
    }
    case MsgType::Report: {
      handle_report(worker, conn, lane, frame);
      return;
    }
    default: {
      if (wire_error_counter_) wire_error_counter_->inc();
      append_error(out, ErrorMsg{0,
                                 static_cast<std::uint32_t>(
                                     WireErrorCode::BadMessage),
                                 std::string("unexpected message type ") +
                                     std::to_string(frame.type)});
      send_to(conn, lane, out);
      return;
    }
  }
}

void PolicyServer::handle_report(Worker& worker,
                                 const std::shared_ptr<Connection>& conn,
                                 std::uint32_t lane,
                                 const util::Frame& frame) {
  (void)worker;
  std::string out;
  ReportMsg report;
  if (!parse_report(frame, report)) {
    if (wire_error_counter_) wire_error_counter_->inc();
    append_error(out, ErrorMsg{0,
                               static_cast<std::uint32_t>(
                                   WireErrorCode::BadMessage),
                               "malformed report payload"});
    send_to(conn, lane, out);
    return;
  }
  const bool route_arm =
      conn ? conn->canary
           : policy::RolloutController::routes_to_candidate(
                 kLaneRouteBase + lane, config_.rollout.canary_pct,
                 config_.rollout.route_salt);
  // Credit the candidate arm only while the candidate actually serves the
  // cohort; after rollback the cohort's outcomes are the incumbent's.
  const bool credited =
      route_arm && candidate_active_.load(std::memory_order_acquire);
  policy::RolloutDecision decision = policy::RolloutDecision::None;
  std::uint8_t state_now = 0;
  {
    const std::lock_guard<std::mutex> lock(rollout_mutex_);
    decision = rollout_.report(credited, report.energy_j, report.qos);
    state_now = static_cast<std::uint8_t>(rollout_.state());
    rollout_state_.store(state_now, std::memory_order_release);
    if (arm_epq_gauge_[credited ? 1 : 0]) {
      arm_epq_gauge_[credited ? 1 : 0]->set(
          rollout_.arm_energy_per_qos(credited));
    }
  }
  if (report_counter_[credited ? 1 : 0]) {
    report_counter_[credited ? 1 : 0]->inc();
  }
  if (decision != policy::RolloutDecision::None) {
    finish_rollout(decision);
    state_now = rollout_state_.load(std::memory_order_acquire);
  }
  append_report_ack(out,
                    ReportAckMsg{report.request_id, credited, state_now});
  send_to(conn, lane, out);
}

void PolicyServer::enqueue_or_shed(Worker& worker,
                                   const std::shared_ptr<Connection>& conn,
                                   std::uint32_t lane,
                                   const QueryMsg& query) {
  if (requests_counter_) requests_counter_->inc();
  if (!stopping_.load(std::memory_order_relaxed) &&
      worker.pending.size() < config_.queue_capacity) {
    const bool canary =
        conn ? conn->canary
             : policy::RolloutController::routes_to_candidate(
                   kLaneRouteBase + lane, config_.rollout.canary_pct,
                   config_.rollout.route_salt);
    worker.pending.push_back(
        Pending{conn, lane, canary, query,
                std::chrono::steady_clock::now()});
    note_queue_depth(1);
    return;
  }
  // Overload: degrade, don't drop. The client gets an immediate
  // safe-default decision (all-hold) instead of a queue slot.
  if (shed_counter_) shed_counter_->inc();
  std::string out;
  append_response(out, ResponseMsg{query.request_id, safe_default_action(),
                                   kRespSafeDefault});
  send_to(conn, lane, out);
  responses_.fetch_add(1, std::memory_order_relaxed);
}

void PolicyServer::process_pending(Worker& worker) {
  while (!worker.pending.empty() &&
         !stopping_.load(std::memory_order_relaxed)) {
    const std::size_t take =
        std::min(worker.pending.size(), config_.batch_max);
    worker.batch.clear();
    for (std::size_t i = 0; i < take; ++i) {
      worker.batch.push_back(std::move(worker.pending.front()));
      worker.pending.pop_front();
    }
    note_queue_depth(-static_cast<std::ptrdiff_t>(take));
    process_batch(worker);
  }
}

void PolicyServer::process_batch(Worker& worker) {
  auto& batch = worker.batch;
  if (batch.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (config_.batch_process_delay.count() > 0) {
    std::this_thread::sleep_for(config_.batch_process_delay);
  }
  worker.msgs.resize(batch.size());
  {
    const std::shared_lock<std::shared_mutex> glock(governor_mutex_);
    // Reconcile reload generation while holding the reader lock: the
    // governor cannot swap mid-batch, so entries filled below belong to
    // the generation recorded here. Both arms share one generation; a
    // candidate swap bumps it, so both caches clear together.
    const std::uint64_t generation =
        cache_generation_.load(std::memory_order_acquire);
    worker.cache.sync(generation);
    worker.canary_cache.sync(generation);
    // The candidate pointer only swaps under the writer lock, so this is
    // a stable view for the whole batch.
    const bool canary_on =
        candidate_active_.load(std::memory_order_acquire) &&
        candidate_ != nullptr;
    const auto now = std::chrono::steady_clock::now();
    worker.miss_slots.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& pending = batch[i];
      const bool use_candidate = canary_on && pending.canary;
      ResponseMsg& msg = worker.msgs[i];
      msg = ResponseMsg{pending.query.request_id, 0,
                        use_candidate ? kRespCanary : std::uint16_t{0}};
      if (now - pending.enqueued > config_.request_timeout) {
        // Stale decision = wrong decision: a DVFS answer for a 50 ms old
        // state is worthless, so degrade to the safe default instead.
        msg.action = safe_default_action();
        msg.flags = kRespSafeDefault;
        if (timeout_counter_) timeout_counter_->inc();
        continue;
      }
      const std::uint64_t key =
          static_cast<std::uint64_t>(pending.query.agent) *
              states_per_agent_ +
          pending.query.state;
      WorkerCache& cache =
          use_candidate ? worker.canary_cache : worker.cache;
      if (const auto hit = cache.get(key)) {
        msg.action = *hit;
        msg.flags |= kRespCacheHit;
        if (cache_hit_counter_) cache_hit_counter_->inc();
        continue;
      }
      worker.miss_slots.push_back(i);
    }
    // Cache misses go through the batched argmax: one SIMD pass per agent
    // (and per arm while a candidate serves) instead of a scalar row scan
    // per request.
    for (int arm = 0; !worker.miss_slots.empty() && arm < (canary_on ? 2 : 1);
         ++arm) {
      rl::RlGovernor& arm_governor = arm == 1 ? *candidate_ : *governor_;
      WorkerCache& arm_cache =
          arm == 1 ? worker.canary_cache : worker.cache;
      for (std::uint32_t agent = 0; agent < agent_count_; ++agent) {
        worker.agent_slots.clear();
        worker.miss_states.clear();
        for (const std::size_t i : worker.miss_slots) {
          const bool use_candidate = canary_on && batch[i].canary;
          if ((use_candidate ? 1 : 0) != arm) continue;
          if (batch[i].query.agent != agent) continue;
          worker.agent_slots.push_back(i);
          worker.miss_states.push_back(batch[i].query.state);
        }
        if (worker.agent_slots.empty()) continue;
        worker.miss_actions.resize(worker.agent_slots.size());
        arm_governor.agent(agent).greedy_actions(
            worker.miss_states.data(), worker.miss_states.size(),
            worker.miss_actions.data());
        for (std::size_t j = 0; j < worker.agent_slots.size(); ++j) {
          const std::size_t i = worker.agent_slots[j];
          const std::uint32_t action = worker.miss_actions[j];
          worker.msgs[i].action = action;
          arm_cache.put(static_cast<std::uint64_t>(agent) *
                                states_per_agent_ +
                            batch[i].query.state,
                        action);
          if (cache_miss_counter_) cache_miss_counter_->inc();
        }
      }
    }
  }
  // Respond in arrival order, coalescing consecutive responses to the
  // same target into one send: a pipelined client's whole batch costs a
  // single syscall (or one ring reservation) instead of one per decision.
  std::string& out = worker.tx;
  out.clear();
  const Connection* current_conn = nullptr;
  std::uint32_t current_lane = kNoLane;
  bool have_target = false;
  auto flush = [&](const std::shared_ptr<Connection>& conn,
                   std::uint32_t lane) {
    if (out.empty()) return;
    send_to(conn, lane, out);
    out.clear();
  };
  std::shared_ptr<Connection> target_conn;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& pending = batch[i];
    if (!have_target || pending.conn.get() != current_conn ||
        pending.lane != current_lane) {
      flush(target_conn, current_lane);
      target_conn = pending.conn;
      current_conn = pending.conn.get();
      current_lane = pending.lane;
      have_target = true;
    }
    append_response(out, worker.msgs[i]);
  }
  flush(target_conn, current_lane);
  responses_.fetch_add(batch.size(), std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  if (latency_hist_) {
    for (const Pending& pending : batch) {
      latency_hist_->observe(
          std::chrono::duration<double>(t1 - pending.enqueued).count());
    }
  }
  if (batch_size_hist_) {
    batch_size_hist_->observe(static_cast<double>(batch.size()));
  }
  emit_batch_trace(batch.size(),
                   std::chrono::duration<double>(t1 - t0).count(),
                   batch.front().query.state, worker.msgs.front().action);
}

void PolicyServer::send_to(const std::shared_ptr<Connection>& conn,
                           std::uint32_t lane, const std::string& bytes) {
  if (conn) {
    send_bytes(conn, bytes);
  } else if (lane != kNoLane) {
    send_lane(lane, bytes);
  }
}

void PolicyServer::send_bytes(const std::shared_ptr<Connection>& conn,
                              const std::string& bytes) {
  if (!conn || !conn->open) return;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn->fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, kWriteStallTimeoutMs) <= 0) {
        conn->open = false;
        return;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    conn->open = false;
    return;
  }
}

void PolicyServer::send_lane(std::uint32_t lane, const std::string& bytes) {
  if (!shm_) return;
  ShmRing ring = shm_->response_ring(lane);
  std::size_t off = 0;
  unsigned spins = 0;
  while (off < bytes.size()) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    const auto state =
        shm_->lane_state(lane).load(std::memory_order_acquire);
    if (state != kLaneClaimed && state != kLanePoisoned) return;
    const std::size_t n =
        ring.write_some(bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += n;
      spins = 0;
      continue;
    }
    ring_backoff(spins);
  }
}

void PolicyServer::emit_batch_trace(std::size_t batch_size, double latency_s,
                                    std::uint64_t first_state,
                                    std::uint32_t first_action) {
  if (!trace_) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::HwInvoke;
  event.epoch = batch_seq_.fetch_add(1, std::memory_order_relaxed);
  event.state = first_state;
  event.action = first_action;
  event.latency_s = latency_s;
  event.value = static_cast<double>(batch_size);
  event.detail = "serve.batch";
  const std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_->record(event);
}

}  // namespace pmrl::serve
