#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "rl/policy_io.hpp"
#include "util/log.hpp"

namespace pmrl::serve {

namespace {

/// Blocks in poll(POLLOUT) this long before declaring a peer stuck and
/// abandoning the write (the connection is then marked closed).
constexpr int kWriteStallTimeoutMs = 1000;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

}  // namespace

/// One client connection. The acceptor thread owns the read side (buffer,
/// frame decode); workers share the write side behind `write_mutex`. The
/// file descriptor closes when the last shared_ptr drops, so a response
/// for a request that outlived its connection writes to a still-valid fd
/// (at worst into a shut-down socket) instead of a recycled one.
struct PolicyServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  std::atomic<bool> open{true};
  std::mutex write_mutex;
  std::string rx;
  std::size_t rx_off = 0;
};

struct PolicyServer::Pending {
  std::shared_ptr<Connection> conn;
  QueryMsg query;
  std::chrono::steady_clock::time_point enqueued;
};

PolicyServer::PolicyServer(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity) {
  if (config_.workers == 0) {
    throw std::invalid_argument("serve: workers must be >= 1");
  }
  if (config_.batch_max == 0) {
    throw std::invalid_argument("serve: batch_max must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("serve: queue_capacity must be >= 1");
  }
  if (config_.uds_path.empty() && !config_.tcp_enable) {
    throw std::invalid_argument("serve: no listener configured");
  }
  governor_ = std::make_unique<rl::RlGovernor>(config_.governor,
                                               config_.cluster_count);
}

PolicyServer::~PolicyServer() { stop(); }

void PolicyServer::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  requests_counter_ = metrics ? &metrics->counter("serve.requests") : nullptr;
  shed_counter_ = metrics ? &metrics->counter("serve.shed") : nullptr;
  timeout_counter_ = metrics ? &metrics->counter("serve.timeouts") : nullptr;
  cache_hit_counter_ =
      metrics ? &metrics->counter("serve.cache_hit") : nullptr;
  cache_miss_counter_ =
      metrics ? &metrics->counter("serve.cache_miss") : nullptr;
  wire_error_counter_ =
      metrics ? &metrics->counter("serve.wire_errors") : nullptr;
  reload_counter_ = metrics ? &metrics->counter("serve.reloads") : nullptr;
  connection_counter_ =
      metrics ? &metrics->counter("serve.connections") : nullptr;
  queue_depth_gauge_ =
      metrics ? &metrics->gauge("serve.queue_depth") : nullptr;
  batch_size_hist_ =
      metrics ? &metrics->histogram("serve.batch_size",
                                    {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                     128.0})
              : nullptr;
  latency_hist_ =
      metrics ? &metrics->histogram(
                    "serve.latency_s",
                    {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
                     1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 0.1, 1.0})
              : nullptr;
}

void PolicyServer::start() {
  if (running_) return;
  if (!config_.policy_path.empty()) {
    std::ifstream in(config_.policy_path);
    std::string error;
    if (!in) {
      PMRL_WARN("serve") << "cannot open checkpoint '" << config_.policy_path
                         << "'; serving fresh-init policy";
    } else if (!rl::try_load_policy(*governor_, in, &error)) {
      PMRL_WARN("serve") << "checkpoint rejected (" << error
                         << "); serving fresh-init policy";
    }
  }
  governor_->set_frozen(true);
  agent_count_ = governor_->agent_count();
  states_per_agent_ = governor_->agent(0).state_count();
  // The safe default is the all-hold action: move/action 0 by the action
  // space's construction (and the value Q-ties resolve to), i.e. "keep the
  // current OPP" — the same stance the watchdog's conservative fallback
  // opens with.
  if (config_.governor.structure == rl::PolicyStructure::Joint) {
    safe_action_ =
        static_cast<std::uint32_t>(governor_->actions().hold_action());
  } else {
    safe_action_ = 0;
    for (std::size_t m = 0; m < governor_->actions().moves_per_cluster();
         ++m) {
      if (governor_->actions().move_value(m) == 0) {
        safe_action_ = static_cast<std::uint32_t>(m);
        break;
      }
    }
  }

  if (!config_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.uds_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("serve: uds path too long");
    }
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_listen_fd_ < 0) fail_errno("uds socket");
    ::unlink(config_.uds_path.c_str());
    if (::bind(uds_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      fail_errno("uds bind " + config_.uds_path);
    }
    if (::listen(uds_listen_fd_, 128) < 0) fail_errno("uds listen");
    set_nonblocking(uds_listen_fd_);
  }
  if (config_.tcp_enable) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) fail_errno("tcp socket");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.tcp_port);
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      fail_errno("tcp bind port " + std::to_string(config_.tcp_port));
    }
    if (::listen(tcp_listen_fd_, 128) < 0) fail_errno("tcp listen");
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port_ = ntohs(addr.sin_port);
    set_nonblocking(tcp_listen_fd_);
  }
  if (::pipe(wake_pipe_) < 0) fail_errno("wake pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = false;
  }
  pool_ = std::make_unique<core::runfarm::ThreadPool>(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  running_ = true;
}

void PolicyServer::stop() {
  if (!running_) return;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  const char byte = 'x';
  [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
  if (acceptor_.joinable()) acceptor_.join();
  pool_.reset();  // joins the worker loops
  auto close_fd = [](int& fd) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  };
  close_fd(uds_listen_fd_);
  close_fd(tcp_listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  if (!config_.uds_path.empty()) ::unlink(config_.uds_path.c_str());
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  running_ = false;
}

bool PolicyServer::request_reload(std::string* error) {
  const std::lock_guard<std::mutex> serial(reload_mutex_);
  if (config_.policy_path.empty()) {
    if (error) *error = "no policy path configured";
    return false;
  }
  std::ifstream in(config_.policy_path);
  if (!in) {
    if (error) *error = "cannot open '" + config_.policy_path + "'";
    return false;
  }
  // Stage into a fresh governor; the serving one is untouched until the
  // whole checkpoint has validated (same transactional stance as
  // load_policy itself).
  auto staged = std::make_unique<rl::RlGovernor>(config_.governor,
                                                 config_.cluster_count);
  std::string load_error;
  if (!rl::try_load_policy(*staged, in, &load_error)) {
    if (error) *error = load_error;
    return false;
  }
  staged->set_frozen(true);
  {
    const std::unique_lock<std::shared_mutex> lock(governor_mutex_);
    governor_ = std::move(staged);
    // Invalidate under the writer lock: no in-flight batch (they hold the
    // reader side) can re-fill the cache with pre-reload decisions after
    // this clear.
    cache_.clear();
  }
  if (reload_counter_) reload_counter_->inc();
  return true;
}

void PolicyServer::pause_workers() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = true;
}

void PolicyServer::resume_workers() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void PolicyServer::acceptor_loop() {
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::vector<pollfd> fds;
  std::vector<int> ready;
  for (;;) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (uds_listen_fd_ >= 0) fds.push_back({uds_listen_fd_, POLLIN, 0});
    if (tcp_listen_fd_ >= 0) fds.push_back({tcp_listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) break;
    }
    ready.clear();
    for (const auto& pfd : fds) {
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_pipe_[0]) {
        char buf[16];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
      } else if (pfd.fd == uds_listen_fd_ || pfd.fd == tcp_listen_fd_) {
        for (;;) {
          const int client = ::accept(pfd.fd, nullptr, nullptr);
          if (client < 0) break;
          set_nonblocking(client);
          conns.emplace(client, std::make_shared<Connection>(client));
          if (connection_counter_) connection_counter_->inc();
        }
      } else {
        ready.push_back(pfd.fd);
      }
    }
    for (const int fd : ready) {
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      handle_readable(it->second);
      if (!it->second->open) conns.erase(it);
    }
  }
}

void PolicyServer::handle_readable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->rx.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {  // orderly shutdown by the peer
      conn->open = false;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->open = false;
    return;
  }
  while (conn->open) {
    util::Frame frame;
    const auto status = util::decode_frame(conn->rx, conn->rx_off, frame);
    if (status == util::FrameStatus::NeedMore) break;
    if (status != util::FrameStatus::Ok) {
      // Framing is lost; there is no safe way to find the next frame
      // boundary in a corrupted byte stream. Tell the peer, then drop
      // only this connection.
      if (wire_error_counter_) wire_error_counter_->inc();
      std::string out;
      append_error(out, ErrorMsg{0,
                                 static_cast<std::uint32_t>(
                                     WireErrorCode::BadMessage),
                                 std::string("frame error: ") +
                                     util::frame_status_name(status)});
      send_bytes(conn, out);
      conn->open = false;
      return;
    }
    handle_frame(conn, frame);
  }
  // Reclaim the parsed prefix once it dominates the buffer.
  if (conn->rx_off > 4096 && conn->rx_off * 2 > conn->rx.size()) {
    conn->rx.erase(0, conn->rx_off);
    conn->rx_off = 0;
  }
}

void PolicyServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                const util::Frame& frame) {
  std::string out;
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::Query: {
      QueryMsg query;
      if (!parse_query(frame, query)) {
        if (wire_error_counter_) wire_error_counter_->inc();
        append_error(out, ErrorMsg{0,
                                   static_cast<std::uint32_t>(
                                       WireErrorCode::BadMessage),
                                   "malformed query payload"});
        send_bytes(conn, out);
        return;
      }
      if (query.agent >= agent_count_) {
        append_error(
            out, ErrorMsg{query.request_id,
                          static_cast<std::uint32_t>(WireErrorCode::BadAgent),
                          "agent index out of range"});
        send_bytes(conn, out);
        return;
      }
      if (query.state >= states_per_agent_) {
        append_error(
            out, ErrorMsg{query.request_id,
                          static_cast<std::uint32_t>(WireErrorCode::BadState),
                          "state index out of range"});
        send_bytes(conn, out);
        return;
      }
      enqueue_or_shed(conn, query);
      return;
    }
    case MsgType::Ping: {
      std::uint64_t token = 0;
      parse_ping(frame, token);
      append_pong(out, token);
      send_bytes(conn, out);
      return;
    }
    case MsgType::Reload: {
      std::string error;
      const bool ok = request_reload(&error);
      append_reload_ack(out, ReloadAckMsg{ok, error});
      send_bytes(conn, out);
      return;
    }
    default: {
      if (wire_error_counter_) wire_error_counter_->inc();
      append_error(out, ErrorMsg{0,
                                 static_cast<std::uint32_t>(
                                     WireErrorCode::BadMessage),
                                 std::string("unexpected message type ") +
                                     std::to_string(frame.type)});
      send_bytes(conn, out);
      return;
    }
  }
}

void PolicyServer::enqueue_or_shed(const std::shared_ptr<Connection>& conn,
                                   const QueryMsg& query) {
  if (requests_counter_) requests_counter_->inc();
  bool shed = false;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      shed = true;
    } else if (queue_.size() >= config_.queue_capacity) {
      shed = true;
    } else {
      queue_.push_back(
          Pending{conn, query, std::chrono::steady_clock::now()});
      if (queue_depth_gauge_) {
        queue_depth_gauge_->set(static_cast<double>(queue_.size()));
      }
    }
  }
  if (shed) {
    // Overload: degrade, don't drop. The client gets an immediate
    // safe-default decision (all-hold) instead of a queue slot.
    if (shed_counter_) shed_counter_->inc();
    respond(conn,
            ResponseMsg{query.request_id, safe_default_action(),
                        kRespSafeDefault});
    return;
  }
  queue_cv_.notify_one();
}

void PolicyServer::worker_loop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Micro-batch: gather until batch_max or the flush deadline, so one
      // governor pass serves every request in flight.
      const auto deadline =
          std::chrono::steady_clock::now() + config_.batch_deadline;
      while (batch.size() < config_.batch_max && !stopping_ && !paused_) {
        if (queue_.empty()) {
          const bool woke = queue_cv_.wait_until(lock, deadline, [this] {
            return stopping_ || paused_ || !queue_.empty();
          });
          if (!woke) break;  // deadline: flush what we have
          if (stopping_ || paused_) break;
        }
        if (queue_.empty()) continue;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (queue_depth_gauge_) {
        queue_depth_gauge_->set(static_cast<double>(queue_.size()));
      }
    }
    process_batch(batch);
  }
}

void PolicyServer::process_batch(std::vector<Pending>& batch) {
  if (batch.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (config_.batch_process_delay.count() > 0) {
    std::this_thread::sleep_for(config_.batch_process_delay);
  }
  std::uint32_t first_action = 0;
  {
    const std::shared_lock<std::shared_mutex> glock(governor_mutex_);
    for (auto& pending : batch) {
      ResponseMsg msg;
      msg.request_id = pending.query.request_id;
      const auto now = std::chrono::steady_clock::now();
      if (now - pending.enqueued > config_.request_timeout) {
        // Stale decision = wrong decision: a DVFS answer for a 50 ms old
        // state is worthless, so degrade to the safe default instead.
        msg.action = safe_default_action();
        msg.flags = kRespSafeDefault;
        if (timeout_counter_) timeout_counter_->inc();
      } else {
        msg.action = decide(pending.query.agent, pending.query.state,
                            msg.flags);
      }
      if (&pending == &batch.front()) first_action = msg.action;
      respond(pending.conn, msg);
      if (latency_hist_) {
        latency_hist_->observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          pending.enqueued)
                .count());
      }
    }
  }
  if (batch_size_hist_) {
    batch_size_hist_->observe(static_cast<double>(batch.size()));
  }
  emit_batch_trace(
      batch.size(),
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count(),
      batch.front().query.state, first_action);
}

std::uint32_t PolicyServer::decide(std::uint32_t agent, std::uint64_t state,
                                   std::uint16_t& flags) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(agent) * states_per_agent_ + state;
  if (const auto hit = cache_.get(key)) {
    flags |= kRespCacheHit;
    if (cache_hit_counter_) cache_hit_counter_->inc();
    return *hit;
  }
  const auto action = static_cast<std::uint32_t>(
      governor_->agent(agent).greedy_action(state));
  cache_.put(key, action);
  if (cache_miss_counter_) cache_miss_counter_->inc();
  return action;
}

void PolicyServer::respond(const std::shared_ptr<Connection>& conn,
                           const ResponseMsg& msg) {
  std::string out;
  append_response(out, msg);
  send_bytes(conn, out);
  responses_.fetch_add(1, std::memory_order_relaxed);
}

void PolicyServer::send_bytes(const std::shared_ptr<Connection>& conn,
                              const std::string& bytes) {
  if (!conn || !conn->open) return;
  const std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open) return;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn->fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, kWriteStallTimeoutMs) <= 0) {
        conn->open = false;
        return;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    conn->open = false;
    return;
  }
}

void PolicyServer::emit_batch_trace(std::size_t batch_size, double latency_s,
                                    std::uint64_t first_state,
                                    std::uint32_t first_action) {
  if (!trace_) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::HwInvoke;
  event.epoch = batch_seq_.fetch_add(1, std::memory_order_relaxed);
  event.state = first_state;
  event.action = first_action;
  event.latency_s = latency_s;
  event.value = static_cast<double>(batch_size);
  event.detail = "serve.batch";
  const std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_->record(event);
}

}  // namespace pmrl::serve
