#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pmrl::serve {

namespace {
[[noreturn]] void fail_errno(const std::string& what) {
  throw ClientError("serve client: " + what + ": " + std::strerror(errno));
}
}  // namespace

Client Client::connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ClientError("serve client: uds path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result);
  if (rc != 0 || !result) {
    throw ClientError("serve client: resolve " + host + ": " +
                      ::gai_strerror(rc));
  }
  int fd = -1;
  int saved = 0;
  for (addrinfo* ai = result; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    errno = saved;
    fail_errno("connect " + host + ":" + std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_off_(other.rx_off_),
      next_id_(other.next_id_),
      stashed_(std::move(other.stashed_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_off_ = other.rx_off_;
    next_id_ = other.next_id_;
    stashed_ = std::move(other.stashed_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_all(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail_errno("send");
  }
}

void Client::send_raw(const void* data, std::size_t len) {
  std::string bytes(static_cast<const char*>(data), len);
  send_all(bytes);
}

util::Frame Client::read_frame() {
  for (;;) {
    util::Frame frame;
    const auto status = util::decode_frame(rx_, rx_off_, frame);
    if (status == util::FrameStatus::Ok) {
      if (rx_off_ > 4096 && rx_off_ * 2 > rx_.size()) {
        rx_.erase(0, rx_off_);
        rx_off_ = 0;
      }
      return frame;
    }
    if (status != util::FrameStatus::NeedMore) {
      throw ClientError(std::string("serve client: corrupt frame: ") +
                        util::frame_status_name(status));
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rx_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw ClientError("serve client: connection closed by peer");
    if (errno == EINTR) continue;
    fail_errno("recv");
  }
}

std::uint64_t Client::send_query(std::uint64_t state, std::uint32_t agent) {
  const std::uint64_t id = next_id_++;
  std::string out;
  append_query(out, QueryMsg{id, agent, state});
  send_all(out);
  return id;
}

ResponseMsg Client::recv_response() {
  if (!stashed_.empty()) {
    ResponseMsg msg = stashed_.front();
    stashed_.pop_front();
    return msg;
  }
  for (;;) {
    const util::Frame frame = read_frame();
    const auto type = static_cast<MsgType>(frame.type);
    if (type == MsgType::Response) {
      ResponseMsg msg;
      if (!parse_response(frame, msg)) {
        throw ClientError("serve client: malformed response payload");
      }
      return msg;
    }
    if (type == MsgType::Error) {
      ErrorMsg err;
      parse_error(frame, err);
      throw ClientError("serve client: server error " +
                        std::to_string(err.code) + ": " + err.message);
    }
    // Pong/ReloadAck interleaved with pipelined traffic: not expected from
    // this client's call pattern, drop.
  }
}

Client::Result Client::query(std::uint64_t state, std::uint32_t agent) {
  const std::uint64_t id = send_query(state, agent);
  for (;;) {
    const ResponseMsg msg = recv_response();
    if (msg.request_id != id) {
      stashed_.push_back(msg);
      continue;
    }
    return Result{msg.action, (msg.flags & kRespSafeDefault) != 0,
                  (msg.flags & kRespCacheHit) != 0,
                  (msg.flags & kRespCanary) != 0};
  }
}

Client::ReportResult Client::report(double energy_j, double qos) {
  const std::uint64_t id = next_id_++;
  std::string out;
  append_report(out, ReportMsg{id, energy_j, qos});
  send_all(out);
  for (;;) {
    const util::Frame frame = read_frame();
    const auto type = static_cast<MsgType>(frame.type);
    if (type == MsgType::ReportAck) {
      ReportAckMsg ack;
      if (!parse_report_ack(frame, ack)) {
        throw ClientError("serve client: malformed report ack");
      }
      return ReportResult{ack.candidate_arm, ack.rollout_state};
    }
    if (type == MsgType::Response) {
      ResponseMsg msg;
      if (parse_response(frame, msg)) stashed_.push_back(msg);
      continue;
    }
    if (type == MsgType::Error) {
      ErrorMsg err;
      parse_error(frame, err);
      throw ClientError("serve client: server error " +
                        std::to_string(err.code) + ": " + err.message);
    }
    throw ClientError("serve client: unexpected reply to report");
  }
}

bool Client::ping(std::uint64_t token) {
  std::string out;
  append_ping(out, token);
  send_all(out);
  for (;;) {
    const util::Frame frame = read_frame();
    if (static_cast<MsgType>(frame.type) == MsgType::Pong) {
      std::uint64_t echoed = 0;
      if (!parse_pong(frame, echoed)) {
        throw ClientError("serve client: malformed pong payload");
      }
      return echoed == token;
    }
    if (static_cast<MsgType>(frame.type) == MsgType::Response) {
      ResponseMsg msg;
      if (parse_response(frame, msg)) stashed_.push_back(msg);
      continue;
    }
    throw ClientError("serve client: unexpected reply to ping");
  }
}

bool Client::reload(std::string* error) {
  std::string out;
  append_reload(out);
  send_all(out);
  for (;;) {
    const util::Frame frame = read_frame();
    if (static_cast<MsgType>(frame.type) == MsgType::ReloadAck) {
      ReloadAckMsg ack;
      if (!parse_reload_ack(frame, ack)) {
        throw ClientError("serve client: malformed reload ack");
      }
      if (!ack.ok && error) *error = ack.error;
      return ack.ok;
    }
    if (static_cast<MsgType>(frame.type) == MsgType::Response) {
      ResponseMsg msg;
      if (parse_response(frame, msg)) stashed_.push_back(msg);
      continue;
    }
    throw ClientError("serve client: unexpected reply to reload");
  }
}

}  // namespace pmrl::serve
