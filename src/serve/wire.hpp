#pragma once
// Serve wire protocol: the message layer of the policy-decision service.
// Every message travels inside one CRC-32-validated binary frame
// (util/framing.hpp); this header defines the message kinds and their
// little-endian payload layouts:
//
//   Query     u64 request_id, u32 agent, u64 state          (20 bytes)
//   Response  u64 request_id, u32 action, u16 flags, u16 0  (16 bytes)
//   Ping/Pong u64 token                                      (8 bytes)
//   Reload    (empty)
//   ReloadAck u8 ok, error text                              (1+n bytes)
//   Error     u64 request_id, u32 code, message text         (12+n bytes)
//   Report    u64 request_id, f64 energy_j, f64 qos          (24 bytes;
//             doubles travel as their IEEE-754 bit patterns, u64 LE)
//   ReportAck u64 request_id, u8 candidate_arm, u8 state     (10 bytes)
//
// A Query carries a *quantized* rl state: the client runs the
// StateEncoder (or ships precomputed indices) and the server answers with
// the greedy rl::Action index for that agent — the same request/response
// transaction shape as the paper's CPU<->accelerator interface. Response
// flags say how the decision was produced (cache hit, or the safe-default
// degradation used for shed/timed-out requests).

#include <cstdint>
#include <string>
#include <string_view>

#include "util/framing.hpp"

namespace pmrl::serve {

/// Frame `type` values of the serve protocol.
enum class MsgType : std::uint8_t {
  Query = 1,
  Response = 2,
  Ping = 3,
  Pong = 4,
  Reload = 5,
  ReloadAck = 6,
  Error = 7,
  /// Decision-outcome feedback for the canary evaluator: the realized
  /// energy/QoS of decisions this connection received. The server
  /// attributes the report to the connection's rollout arm.
  Report = 8,
  /// Acknowledges a Report: which arm it was credited to and the rollout
  /// state after evaluation (policy::RolloutState as u8).
  ReportAck = 9,
};

const char* msg_type_name(MsgType type);

/// Response flag bits.
inline constexpr std::uint16_t kRespSafeDefault = 1u << 0;  ///< shed/timeout
inline constexpr std::uint16_t kRespCacheHit = 1u << 1;
/// Decision was made by the canary candidate policy, not the incumbent.
inline constexpr std::uint16_t kRespCanary = 1u << 2;

/// Error codes carried by Error messages.
enum class WireErrorCode : std::uint32_t {
  BadMessage = 1,  ///< malformed payload for the announced type
  BadAgent = 2,    ///< agent index out of range
  BadState = 3,    ///< state index out of range for the agent
};

struct QueryMsg {
  std::uint64_t request_id = 0;
  std::uint32_t agent = 0;
  std::uint64_t state = 0;
};

struct ResponseMsg {
  std::uint64_t request_id = 0;
  std::uint32_t action = 0;
  std::uint16_t flags = 0;
};

struct ErrorMsg {
  std::uint64_t request_id = 0;  ///< 0 when no request could be identified
  std::uint32_t code = 0;
  std::string message;
};

struct ReloadAckMsg {
  bool ok = false;
  std::string error;
};

struct ReportMsg {
  std::uint64_t request_id = 0;
  double energy_j = 0.0;
  double qos = 0.0;
};

struct ReportAckMsg {
  std::uint64_t request_id = 0;
  /// True when the report was credited to the candidate arm.
  bool candidate_arm = false;
  /// policy::RolloutState of the evaluator after this report.
  std::uint8_t rollout_state = 0;
};

// Encoders append one complete frame to `out` (sendable as-is).
void append_query(std::string& out, const QueryMsg& msg);
void append_response(std::string& out, const ResponseMsg& msg);
void append_ping(std::string& out, std::uint64_t token);
void append_pong(std::string& out, std::uint64_t token);
void append_reload(std::string& out);
void append_reload_ack(std::string& out, const ReloadAckMsg& msg);
void append_error(std::string& out, const ErrorMsg& msg);
void append_report(std::string& out, const ReportMsg& msg);
void append_report_ack(std::string& out, const ReportAckMsg& msg);

// Decoders parse the payload of an already-validated frame of the matching
// type; they return false on a payload that is too short or malformed (the
// frame CRC passed but the peer speaks a different message revision).
bool parse_query(const util::Frame& frame, QueryMsg& msg);
bool parse_response(const util::Frame& frame, ResponseMsg& msg);
bool parse_ping(const util::Frame& frame, std::uint64_t& token);
bool parse_pong(const util::Frame& frame, std::uint64_t& token);
bool parse_reload_ack(const util::Frame& frame, ReloadAckMsg& msg);
bool parse_error(const util::Frame& frame, ErrorMsg& msg);
bool parse_report(const util::Frame& frame, ReportMsg& msg);
bool parse_report_ack(const util::Frame& frame, ReportAckMsg& msg);

}  // namespace pmrl::serve
