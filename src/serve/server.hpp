#pragma once
// PolicyServer: the networked policy-decision service. Exposes a trained
// (frozen) RlGovernor's greedy policy over Unix-domain and/or TCP sockets
// using the CRC-32-framed wire protocol in serve/wire.hpp.
//
// Architecture (one process):
//
//   poll() acceptor thread                worker pool (runfarm ThreadPool)
//   ----------------------                --------------------------------
//   accept / read / frame-decode   -->    bounded request queue
//   validate Query, enqueue        -->    micro-batch pop (flush on
//   shed on full queue (safe           batch_max or batch_deadline)
//   default, never a drop)             cache probe -> Q-table argmax
//   Ping/Reload control inline         response write (per-conn mutex)
//
// Robustness semantics mirror the watchdog's graceful-degradation stance:
// the service degrades instead of failing. A full queue or an expired
// per-request deadline answers with the safe-default action (all-hold,
// the same tie/fresh-table resolution the agents use) and the
// kRespSafeDefault flag — the client always gets a usable decision and
// the connection never drops. Corrupt frames (bad magic/version/length/
// CRC) close only the offending connection: a stream that lost framing
// cannot be resynchronized safely.
//
// Hot reload: request_reload() (wired to SIGHUP by `pmrl_cli serve`) or a
// Reload control frame re-runs try_load_policy on the configured
// checkpoint path into a staging governor; only a fully validated
// checkpoint is swapped in (under a writer lock), and the decision cache
// is cleared at the swap point so no stale action survives the reload.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runfarm/thread_pool.hpp"
#include "rl/rl_governor.hpp"
#include "serve/cache.hpp"
#include "serve/wire.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace pmrl::obs

namespace pmrl::serve {

struct ServerConfig {
  /// Unix-domain socket path (empty = no UDS listener). An existing socket
  /// file at the path is replaced.
  std::string uds_path;
  /// Enables the TCP listener on 127.0.0.1. Port 0 binds an ephemeral port
  /// (read it back with PolicyServer::tcp_port()).
  bool tcp_enable = false;
  std::uint16_t tcp_port = 0;

  /// Decision worker threads (the runfarm ThreadPool size).
  std::size_t workers = 4;
  /// Micro-batch flush thresholds: a batch closes when it holds batch_max
  /// requests or batch_deadline has passed since its first request was
  /// popped, whichever comes first.
  std::size_t batch_max = 32;
  std::chrono::microseconds batch_deadline{200};
  /// Bounded request queue; a Query arriving on a full queue is shed
  /// (answered immediately with the safe-default action).
  std::size_t queue_capacity = 1024;
  /// Requests older than this when a worker picks them up are answered
  /// with the safe-default action instead of a stale decision.
  std::chrono::milliseconds request_timeout{50};
  /// LRU decision cache entries (0 disables caching).
  std::size_t cache_capacity = 4096;

  /// Policy checkpoint path; loaded at start() and on every reload. Empty
  /// serves the freshly constructed (or externally seeded) governor and
  /// makes reload a no-op failure.
  std::string policy_path;
  /// Governor shape served; must match the checkpoint's.
  rl::RlGovernorConfig governor;
  std::size_t cluster_count = 2;

  /// Artificial per-batch processing delay. 0 in production; the overload
  /// bench uses it to pin the service rate below the offered load so
  /// shedding behaviour is measured deterministically.
  std::chrono::microseconds batch_process_delay{0};
};

class PolicyServer {
 public:
  explicit PolicyServer(ServerConfig config);
  ~PolicyServer();
  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Binds the listeners, loads the checkpoint (when configured), and
  /// starts the acceptor thread and worker pool. Throws std::runtime_error
  /// on bind/listen failure.
  void start();

  /// Stops accepting, wakes the workers, joins everything. Idempotent.
  void stop();

  bool running() const { return running_; }

  /// Bound TCP port (after start(), when tcp_enable).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }
  const ServerConfig& config() const { return config_; }

  /// Re-runs try_load_policy(policy_path) into a staging governor and, on
  /// success, swaps it in and clears the decision cache. Thread-safe;
  /// returns false (with the parse error in `error` when non-null) on any
  /// rejection — the serving governor is untouched.
  bool request_reload(std::string* error = nullptr);

  /// Drain control for tests and maintenance: paused workers stop popping
  /// the queue (arrivals still enqueue, then shed once the queue fills).
  void pause_workers();
  void resume_workers();

  /// The currently serving governor. Mutate only before start() (tests
  /// seed Q-values through this); after start() workers read it
  /// concurrently.
  rl::RlGovernor& governor() { return *governor_; }

  /// Attach observability before start(). The trace sink receives one
  /// HwInvoke-style event per processed batch (server-side latency and
  /// batch size); access is serialized internally.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Decisions served since start (responses of any kind).
  std::uint64_t responses() const {
    return responses_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct Pending;

  void acceptor_loop();
  void worker_loop();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const util::Frame& frame);
  void enqueue_or_shed(const std::shared_ptr<Connection>& conn,
                       const QueryMsg& query);
  void process_batch(std::vector<Pending>& batch);
  void respond(const std::shared_ptr<Connection>& conn,
               const ResponseMsg& msg);
  void send_bytes(const std::shared_ptr<Connection>& conn,
                  const std::string& bytes);
  std::uint32_t safe_default_action() const { return safe_action_; }
  std::uint32_t decide(std::uint32_t agent, std::uint64_t state,
                       std::uint16_t& flags);
  void emit_batch_trace(std::size_t batch_size, double latency_s,
                        std::uint64_t first_state, std::uint32_t first_action);

  ServerConfig config_;
  std::unique_ptr<rl::RlGovernor> governor_;
  /// Guards governor_ swap on hot-reload; workers take it shared per batch.
  std::shared_mutex governor_mutex_;
  std::mutex reload_mutex_;
  DecisionCache cache_;
  std::size_t agent_count_ = 0;
  std::size_t states_per_agent_ = 0;
  std::uint32_t safe_action_ = 0;

  // Request queue.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool stopping_ = false;

  // Sockets (owned by the acceptor thread; connections shared with
  // workers holding in-flight requests).
  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_tcp_port_ = 0;
  std::thread acceptor_;
  std::unique_ptr<core::runfarm::ThreadPool> pool_;
  std::atomic<bool> running_{false};

  // Observability.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::mutex trace_mutex_;
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> batch_seq_{0};
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
  obs::Counter* cache_hit_counter_ = nullptr;
  obs::Counter* cache_miss_counter_ = nullptr;
  obs::Counter* wire_error_counter_ = nullptr;
  obs::Counter* reload_counter_ = nullptr;
  obs::Counter* connection_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace pmrl::serve
