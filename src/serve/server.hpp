#pragma once
// PolicyServer: the networked policy-decision service. Exposes a trained
// (frozen) RlGovernor's greedy policy over Unix-domain sockets, TCP, and
// a shared-memory ring transport, using the CRC-32-framed wire protocol
// in serve/wire.hpp.
//
// Architecture (one process, sharded — no global queue, no global locks
// on the hot path):
//
//   shard thread 0..W-1 (one poll loop each)     shm worker 0..S-1
//   -----------------------------------------    -------------------------
//   own TCP listener (SO_REUSEPORT: the          polls its subset of shm
//     kernel spreads connections over shards)      lanes (adaptive spin/
//   shared UDS listener (accept-raced,             sleep backoff)
//     non-blocking; EAGAIN losers move on)       same decide path
//   read -> frame-decode -> validate
//   enqueue on the shard's own pending deque
//     (shed on full: safe default, never a drop)
//   process inline: micro-batch -> per-worker
//     cache probe -> SIMD batched argmax
//     (rl/batch_argmax) -> responses coalesced
//     per connection (one send per conn per batch)
//
// Every worker (shard or shm) owns a private WorkerCache, so the hot path
// never touches a shared cache mutex. Hot-reload invalidation is a
// generation counter: request_reload() swaps the governor under the
// writer lock and bumps the generation; each worker reconciles at batch
// start while holding the reader lock, so a batch can never serve or
// re-fill pre-reload decisions.
//
// Robustness semantics mirror the watchdog's graceful-degradation stance:
// the service degrades instead of failing. A full pending queue (bounded
// per shard) or an expired per-request deadline answers with the
// safe-default action (all-hold) and the kRespSafeDefault flag — the
// client always gets a usable decision and the connection never drops.
// Corrupt frames (bad magic/version/length/CRC) close only the offending
// connection — or poison only the offending shm lane: a stream that lost
// framing cannot be resynchronized safely.
//
// Hot reload: request_reload() (wired to SIGHUP by `pmrl_cli serve`) or a
// Reload control frame re-runs try_load_policy on the configured
// checkpoint path into a staging governor; only a fully validated
// checkpoint is swapped in (under the writer lock), and the cache
// generation is bumped at the swap point so no stale action survives the
// reload.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "policy/rollout.hpp"
#include "rl/rl_governor.hpp"
#include "serve/cache.hpp"
#include "serve/shm_ring.hpp"
#include "serve/wire.hpp"

namespace pmrl::policy {
class PolicyRegistry;
}  // namespace pmrl::policy

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace pmrl::obs

namespace pmrl::serve {

struct ServerConfig {
  /// Unix-domain socket path (empty = no UDS listener). An existing socket
  /// file at the path is replaced.
  std::string uds_path;
  /// Enables the TCP listeners on 127.0.0.1 (one SO_REUSEPORT socket per
  /// shard). Port 0 binds an ephemeral port (read it back with
  /// PolicyServer::tcp_port()).
  bool tcp_enable = false;
  std::uint16_t tcp_port = 0;

  /// Shared-memory transport: path of a mappable file (empty = disabled;
  /// put it on /dev/shm for a memory-only segment). Created at start(),
  /// unlinked at stop().
  std::string shm_path;
  /// Client lanes in the shm segment.
  std::size_t shm_lanes = 4;
  /// Ring capacity per direction per lane (power of two, >= 128 KiB).
  std::size_t shm_ring_bytes = 1 << 20;
  /// Threads polling the shm lanes (each owns lane_index % shm_workers).
  std::size_t shm_workers = 1;

  /// Shard threads: each runs its own accept/read/decide poll loop.
  std::size_t workers = 4;
  /// Max requests decided per governor-lock acquisition. A shard batches
  /// whatever its sockets had in flight, capped at this.
  std::size_t batch_max = 32;
  /// Legacy knob from the queued design, kept for config compatibility.
  /// Sharded processing batches what is already in flight without
  /// waiting, so no artificial deadline latency remains to bound.
  std::chrono::microseconds batch_deadline{200};
  /// Bounded pending queue per shard; a Query arriving on a full queue is
  /// shed (answered immediately with the safe-default action).
  std::size_t queue_capacity = 1024;
  /// Requests older than this when processed are answered with the
  /// safe-default action instead of a stale decision.
  std::chrono::milliseconds request_timeout{50};
  /// LRU decision cache entries per worker (0 disables caching).
  std::size_t cache_capacity = 4096;

  /// Policy checkpoint path; loaded at start() and on every reload. Empty
  /// serves the freshly constructed (or externally seeded) governor and
  /// makes reload a no-op failure.
  std::string policy_path;
  /// Governor shape served; must match the checkpoint's.
  rl::RlGovernorConfig governor;
  std::size_t cluster_count = 2;

  /// Artificial per-batch processing delay. 0 in production; the overload
  /// bench uses it to pin the service rate below the offered load so
  /// shedding behaviour is measured deterministically.
  std::chrono::microseconds batch_process_delay{0};

  // ---- canary rollout -----------------------------------------------------
  /// Policy registry directory (empty = no registry). With a registry and
  /// an empty policy_path, the incumbent loads from the registry's CURRENT
  /// pointer; with rollout.canary_pct > 0 a candidate is staged from the
  /// registry at start() and on every reload (SIGHUP).
  std::string registry_dir;
  /// Registry version to canary; 0 picks the latest candidate entry.
  std::uint64_t candidate_version = 0;
  /// Canary evaluation knobs. canary_pct is the share of connections
  /// routed to the candidate via the deterministic per-connection hash.
  policy::RolloutConfig rollout;
};

class PolicyServer {
 public:
  explicit PolicyServer(ServerConfig config);
  ~PolicyServer();
  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Binds the listeners, loads the checkpoint (when configured), maps the
  /// shm segment (when configured), and starts the shard and shm worker
  /// threads. Throws std::runtime_error on bind/listen/map failure.
  void start();

  /// Stops accepting, wakes every shard, joins everything. Idempotent.
  void stop();

  bool running() const { return running_; }

  /// Bound TCP port (after start(), when tcp_enable).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }
  const ServerConfig& config() const { return config_; }

  /// Re-runs try_load_policy(policy_path) into a staging governor and, on
  /// success, swaps it in and bumps the cache generation (worker caches
  /// invalidate on their next batch). Thread-safe; returns false (with
  /// the parse error in `error` when non-null) on any rejection — the
  /// serving governor is untouched.
  bool request_reload(std::string* error = nullptr);

  /// Drain control for tests and maintenance: paused workers keep
  /// reading and shedding but stop deciding (arrivals still enqueue,
  /// then shed once a shard's queue fills).
  void pause_workers();
  void resume_workers();

  /// The currently serving governor. Mutate only before start() (tests
  /// seed Q-values through this); after start() workers read it
  /// concurrently.
  rl::RlGovernor& governor() { return *governor_; }

  /// Stages a candidate governor (already loaded + frozen) for canary
  /// serving and starts the rollout evaluator. Thread-safe; replaces any
  /// candidate already staged. Used by tests and the registry path.
  void stage_candidate(std::unique_ptr<rl::RlGovernor> candidate,
                       std::uint64_t version);

  /// Canary state (all readable while serving).
  bool candidate_active() const {
    return candidate_active_.load(std::memory_order_acquire);
  }
  std::uint64_t candidate_version() const {
    return candidate_version_.load(std::memory_order_acquire);
  }
  policy::RolloutState rollout_state() const {
    return static_cast<policy::RolloutState>(
        rollout_state_.load(std::memory_order_acquire));
  }
  std::uint64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }

  /// Attach observability before start(). The trace sink receives one
  /// HwInvoke-style event per processed batch (server-side latency and
  /// batch size); access is serialized internally.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Decisions served since start (responses of any kind).
  std::uint64_t responses() const {
    return responses_.load(std::memory_order_relaxed);
  }

  /// Reload-invalidation generation (each successful reload bumps it).
  std::uint64_t cache_generation() const {
    return cache_generation_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;
  struct Pending;
  struct Worker;
  struct Shard;
  struct ShmWorker;
  static constexpr std::uint32_t kNoLane = 0xFFFFFFFFu;

  void shard_loop(Shard& shard);
  bool stage_candidate_from_registry(std::string* error);
  void handle_report(Worker& worker,
                     const std::shared_ptr<Connection>& conn,
                     std::uint32_t lane, const util::Frame& frame);
  void finish_rollout(policy::RolloutDecision decision);
  void emit_rollout_trace(const char* what, std::uint64_t version);
  void shm_loop(ShmWorker& worker);
  void handle_readable(Worker& worker,
                       const std::shared_ptr<Connection>& conn);
  void handle_frame(Worker& worker, const std::shared_ptr<Connection>& conn,
                    std::uint32_t lane, const util::Frame& frame);
  void enqueue_or_shed(Worker& worker,
                       const std::shared_ptr<Connection>& conn,
                       std::uint32_t lane, const QueryMsg& query);
  void process_pending(Worker& worker);
  void process_batch(Worker& worker);
  void send_to(const std::shared_ptr<Connection>& conn, std::uint32_t lane,
               const std::string& bytes);
  void send_bytes(const std::shared_ptr<Connection>& conn,
                  const std::string& bytes);
  void send_lane(std::uint32_t lane, const std::string& bytes);
  std::uint32_t safe_default_action() const { return safe_action_; }
  void emit_batch_trace(std::size_t batch_size, double latency_s,
                        std::uint64_t first_state, std::uint32_t first_action);
  void note_queue_depth(std::ptrdiff_t delta);

  ServerConfig config_;
  std::unique_ptr<rl::RlGovernor> governor_;
  /// Canary candidate; swapped only under the governor writer lock, read
  /// under the shared lock in process_batch.
  std::unique_ptr<rl::RlGovernor> candidate_;
  std::unique_ptr<policy::PolicyRegistry> registry_;
  /// Canary evaluator; guarded by rollout_mutex_, state mirrored in the
  /// atomics below for lock-free reads.
  policy::RolloutController rollout_;
  std::mutex rollout_mutex_;
  std::atomic<bool> candidate_active_{false};
  std::atomic<std::uint64_t> candidate_version_{0};
  std::atomic<std::uint8_t> rollout_state_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
  std::atomic<std::uint64_t> promotions_{0};
  /// Accept-order sequence: the deterministic per-connection route key.
  std::atomic<std::uint64_t> conn_seq_{0};
  /// Guards governor_ swap on hot-reload; workers take it shared per batch.
  std::shared_mutex governor_mutex_;
  std::mutex reload_mutex_;
  /// Bumped (under the governor writer lock) on every successful reload;
  /// worker caches reconcile against it at batch start.
  std::atomic<std::uint64_t> cache_generation_{0};
  std::size_t agent_count_ = 0;
  std::size_t states_per_agent_ = 0;
  std::uint32_t safe_action_ = 0;

  std::atomic<bool> paused_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> queued_total_{0};

  // Listeners. The UDS listen fd is shared by every shard (accept-raced);
  // TCP listeners are per shard (SO_REUSEPORT) and live in the Shard.
  int uds_listen_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShmWorker>> shm_workers_;
  std::unique_ptr<ShmSegment> shm_;
  std::atomic<bool> running_{false};

  // Observability.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::mutex trace_mutex_;
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> batch_seq_{0};
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
  obs::Counter* cache_hit_counter_ = nullptr;
  obs::Counter* cache_miss_counter_ = nullptr;
  obs::Counter* wire_error_counter_ = nullptr;
  obs::Counter* reload_counter_ = nullptr;
  obs::Counter* connection_counter_ = nullptr;
  obs::Counter* report_counter_[2] = {nullptr, nullptr};
  obs::Counter* rollback_counter_ = nullptr;
  obs::Counter* promote_counter_ = nullptr;
  obs::Gauge* arm_epq_gauge_[2] = {nullptr, nullptr};
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace pmrl::serve
