#pragma once
// Shared fleet power-management policy: one frozen tabular Q function over
// the compact (hot, util-bin, freq-bin) state space every device observes,
// evaluated greedily for the whole fleet each decision epoch. This is the
// deployment-side counterpart of the single-SoC RL governor — the fleet
// layer studies a *trained* policy at population scale, so the table is
// fixed for a run (loaded from a trained agent or the built-in heuristic
// initialization).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fleet/device_model.hpp"

namespace pmrl::fleet {

/// Frozen per-state action-value table, row-major [state][action], with the
/// same "when indifferent, step down" action bias the RL governor uses.
class FleetPolicy {
 public:
  /// Zero-initialized table (greedy picks kActionDown everywhere until the
  /// values are filled in).
  FleetPolicy();

  /// Heuristic race-to-idle-flavored policy: step up when utilization is
  /// high for the current relative OPP (harder when hot is false), step
  /// down when utilization is low or the die is hot. Seeded so fleets can
  /// run meaningful population studies without a training phase.
  static FleetPolicy default_policy();

  double q(std::uint32_t state, std::uint32_t action) const {
    return table_[state * kActionCount + action];
  }
  void set_q(std::uint32_t state, std::uint32_t action, double value) {
    table_[state * kActionCount + action] = value;
  }

  /// Greedy action for one state: argmax over q(s,a) + bias[a], strict >
  /// so ties break toward the lowest action index (matches rl::QTable and
  /// the batch kernels).
  std::uint32_t greedy(std::uint32_t state) const;

  /// Greedy actions for a batch of states via the SIMD argmax kernel
  /// (rl::batch_argmax_f64); bit-identical to calling greedy() per state.
  void greedy_batch(const std::uint64_t* states, std::size_t count,
                    std::uint32_t* actions) const;

  /// Greedy action restricted to the first `allowed` actions (the DVFS
  /// actions are power-ordered down < hold < up, so a power cap admits a
  /// prefix). greedy_allowed(s, kActionCount) == greedy(s).
  std::uint32_t greedy_allowed(std::uint32_t state,
                               std::uint32_t allowed) const;

  const double* data() const { return table_.data(); }
  const std::vector<double>& bias() const { return bias_; }

 private:
  std::vector<double> table_;  ///< kStateCount x kActionCount
  std::vector<double> bias_;   ///< kActionCount
};

}  // namespace pmrl::fleet
