#include "fleet/policy.hpp"

#include "rl/batch_argmax.hpp"

namespace pmrl::fleet {

FleetPolicy::FleetPolicy()
    : table_(kStateCount * kActionCount, 0.0),
      // Energy-order prior, same shape as the RL governor's DVFS bias:
      // when indifferent prefer down, then hold, then up.
      bias_{0.02, 0.01, 0.0} {}

FleetPolicy FleetPolicy::default_policy() {
  FleetPolicy p;
  for (std::uint32_t hot = 0; hot < kTempBins; ++hot) {
    for (std::uint32_t u = 0; u < kUtilBins; ++u) {
      for (std::uint32_t f = 0; f < kFreqBins; ++f) {
        const std::uint32_t s = (hot * kUtilBins + u) * kFreqBins + f;
        const double util_mid =
            (static_cast<double>(u) + 0.5) / static_cast<double>(kUtilBins);
        // Headroom pressure: positive when the cluster runs hotter than
        // ~80% busy at its current relative OPP, negative when there is
        // slack to shed.
        const double pressure = util_mid - 0.8;
        const double freq_frac =
            static_cast<double>(f) / static_cast<double>(kFreqBins - 1);
        // A hot die discounts the value of going faster and rewards
        // backing off (the throttle would claw the speed back anyway).
        const double hot_penalty = hot ? 0.6 : 0.0;
        p.set_q(s, kActionUp, pressure - 0.1 * freq_frac - hot_penalty);
        p.set_q(s, kActionHold, 0.0);
        p.set_q(s, kActionDown, -pressure - 0.05 + 0.2 * hot_penalty);
      }
    }
  }
  return p;
}

std::uint32_t FleetPolicy::greedy(std::uint32_t state) const {
  const double* row = table_.data() + state * kActionCount;
  std::uint32_t best = 0;
  double best_value = row[0] + bias_[0];
  for (std::uint32_t a = 1; a < kActionCount; ++a) {
    const double v = row[a] + bias_[a];
    if (v > best_value) {
      best_value = v;
      best = a;
    }
  }
  return best;
}

void FleetPolicy::greedy_batch(const std::uint64_t* states, std::size_t count,
                               std::uint32_t* actions) const {
  rl::batch_argmax_f64(table_.data(), kActionCount, bias_.data(), states,
                       count, actions);
}

std::uint32_t FleetPolicy::greedy_allowed(std::uint32_t state,
                                          std::uint32_t allowed) const {
  return rl::argmax_prefix_f64(table_.data() + state * kActionCount,
                               bias_.data(), allowed);
}

}  // namespace pmrl::fleet
