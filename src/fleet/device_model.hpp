#pragma once
// Fleet device model: the lightweight per-phone simulation the fleet layer
// advances by the hundred thousand. A device is a 1-2 cluster DVFS phone —
// OPP tables, switching + leakage power, first-order RC thermal node with a
// throttle, battery drain, and a utilization-demand workload — whose
// parameters are seeded variations over the same `soc/` config types the
// full SimEngine uses (opp tables, CorePowerParams, ThermalNodeParams,
// UncorePowerParams, ThrottleConfig).
//
// Every piece of per-tick and per-epoch arithmetic lives here as inline
// functions over scalars. Both executors — the AoS per-device DeviceEngine
// (one engine object per device, the SimEngine-shaped baseline) and the SoA
// FleetEngine block sweep — call exactly these functions in exactly this
// order, which is what makes their outputs bit-identical: the SoA engine is
// a *layout and scheduling* optimization, never a numerical one.
//
// Time model (mirrors core::EngineConfig at coarser defaults): fixed tick
// dt; a decision epoch every K ticks. Workload demand, the leakage
// temperature factor, and therefore cluster power are sampled-and-held at
// epoch boundaries; within an epoch only the utilization EWMA, the thermal
// RC node, energy, and battery integrate per tick.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "budget/budget_tree.hpp"

namespace pmrl::fleet {

/// Device cluster-slot ceiling. Single-cluster devices carry an inert
/// second slot (zero demand, zero power terms) so every sweep is uniform
/// and branch-free; the inert slot contributes exactly 0 to every result.
inline constexpr std::size_t kMaxClusters = 2;

// ---- Fleet policy state space ---------------------------------------------
// state = (hot? , utilization bin, relative-OPP bin); 3 actions (step the
// OPP down / hold / step up) shared by every device regardless of its
// table length — the per-archetype opp_freq_bin[] maps a table index onto
// the common kFreqBins axis.
inline constexpr std::size_t kUtilBins = 8;
inline constexpr std::size_t kFreqBins = 6;
inline constexpr std::size_t kTempBins = 2;
inline constexpr std::size_t kStateCount = kTempBins * kUtilBins * kFreqBins;
inline constexpr std::size_t kActionCount = 3;
inline constexpr std::uint32_t kActionDown = 0;
inline constexpr std::uint32_t kActionHold = 1;
inline constexpr std::uint32_t kActionUp = 2;
/// Die temperature (C) above which the policy sees the "hot" state half.
inline constexpr double kHotTempC = 70.0;

// ---- Stateless hashing -----------------------------------------------------
// Per-(device, epoch, cluster) draws use a SplitMix64 finalizer over a pure
// function of the identifiers, never a mutable stream. This is the fleet
// application of the farm's RNG-stream isolation rule: a device's draws
// depend only on (fleet seed, device index, epoch, cluster), so any block
// partition and any --jobs count replays the identical sequence.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash word (53 mantissa bits).
inline double unit_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// ---- Configuration types ---------------------------------------------------

/// One cluster of a device archetype (a phone *model*, shared read-only by
/// every device instance of that model): the OPP-indexed power/frequency
/// tables plus the scalar electrical/throttle constants. Derived from
/// soc::OppTable x soc::CorePowerParams x soc::ThrottleConfig.
struct ArchetypeCluster {
  /// Per-OPP frequency (Hz).
  std::vector<double> opp_freq_hz;
  /// Per-OPP capacity: freq / max freq of this table, in (0, 1].
  std::vector<double> opp_cap;
  /// Per-OPP cluster-level dynamic watts at activity 1.0
  /// (cores * c_eff * V^2 * f, via soc::CorePowerModel::opp_terms).
  std::vector<double> opp_dyn_w;
  /// Per-OPP cluster-level leakage watts at temperature factor 1.0.
  std::vector<double> opp_leak_w;
  /// Per-OPP bin on the policy's common kFreqBins axis.
  std::vector<std::uint8_t> opp_freq_bin;
  double idle_activity = 0.05;
  /// Quadratic leakage-vs-temperature coefficient (see leak_temp_factor).
  double leak_temp_coeff = 0.03;
  double leak_ref_temp_c = 25.0;
  double trip_temp_c = 95.0;
  double clear_temp_c = 85.0;
  std::uint32_t throttle_cap_index = 0;
  std::uint32_t opp_count = 1;
  /// False for the inert slot of single-cluster devices.
  bool active = false;
};

/// A phone model. Fleets instantiate many devices per archetype (like real
/// fleets: dozens of SKUs, millions of handsets), so the OPP-indexed tables
/// are shared and the per-device state stays a few flat scalars.
struct Archetype {
  std::array<ArchetypeCluster, kMaxClusters> clusters;
  std::size_t cluster_count = 1;
  double uncore_static_w = 0.25;
  /// Extra watts per unit of served capacity (DRAM traffic proxy).
  double uncore_dyn_w = 0.35;
};

/// Per-device, per-cluster seeded variation.
struct DeviceClusterSpec {
  /// First-order RC thermal node to ambient (soc::ThermalNodeParams shape).
  /// The per-tick decay exp(-dt / (r_th * c_th)) is derived by each engine
  /// from the configured tick — the same expression on the same inputs, so
  /// both engines hold bit-identical decay factors.
  double r_th_k_per_w = 4.0;
  double c_th_j_per_k = 1.0;
  double initial_temp_c = 25.0;
  /// Workload demand process: base + amp * triangle(period, phase) +
  /// jitter * noise, clamped to [0, kDemandMax].
  double demand_base = 0.0;
  double demand_amp = 0.0;
  double demand_jitter = 0.0;
  std::uint32_t demand_period_epochs = 16;
  std::uint32_t demand_phase = 0;
  std::uint32_t initial_opp = 0;
  double initial_util = 0.0;
};

/// One device instance: archetype reference + seeded scalar variation.
struct DeviceSpec {
  std::uint32_t archetype = 0;
  /// Stateless-draw key (see mix64 note above).
  std::uint64_t seed = 0;
  double ambient_c = 25.0;
  /// Battery capacity and initial charge, joules.
  double battery_capacity_j = 0.0;
  double battery_initial_j = 0.0;
  std::array<DeviceClusterSpec, kMaxClusters> clusters;
};

/// Demand ceiling: devices can ask for slightly more than the cluster's
/// max-frequency capacity (1.0), which is what makes QoS violations and the
/// up-shift pressure real.
inline constexpr double kDemandMax = 1.05;
/// An epoch violates QoS when served capacity falls below this fraction of
/// demanded capacity.
inline constexpr double kQosSlack = 0.95;
/// Utilization EWMA time constant (s) — PELT-ish smoothing of the busy
/// fraction.
inline constexpr double kUtilTauS = 0.1;

// ---- Shared arithmetic (the bit-identity contract) ------------------------

/// Leakage temperature factor exp(k * (T - Tref)), identical to
/// soc::CorePowerModel::temp_factor. The full SoC model pays this exp once
/// per cluster per *tick*; the fleet model samples-and-holds it at decision
/// epochs, so the transcendental runs an order of magnitude less often.
inline double leak_temp_factor(double coeff, double temp_c, double ref_c) {
  return std::exp(coeff * (temp_c - ref_c));
}

/// Workload demand for `epoch` on one cluster: deterministic triangle wave
/// plus hash noise, a pure function of (spec, device seed, epoch, cluster).
/// Demand for a known phase position `pos` = (epoch + demand_phase) %
/// demand_period_epochs. Callers that sweep epochs sequentially (the SoA
/// engine) maintain `pos` incrementally and skip the 64-bit modulo;
/// epoch_demand() below computes it directly. Both paths see the same
/// integer, hence the same double.
inline double epoch_demand_at(const DeviceClusterSpec& spec,
                              std::uint64_t device_seed, std::uint64_t epoch,
                              std::size_t cluster, std::uint64_t pos) {
  const std::uint64_t period = spec.demand_period_epochs;
  const double tri =
      1.0 - 2.0 * std::abs(2.0 * (static_cast<double>(pos) /
                                  static_cast<double>(period)) -
                           1.0);  // triangle in [-1, 1]
  const double noise =
      2.0 * unit_from(mix64(device_seed ^ (epoch * 0x9e3779b97f4a7c15ULL) ^
                            (cluster * 0xbf58476d1ce4e5b9ULL))) -
      1.0;
  const double d =
      spec.demand_base + spec.demand_amp * tri + spec.demand_jitter * noise;
  return std::clamp(d, 0.0, kDemandMax);
}

inline double epoch_demand(const DeviceClusterSpec& spec,
                           std::uint64_t device_seed, std::uint64_t epoch,
                           std::size_t cluster) {
  const std::uint64_t pos =
      (epoch + spec.demand_phase) % spec.demand_period_epochs;
  return epoch_demand_at(spec, device_seed, epoch, cluster, pos);
}

/// Epoch-rate quantities of one cluster, derived once per epoch (SoA) or
/// re-derived per tick (the engine-faithful AoS baseline, which evaluates
/// its power model every tick exactly like soc::Soc::step does). Both
/// produce identical values because every input is epoch-constant.
struct ClusterEpochDerived {
  double busy = 0.0;         ///< busy fraction of the interval, [0, 1]
  double served_rate = 0.0;  ///< delivered capacity units per second
  double power_w = 0.0;      ///< cluster power at the held temp factor
  double t_target_c = 0.0;   ///< RC steady-state temperature
};

inline ClusterEpochDerived derive_cluster_epoch(const ArchetypeCluster& arch,
                                                std::uint32_t opp,
                                                double demand,
                                                double held_temp_factor,
                                                double ambient_c,
                                                double r_th_k_per_w) {
  ClusterEpochDerived d;
  const double cap = arch.opp_cap[opp];
  d.busy = std::min(1.0, demand / cap);
  d.served_rate = std::min(demand, cap);
  const double activity =
      arch.idle_activity + (1.0 - arch.idle_activity) * d.busy;
  d.power_w = arch.opp_dyn_w[opp] * activity +
              arch.opp_leak_w[opp] * held_temp_factor;
  d.t_target_c = ambient_c + d.power_w * r_th_k_per_w;
  return d;
}

/// One tick of the cluster integrators: utilization EWMA toward the busy
/// fraction, exact-exponential RC step toward the thermal target.
inline void tick_cluster(double& util, double& temp_c, double busy,
                         double t_target_c, double util_decay,
                         double temp_decay) {
  util = busy + (util - busy) * util_decay;
  temp_c = t_target_c + (temp_c - t_target_c) * temp_decay;
}

/// One tick of the device-level energy/battery integrators.
inline void tick_device_energy(double& energy_j, double& battery_j,
                               double power_w, double dt_s) {
  const double e = power_w * dt_s;
  energy_j += e;
  battery_j = std::max(0.0, battery_j - e);
}

/// Policy state index from the cluster observation.
inline std::uint32_t cluster_state(double util, double temp_c,
                                   std::uint8_t freq_bin) {
  const auto util_bin = std::min<std::uint32_t>(
      kUtilBins - 1,
      static_cast<std::uint32_t>(util * static_cast<double>(kUtilBins)));
  const std::uint32_t hot = temp_c >= kHotTempC ? 1 : 0;
  return (hot * kUtilBins + util_bin) * kFreqBins + freq_bin;
}

/// Throttle hysteresis (soc::ThrottleConfig semantics).
inline bool update_throttle(bool throttled, double temp_c, double trip_c,
                            double clear_c) {
  if (temp_c >= trip_c) return true;
  if (temp_c <= clear_c) return false;
  return throttled;
}

/// Applies a policy action to the OPP index, then the throttle cap.
inline std::uint32_t apply_action(std::uint32_t opp, std::uint32_t action,
                                  const ArchetypeCluster& arch,
                                  bool throttled) {
  if (action == kActionDown) {
    if (opp > 0) --opp;
  } else if (action == kActionUp) {
    if (opp + 1 < arch.opp_count) ++opp;
  }
  if (throttled) opp = std::min(opp, arch.throttle_cap_index);
  return opp;
}

// ---- Fleet-level configuration --------------------------------------------

struct FleetConfig {
  /// Devices to instantiate.
  std::size_t devices = 100000;
  /// Master seed: archetypes, device specs, and every runtime draw derive
  /// from it.
  std::uint64_t seed = 1;
  /// Distinct phone models the fleet is drawn from.
  std::size_t archetypes = 32;
  /// Simulation tick (s). Coarser than the single-SoC engine's 1 ms — the
  /// fleet layer studies population dynamics, not scheduler microstructure.
  double tick_s = 0.01;
  /// Decision epoch (s); must be >= tick_s.
  double decision_period_s = 0.1;
  /// Simulated duration (s).
  double duration_s = 10.0;
  /// Devices per SoA block (= per farm task). Blocks are the unit of
  /// sharding and of cache-friendly sweeping.
  std::size_t block_size = 4096;
  /// Worker threads (0 = runfarm default_jobs(), 1 = serial inline).
  std::size_t jobs = 1;
  /// Capture per-device outcomes (golden-equivalence tests; sized
  /// devices * ~100 B).
  bool record_devices = false;
  /// Capture the per-epoch fleet aggregate series (CLI --trace).
  bool record_epochs = false;
  /// Hierarchical power budget (budget.enabled() turns on the budgeted,
  /// epoch-major execution path; see src/budget and DESIGN.md §12).
  budget::BudgetSpec budget;
};

/// Derived timing: tick count per epoch and epoch count, resolved the same
/// way for both executors.
struct FleetTiming {
  double tick_s = 0.01;
  std::size_t ticks_per_epoch = 10;
  std::size_t epochs = 100;
  double util_decay = 0.0;  ///< exp(-tick / kUtilTauS)
  double epoch_s = 0.1;     ///< ticks_per_epoch * tick_s
};

FleetTiming resolve_timing(const FleetConfig& config);

/// Builds `n` archetypes by seeded variation over the soc/ config types
/// (big/LITTLE OPP tables via soc::scaled_opps, core power params, throttle
/// and uncore defaults).
std::vector<Archetype> make_archetypes(std::size_t n, std::uint64_t seed);

/// Builds per-device specs: archetype assignment plus thermal / battery /
/// workload variation. Device i's spec depends only on (seed, i).
std::vector<DeviceSpec> make_device_specs(const std::vector<Archetype>& archs,
                                          std::size_t devices,
                                          std::uint64_t seed);

}  // namespace pmrl::fleet
