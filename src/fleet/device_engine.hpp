#pragma once
// AoS per-device reference executor: one engine object per phone, advanced
// tick by tick exactly like the single-SoC SimEngine advances its Soc — the
// power model is evaluated every tick, state lives in a heap-allocated
// per-object cluster vector, decisions are taken one state at a time. This
// is both the golden reference the SoA FleetEngine must match bit-for-bit
// and the baseline bench_fleet measures the SoA speedup against.

#include <cstdint>
#include <vector>

#include "fleet/device_model.hpp"
#include "fleet/policy.hpp"

namespace pmrl::fleet {

/// End-of-run observables of one device. Equality across executors is the
/// golden-equivalence contract: every field must match bit-for-bit.
struct DeviceOutcome {
  double energy_j = 0.0;
  /// Integrated served / demanded capacity (capacity-seconds).
  double served = 0.0;
  double demand = 0.0;
  /// Epochs where served < demand * kQosSlack.
  std::uint32_t violations = 0;
  double battery_j = 0.0;
  std::array<double, kMaxClusters> util{};
  std::array<double, kMaxClusters> temp_c{};
  std::array<std::uint32_t, kMaxClusters> opp{};

  bool operator==(const DeviceOutcome&) const = default;

  /// Joules per delivered capacity-second — the fleet's energy-per-QoS
  /// figure of merit (histogrammed across devices).
  double energy_per_served() const {
    return energy_j / (served > 1e-9 ? served : 1e-9);
  }
};

/// One simulated phone, advanced epoch by epoch.
class DeviceEngine {
 public:
  DeviceEngine(const Archetype& archetype, const DeviceSpec& spec,
               const FleetPolicy& policy, const FleetTiming& timing);

  /// Advances one decision epoch (ticks, QoS accounting, policy decision).
  void step_epoch();

  /// Runs epochs up to timing.epochs.
  void run();

  DeviceOutcome outcome() const;
  std::size_t epoch() const { return epoch_; }

 private:
  struct ClusterState {
    double util = 0.0;
    double temp_c = 25.0;
    double demand = 0.0;
    /// Leakage-temperature input, sampled at epoch start. The factor itself
    /// (an exp of this) is re-evaluated every tick, like soc::Cluster does.
    double held_temp_c = 25.0;
    std::uint32_t opp = 0;
    bool throttled = false;
  };

  const Archetype& archetype_;
  const DeviceSpec& spec_;
  const FleetPolicy& policy_;
  FleetTiming timing_;
  std::vector<ClusterState> clusters_;
  double energy_j_ = 0.0;
  double served_ = 0.0;
  double demand_ = 0.0;
  double battery_j_ = 0.0;
  std::uint32_t violations_ = 0;
  std::size_t epoch_ = 0;
};

}  // namespace pmrl::fleet
