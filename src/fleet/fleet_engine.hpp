#pragma once
// SoA fleet executor: advances 10^5..10^6 devices with struct-of-arrays
// state, cache-friendly block sweeps, batched SIMD action selection, and
// run-farm sharding. Produces results bit-identical to running one AoS
// DeviceEngine per device (see device_engine.hpp) at any --jobs count and
// any block size — the layout/scheduling is the optimization, never the
// arithmetic:
//
//  * State is flat arrays indexed [device * kMaxClusters + cluster] (fixed
//    stride; single-cluster devices carry an inert zero-power slot), so the
//    tick sweep streams contiguously instead of chasing one heap object per
//    device.
//  * Devices are swept in blocks of config.block_size: a block's working
//    set (~100 B/device) stays cache-resident while the block is advanced
//    through a whole epoch, and blocks are the unit of parallelism — each
//    block is one run-farm task (run_ordered), owning all of its mutable
//    state per the farm's RNG-stream isolation rule. Workload draws are
//    stateless hashes of (device seed, epoch, cluster), so any partition of
//    devices into blocks and any thread schedule replays identical draws.
//  * Everything epoch-constant (demand, leakage temp factor, cluster power,
//    thermal target, served rate) is derived once per epoch; the AoS
//    baseline re-derives it every tick like the full SimEngine does. Same
//    inputs, same expressions, same bits — roughly 10x less arithmetic.
//  * Decision epochs select actions for a whole block with the AVX2 batched
//    argmax (rl::batch_argmax_f64), bit-exact with the scalar policy scan.
//  * Aggregates (fleet energy, QoS, per-device energy-per-QoS histogram for
//    percentiles) are accumulated per block and merged in fixed block
//    order, so serial and parallel runs produce bit-identical totals.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fleet/device_engine.hpp"
#include "fleet/device_model.hpp"
#include "fleet/policy.hpp"

namespace pmrl::obs {
class MetricsRegistry;
}

namespace pmrl::fleet {

/// Fleet-wide aggregate for one decision epoch (--trace series).
struct FleetEpochPoint {
  double time_s = 0.0;
  double energy_j = 0.0;  ///< joules spent by the fleet during this epoch
  double served = 0.0;    ///< capacity-seconds delivered this epoch
  double demand = 0.0;    ///< capacity-seconds demanded this epoch
  std::uint64_t violations = 0;  ///< devices violating QoS this epoch
};

/// End-of-run fleet aggregates. Scalar totals are bit-identical across
/// --jobs values and block sizes.
struct FleetResult {
  std::size_t devices = 0;
  std::size_t epochs = 0;
  std::size_t ticks_per_epoch = 0;
  std::uint64_t device_ticks = 0;
  double energy_j = 0.0;
  double served = 0.0;
  double demand = 0.0;
  std::uint64_t violation_epochs = 0;  ///< device-epochs below QoS
  double violation_rate = 0.0;         ///< violation_epochs / device-epochs
  std::size_t battery_depleted = 0;    ///< devices that hit 0 J
  /// Distribution of per-device energy per delivered capacity-second.
  double energy_per_served_mean = 0.0;
  double energy_per_served_p50 = 0.0;
  double energy_per_served_p95 = 0.0;
  double energy_per_served_p99 = 0.0;
  /// Populated when config.record_devices / config.record_epochs.
  std::vector<DeviceOutcome> device_outcomes;
  std::vector<FleetEpochPoint> epoch_series;
};

/// Histogram bounds used for the energy-per-served distribution (geometric;
/// shared by every block so shard histograms merge).
std::vector<double> energy_per_served_bounds();

class FleetEngine {
 public:
  /// Builds archetypes, device specs, and the SoA state from the config.
  /// Throws std::invalid_argument on a zero-device or zero-block config.
  explicit FleetEngine(FleetConfig config,
                       FleetPolicy policy = FleetPolicy::default_policy());

  /// Runs the whole simulation. Re-runnable: state is re-seeded from the
  /// specs on every call, so repeated runs return identical results.
  FleetResult run();

  const FleetConfig& config() const { return config_; }
  const FleetTiming& timing() const { return timing_; }
  const std::vector<Archetype>& archetypes() const { return archetypes_; }
  const std::vector<DeviceSpec>& specs() const { return specs_; }
  const FleetPolicy& policy() const { return policy_; }
  /// Resolved worker count (config.jobs through runfarm::resolve_jobs).
  std::size_t jobs() const { return jobs_; }

  /// Optional instrumentation (fleet.* counters/gauges/histogram), filled
  /// at the end of run(). Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  struct BlockResult;

  void reset_state();
  BlockResult run_block(std::size_t first, std::size_t last,
                        std::vector<DeviceOutcome>* outcomes);

  FleetConfig config_;
  FleetTiming timing_;
  FleetPolicy policy_;
  std::vector<Archetype> archetypes_;
  std::vector<DeviceSpec> specs_;
  std::size_t jobs_ = 1;
  obs::MetricsRegistry* metrics_ = nullptr;

  // SoA state, stride kMaxClusters per device.
  std::vector<double> util_;
  std::vector<double> temp_c_;
  std::vector<double> temp_decay_;
  std::vector<std::uint32_t> opp_;
  std::vector<std::uint8_t> throttled_;
  // Demand phase position, maintained incrementally so the per-epoch sweep
  // skips the 64-bit modulo in epoch_demand(). Always equals
  // (epoch + demand_phase) % demand_period_epochs for the *next* epoch the
  // slot will derive.
  std::vector<std::uint32_t> demand_pos_;
  // Dense copies of the spec fields the epoch sweep reads, so the hot loop
  // streams a few contiguous arrays instead of striding through the ~200-byte
  // DeviceSpec structs (which spill out of L2 at fleet scale). Filled once in
  // the constructor; values are identical to the spec fields by construction.
  std::vector<std::uint32_t> arch_;     ///< per device: archetype index
  std::vector<std::uint64_t> seed_;     ///< per device: spec.seed
  std::vector<double> ambient_c_;       ///< per device: spec.ambient_c
  std::vector<double> r_th_;            ///< per slot: cluster r_th_k_per_w
  std::vector<DeviceClusterSpec> cluster_spec_;  ///< per slot: dense copy
  // Per-device state.
  std::vector<double> energy_j_;
  std::vector<double> battery_j_;
  std::vector<double> served_;
  std::vector<double> demand_;
  std::vector<std::uint32_t> violations_;
};

}  // namespace pmrl::fleet
