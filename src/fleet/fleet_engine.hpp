#pragma once
// SoA fleet executor: advances 10^5..10^6 devices with struct-of-arrays
// state, cache-friendly block sweeps, batched SIMD action selection, and
// run-farm sharding. Produces results bit-identical to running one AoS
// DeviceEngine per device (see device_engine.hpp) at any --jobs count and
// any block size — the layout/scheduling is the optimization, never the
// arithmetic:
//
//  * State is flat arrays indexed [device * kMaxClusters + cluster] (fixed
//    stride; single-cluster devices carry an inert zero-power slot), so the
//    tick sweep streams contiguously instead of chasing one heap object per
//    device.
//  * Devices are swept in blocks of config.block_size: a block's working
//    set (~100 B/device) stays cache-resident while the block is advanced
//    through a whole epoch, and blocks are the unit of parallelism — each
//    block is one run-farm task (run_ordered), owning all of its mutable
//    state per the farm's RNG-stream isolation rule. Workload draws are
//    stateless hashes of (device seed, epoch, cluster), so any partition of
//    devices into blocks and any thread schedule replays identical draws.
//  * Everything epoch-constant (demand, leakage temp factor, cluster power,
//    thermal target, served rate) is derived once per epoch; the AoS
//    baseline re-derives it every tick like the full SimEngine does. Same
//    inputs, same expressions, same bits — roughly 10x less arithmetic.
//  * Decision epochs select actions for a whole block with the AVX2 batched
//    argmax (rl::batch_argmax_f64), bit-exact with the scalar policy scan.
//  * Aggregates (fleet energy, QoS, per-device energy-per-QoS histogram for
//    percentiles) are accumulated per block and merged in fixed block
//    order, so serial and parallel runs produce bit-identical totals.
//
// Budgeted execution (config.budget.enabled(); DESIGN.md §12): the run
// switches from block-major (each task sweeps all epochs) to epoch-major —
// every epoch, a serial budget::BudgetTree pass apportions the global cap
// into per-device caps from the previous epoch's measured per-device power
// (the demand column each block wrote into its disjoint slice), then the
// blocks advance one epoch in parallel. Cap enforcement is mask-then-
// argmax: the free batched argmax runs unchanged, and only devices whose
// cap vetoes the choice (over cap, or a step-up that would overshoot it)
// re-argmax over the admissible power-ordered action prefix, so the SoA
// tick throughput survives. Caps are bit-identical at any --jobs and any
// --block because the apportionment is a serial pure function of the
// demand column.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "budget/budget_tree.hpp"
#include "fleet/device_engine.hpp"
#include "fleet/device_model.hpp"
#include "fleet/policy.hpp"

namespace pmrl::obs {
class MetricsRegistry;
class TraceSink;
}

namespace pmrl::fleet {

/// Fleet-wide aggregate for one decision epoch (--trace series).
struct FleetEpochPoint {
  double time_s = 0.0;
  double energy_j = 0.0;  ///< joules spent by the fleet during this epoch
  double served = 0.0;    ///< capacity-seconds delivered this epoch
  double demand = 0.0;    ///< capacity-seconds demanded this epoch
  std::uint64_t violations = 0;  ///< devices violating QoS this epoch
  /// Effective global cap in force this epoch (0 when unbudgeted).
  double cap_w = 0.0;
  /// Devices drawing above their cap and not pinned at the bottom OPP.
  std::uint64_t over_cap = 0;
};

/// End-of-run budget aggregates (FleetResult::budget; all zero/-1 when
/// config.budget is disabled).
struct FleetBudgetSummary {
  bool enabled = false;
  double requested_cap_w = 0.0;  ///< schedule cap at end of run
  double effective_cap_w = 0.0;  ///< max(requested, devices * floor)
  std::size_t cap_steps = 0;     ///< schedule steps that fired
  std::size_t last_step_epoch = 0;
  /// Epochs from the last cap step until fleet epoch power first held
  /// within the effective cap; -1 if it never settled.
  long settle_epochs = -1;
  std::uint64_t over_cap_device_epochs = 0;
  /// First budget-tree audit failure ("" = conservation and floor held on
  /// every epoch).
  std::string audit_error;
};

/// End-of-run fleet aggregates. Scalar totals are bit-identical across
/// --jobs values and block sizes.
struct FleetResult {
  std::size_t devices = 0;
  std::size_t epochs = 0;
  std::size_t ticks_per_epoch = 0;
  std::uint64_t device_ticks = 0;
  double energy_j = 0.0;
  double served = 0.0;
  double demand = 0.0;
  std::uint64_t violation_epochs = 0;  ///< device-epochs below QoS
  double violation_rate = 0.0;         ///< violation_epochs / device-epochs
  std::size_t battery_depleted = 0;    ///< devices that hit 0 J
  /// Distribution of per-device energy per delivered capacity-second.
  double energy_per_served_mean = 0.0;
  double energy_per_served_p50 = 0.0;
  double energy_per_served_p95 = 0.0;
  double energy_per_served_p99 = 0.0;
  /// Populated when config.record_devices / config.record_epochs.
  std::vector<DeviceOutcome> device_outcomes;
  std::vector<FleetEpochPoint> epoch_series;
  /// Budget aggregates (budget.enabled only).
  FleetBudgetSummary budget;
  /// Final per-device caps (budget.enabled && record_devices).
  std::vector<double> device_caps_w;
};

/// Histogram bounds used for the energy-per-served distribution (geometric;
/// shared by every block so shard histograms merge).
std::vector<double> energy_per_served_bounds();

class FleetEngine {
 public:
  /// Builds archetypes, device specs, and the SoA state from the config.
  /// Throws std::invalid_argument on a zero-device or zero-block config,
  /// or an invalid budget spec.
  explicit FleetEngine(FleetConfig config,
                       FleetPolicy policy = FleetPolicy::default_policy());

  /// Runs the whole simulation. Re-runnable: state is re-seeded from the
  /// specs on every call, so repeated runs return identical results.
  FleetResult run();

  const FleetConfig& config() const { return config_; }
  const FleetTiming& timing() const { return timing_; }
  const std::vector<Archetype>& archetypes() const { return archetypes_; }
  const std::vector<DeviceSpec>& specs() const { return specs_; }
  const FleetPolicy& policy() const { return policy_; }
  /// Resolved worker count (config.jobs through runfarm::resolve_jobs).
  std::size_t jobs() const { return jobs_; }
  /// The budget tree (nullptr when config.budget is disabled).
  const budget::BudgetTree* budget_tree() const { return tree_.get(); }

  /// Optional instrumentation (fleet.* counters/gauges/histogram, plus
  /// budget.* when budgeted), filled at the end of run(). Pass nullptr to
  /// detach.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional structured trace: one EventKind::Budget record per epoch
  /// (cap, fleet power, over-cap devices), emitted serially after the run
  /// so farmed runs stay byte-identical to serial ones. Budgeted runs
  /// only; pass nullptr to detach.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  struct BlockResult;
  /// Per-epoch per-block partial aggregate (budget path merges these in
  /// block order every epoch).
  struct EpochStats {
    double power_w = 0.0;  ///< sum of device power over the block
    double served = 0.0;
    double demand = 0.0;
    std::uint64_t violations = 0;
    std::uint64_t over_cap = 0;
  };
  /// Block-local scratch; owned by one farm task at a time.
  struct BlockScratch {
    std::size_t first = 0;
    std::size_t last = 0;
    std::vector<double> busy;
    std::vector<double> t_target;
    std::vector<double> p_total;
    std::vector<double> served_rate;
    std::vector<double> demand_rate;
    std::vector<std::uint64_t> states;
    std::vector<std::uint32_t> actions;
    // Budget mode only: per-slot held demand/temp-factor/power/served for
    // the step-up power projection in the masked decision.
    std::vector<double> cl_dem;
    std::vector<double> cl_tf;
    std::vector<double> cl_power;
    std::vector<double> cl_served;
  };

  void reset_state();
  BlockScratch make_scratch(std::size_t first, std::size_t last,
                            bool budgeted) const;
  /// Advances one block through one epoch: derive, tick sweep, QoS
  /// accounting, decision. caps_w == nullptr is the free (unbudgeted)
  /// path; non-null enables the demand-column write and cap enforcement.
  EpochStats epoch_pass(BlockScratch& s, std::size_t e, const double* caps_w);
  /// Per-device outcome/energy-percentile reduction over [first, last).
  BlockResult finalize_block(std::size_t first, std::size_t last,
                             std::vector<DeviceOutcome>* outcomes) const;
  void reduce_blocks(const std::vector<BlockResult>& blocks,
                     FleetResult& result) const;
  FleetResult run_unbudgeted();
  FleetResult run_budgeted();

  FleetConfig config_;
  FleetTiming timing_;
  FleetPolicy policy_;
  std::vector<Archetype> archetypes_;
  std::vector<DeviceSpec> specs_;
  std::size_t jobs_ = 1;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<budget::BudgetTree> tree_;

  // SoA state, stride kMaxClusters per device.
  std::vector<double> util_;
  std::vector<double> temp_c_;
  std::vector<double> temp_decay_;
  std::vector<std::uint32_t> opp_;
  std::vector<std::uint8_t> throttled_;
  // Demand phase position, maintained incrementally so the per-epoch sweep
  // skips the 64-bit modulo in epoch_demand(). Always equals
  // (epoch + demand_phase) % demand_period_epochs for the *next* epoch the
  // slot will derive.
  std::vector<std::uint32_t> demand_pos_;
  // Dense copies of the spec fields the epoch sweep reads, so the hot loop
  // streams a few contiguous arrays instead of striding through the ~200-byte
  // DeviceSpec structs (which spill out of L2 at fleet scale). Filled once in
  // the constructor; values are identical to the spec fields by construction.
  std::vector<std::uint32_t> arch_;     ///< per device: archetype index
  std::vector<std::uint64_t> seed_;     ///< per device: spec.seed
  std::vector<double> ambient_c_;       ///< per device: spec.ambient_c
  std::vector<double> r_th_;            ///< per slot: cluster r_th_k_per_w
  std::vector<DeviceClusterSpec> cluster_spec_;  ///< per slot: dense copy
  // Per-device state.
  std::vector<double> energy_j_;
  std::vector<double> battery_j_;
  std::vector<double> served_;
  std::vector<double> demand_;
  std::vector<std::uint32_t> violations_;
  // Budget columns (budget mode only): blocks write demand_w_ into their
  // disjoint device slices during the epoch derive; the serial tree pass
  // between epochs reads demand_w_ and writes caps_w_.
  std::vector<double> demand_w_;
  std::vector<double> caps_w_;
};

}  // namespace pmrl::fleet
