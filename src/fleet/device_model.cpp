#include "fleet/device_model.hpp"

#include <cmath>
#include <stdexcept>

#include "soc/opp.hpp"
#include "soc/power_model.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"

namespace pmrl::fleet {
namespace {

/// Builds one archetype cluster from a scaled soc:: OPP table + core power
/// params. `stride` thins the 19-point Exynos-style table (real SKUs ship
/// different OPP counts); the top point is always kept so opp_cap reaches
/// 1.0.
ArchetypeCluster make_cluster(const soc::OppTable& base,
                              const soc::CorePowerParams& core_params,
                              std::size_t cores, double freq_scale,
                              double voltage_scale, std::size_t stride,
                              const soc::ThrottleConfig& throttle) {
  const soc::OppTable table =
      soc::scaled_opps(base, freq_scale, voltage_scale);
  const soc::CorePowerModel model(core_params);

  // Thin from the top down so the highest OPP survives, then restore
  // ascending order.
  std::vector<std::size_t> keep;
  for (std::size_t i = table.size(); i-- > 0;) {
    if ((table.size() - 1 - i) % stride == 0) keep.push_back(i);
  }
  std::reverse(keep.begin(), keep.end());

  ArchetypeCluster c;
  c.active = true;
  c.opp_count = static_cast<std::uint32_t>(keep.size());
  const double max_freq = table.highest().freq_hz;
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const auto& p = table.at(keep[k]);
    const auto terms = model.opp_terms(p.freq_hz, p.voltage_v);
    c.opp_freq_hz.push_back(p.freq_hz);
    c.opp_cap.push_back(p.freq_hz / max_freq);
    c.opp_dyn_w.push_back(static_cast<double>(cores) * terms.dyn_w);
    c.opp_leak_w.push_back(static_cast<double>(cores) * terms.leak_w);
    c.opp_freq_bin.push_back(static_cast<std::uint8_t>(
        std::min(kFreqBins - 1, k * kFreqBins / keep.size())));
  }
  c.idle_activity = core_params.idle_activity;
  c.leak_temp_coeff = core_params.leak_temp_coeff;
  c.leak_ref_temp_c = core_params.leak_ref_temp_c;
  c.trip_temp_c = throttle.trip_temp_c;
  c.clear_temp_c = throttle.clear_temp_c;
  // Cap roughly the lower third of the table when throttled, like the
  // engine config's fixed cap index scaled to this table's length.
  c.throttle_cap_index =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, keep.size() / 3));
  return c;
}

/// Inert slot for single-cluster devices: a valid 1-point table whose every
/// power/capacity term is zero, so uniform sweeps over kMaxClusters slots
/// add exact zeros instead of branching. idle_activity 0 makes the dynamic
/// activity factor exactly 0 at zero demand.
ArchetypeCluster make_inert_cluster() {
  ArchetypeCluster c;
  c.active = false;
  c.opp_count = 1;
  c.opp_freq_hz = {1.0};
  c.opp_cap = {1.0};
  c.opp_dyn_w = {0.0};
  c.opp_leak_w = {0.0};
  c.opp_freq_bin = {0};
  c.idle_activity = 0.0;
  c.throttle_cap_index = 0;
  return c;
}

}  // namespace

FleetTiming resolve_timing(const FleetConfig& config) {
  if (config.tick_s <= 0.0 || config.decision_period_s < config.tick_s ||
      config.duration_s <= 0.0) {
    throw std::invalid_argument("fleet timing must be positive with "
                                "decision_period_s >= tick_s");
  }
  FleetTiming t;
  t.tick_s = config.tick_s;
  t.ticks_per_epoch = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.decision_period_s / config.tick_s +
                                  0.5));
  t.epoch_s = static_cast<double>(t.ticks_per_epoch) * config.tick_s;
  t.epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.duration_s / t.epoch_s + 0.5));
  t.util_decay = std::exp(-config.tick_s / kUtilTauS);
  return t;
}

std::vector<Archetype> make_archetypes(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("fleet needs >= 1 archetype");
  const soc::OppTable big = soc::big_cluster_opps();
  const soc::OppTable little = soc::little_cluster_opps();
  const soc::CorePowerParams big_params = soc::big_core_power_params();
  const soc::CorePowerParams little_params = soc::little_core_power_params();
  const soc::ThrottleConfig throttle;

  std::vector<Archetype> archs;
  archs.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    Rng rng(mix64(seed ^ 0xa5c7e7a37e000000ULL ^ a));
    Archetype arch;
    // Flagship parts are big.LITTLE; the budget quarter of the catalogue is
    // LITTLE-only.
    arch.cluster_count = rng.uniform() < 0.75 ? 2 : 1;
    const double bin = rng.uniform(0.88, 1.10);  // silicon speed bin
    const double vbin = rng.uniform(0.96, 1.05);
    const std::size_t stride = 1 + static_cast<std::size_t>(
                                       rng.uniform_int(0, 2));
    const std::size_t little_cores =
        static_cast<std::size_t>(rng.uniform_int(2, 4));
    arch.clusters[0] = make_cluster(little, little_params, little_cores, bin,
                                    vbin, stride, throttle);
    if (arch.cluster_count == 2) {
      const std::size_t big_cores =
          static_cast<std::size_t>(rng.uniform_int(2, 4));
      arch.clusters[1] = make_cluster(big, big_params, big_cores,
                                      rng.uniform(0.85, 1.08), vbin, stride,
                                      throttle);
    } else {
      arch.clusters[1] = make_inert_cluster();
    }
    const soc::UncorePowerParams uncore;
    const double uncore_scale = rng.uniform(0.8, 1.3);
    arch.uncore_static_w = uncore.static_power_w * uncore_scale;
    arch.uncore_dyn_w = uncore.per_throughput_w * uncore_scale;
    archs.push_back(std::move(arch));
  }
  return archs;
}

std::vector<DeviceSpec> make_device_specs(const std::vector<Archetype>& archs,
                                          std::size_t devices,
                                          std::uint64_t seed) {
  if (archs.empty()) throw std::invalid_argument("no archetypes");
  std::vector<DeviceSpec> specs;
  specs.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    // Spec of device i is a pure function of (seed, i): regenerating any
    // sub-range of the fleet (a block, a single device for the golden test)
    // yields identical devices.
    Rng rng(mix64(seed ^ 0xd3c1ce00ULL ^ (i * 0x9e3779b97f4a7c15ULL)));
    DeviceSpec s;
    s.archetype = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(archs.size()) - 1));
    s.seed = mix64(seed ^ (i + 1));
    s.ambient_c = rng.uniform(15.0, 35.0);
    // 10-16 Wh phone batteries in joules, at a random state of charge.
    s.battery_capacity_j = rng.uniform(10.0, 16.0) * 3600.0;
    s.battery_initial_j = s.battery_capacity_j * rng.uniform(0.2, 1.0);
    const Archetype& arch = archs[s.archetype];
    for (std::size_t c = 0; c < arch.cluster_count; ++c) {
      DeviceClusterSpec& cs = s.clusters[c];
      const ArchetypeCluster& ac = arch.clusters[c];
      cs.r_th_k_per_w = rng.uniform(3.0, 6.0);
      cs.c_th_j_per_k = rng.uniform(0.7, 1.6);
      cs.initial_temp_c = s.ambient_c + rng.uniform(0.0, 10.0);
      // Demand mix: mostly-idle phones up to sustained heavy users.
      cs.demand_base = rng.uniform(0.05, 0.55);
      cs.demand_amp = rng.uniform(0.0, 0.5);
      cs.demand_jitter = rng.uniform(0.0, 0.15);
      cs.demand_period_epochs =
          static_cast<std::uint32_t>(rng.uniform_int(6, 40));
      cs.demand_phase = static_cast<std::uint32_t>(
          rng.uniform_int(0, cs.demand_period_epochs - 1));
      cs.initial_opp = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ac.opp_count) - 1));
      cs.initial_util = rng.uniform(0.0, 0.6);
    }
    specs.push_back(s);
  }
  return specs;
}

}  // namespace pmrl::fleet
