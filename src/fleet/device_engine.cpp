#include "fleet/device_engine.hpp"

#include <cmath>

namespace pmrl::fleet {

DeviceEngine::DeviceEngine(const Archetype& archetype, const DeviceSpec& spec,
                           const FleetPolicy& policy,
                           const FleetTiming& timing)
    : archetype_(archetype),
      spec_(spec),
      policy_(policy),
      timing_(timing),
      battery_j_(spec.battery_initial_j) {
  clusters_.resize(archetype.cluster_count);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const DeviceClusterSpec& cs = spec.clusters[c];
    ClusterState& st = clusters_[c];
    st.util = cs.initial_util;
    st.temp_c = cs.initial_temp_c;
    st.opp = cs.initial_opp;
  }
}

void DeviceEngine::step_epoch() {
  // Epoch start: sample-and-hold the workload demand and the leakage
  // temperature input for every cluster.
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    ClusterState& st = clusters_[c];
    st.demand = epoch_demand(spec_.clusters[c], spec_.seed, epoch_, c);
    st.held_temp_c = st.temp_c;
  }

  // Tick loop. Deliberately engine-shaped: like soc::Soc::step, the power
  // model and thermal target are evaluated afresh on every tick even though
  // all their inputs are epoch-constant. That includes both transcendentals
  // the real engine pays per tick — soc::Cluster evaluates the leakage
  // temp factor (CorePowerModel::temp_factor, an exp) on every power query,
  // and soc::ThermalNode::step re-derives its RC decay exp(-dt/tau) on
  // every step. This is the per-object, per-tick cost the SoA engine's
  // epoch hoisting removes without changing a single bit of the results.
  for (std::size_t t = 0; t < timing_.ticks_per_epoch; ++t) {
    double p_total = archetype_.uncore_static_w;
    double served_rate_sum = 0.0;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      ClusterState& st = clusters_[c];
      const ArchetypeCluster& ac = archetype_.clusters[c];
      const DeviceClusterSpec& cs = spec_.clusters[c];
      const double tf = leak_temp_factor(ac.leak_temp_coeff, st.held_temp_c,
                                         ac.leak_ref_temp_c);
      const double temp_decay =
          std::exp(-timing_.tick_s / (cs.r_th_k_per_w * cs.c_th_j_per_k));
      const ClusterEpochDerived d = derive_cluster_epoch(
          ac, st.opp, st.demand, tf, spec_.ambient_c, cs.r_th_k_per_w);
      tick_cluster(st.util, st.temp_c, d.busy, d.t_target_c,
                   timing_.util_decay, temp_decay);
      p_total += d.power_w;
      served_rate_sum += d.served_rate;
    }
    p_total += archetype_.uncore_dyn_w * served_rate_sum;
    tick_device_energy(energy_j_, battery_j_, p_total, timing_.tick_s);
  }

  // QoS accounting. Every input is epoch-constant, so the integrals close
  // to rate * epoch_s; the SoA engine forms the exact same expressions.
  double served_rate_sum = 0.0;
  double demand_rate_sum = 0.0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterState& st = clusters_[c];
    const ArchetypeCluster& ac = archetype_.clusters[c];
    const double tf = leak_temp_factor(ac.leak_temp_coeff, st.held_temp_c,
                                       ac.leak_ref_temp_c);
    const ClusterEpochDerived d = derive_cluster_epoch(
        ac, st.opp, st.demand, tf, spec_.ambient_c,
        spec_.clusters[c].r_th_k_per_w);
    served_rate_sum += d.served_rate;
    demand_rate_sum += st.demand;
  }
  const double epoch_served = served_rate_sum * timing_.epoch_s;
  const double epoch_demand_cap = demand_rate_sum * timing_.epoch_s;
  served_ += epoch_served;
  demand_ += epoch_demand_cap;
  if (epoch_served < epoch_demand_cap * kQosSlack) ++violations_;

  // Decision: observe, pick greedily, throttle-gate, apply.
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    ClusterState& st = clusters_[c];
    const ArchetypeCluster& ac = archetype_.clusters[c];
    const std::uint32_t state =
        cluster_state(st.util, st.temp_c, ac.opp_freq_bin[st.opp]);
    const std::uint32_t action = policy_.greedy(state);
    st.throttled = update_throttle(st.throttled, st.temp_c, ac.trip_temp_c,
                                   ac.clear_temp_c);
    st.opp = apply_action(st.opp, action, ac, st.throttled);
  }
  ++epoch_;
}

void DeviceEngine::run() {
  while (epoch_ < timing_.epochs) step_epoch();
}

DeviceOutcome DeviceEngine::outcome() const {
  DeviceOutcome o;
  o.energy_j = energy_j_;
  o.served = served_;
  o.demand = demand_;
  o.violations = violations_;
  o.battery_j = battery_j_;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    o.util[c] = clusters_[c].util;
    o.temp_c[c] = clusters_[c].temp_c;
    o.opp[c] = clusters_[c].opp;
  }
  return o;
}

}  // namespace pmrl::fleet
