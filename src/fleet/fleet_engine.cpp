#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/runfarm/runfarm.hpp"
#include "core/runfarm/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace pmrl::fleet {

std::vector<double> energy_per_served_bounds() {
  // Geometric ladder over the plausible J-per-capacity-second range of the
  // device model (idle LITTLE phone ~0.3, throttling big cluster ~60).
  std::vector<double> bounds;
  const int n = 96;
  const double lo = 0.125;
  const double hi = 128.0;
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double b = lo;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

/// Per-block partial aggregate; merged across blocks in block order.
struct FleetEngine::BlockResult {
  double energy_j = 0.0;
  double served = 0.0;
  double demand = 0.0;
  double energy_per_served_sum = 0.0;
  std::uint64_t violations = 0;
  std::size_t battery_depleted = 0;
  std::unique_ptr<obs::Histogram> eps_hist;
  std::vector<FleetEpochPoint> epoch_series;
};

FleetEngine::FleetEngine(FleetConfig config, FleetPolicy policy)
    : config_(config),
      timing_(resolve_timing(config)),
      policy_(std::move(policy)) {
  if (config_.devices == 0) throw std::invalid_argument("fleet of 0 devices");
  if (config_.block_size == 0) throw std::invalid_argument("block_size == 0");
  archetypes_ = make_archetypes(config_.archetypes, config_.seed);
  specs_ = make_device_specs(archetypes_, config_.devices, config_.seed);
  jobs_ = core::runfarm::resolve_jobs(config_.jobs);
  if (config_.budget.enabled()) {
    tree_ = std::make_unique<budget::BudgetTree>(config_.budget,
                                                 config_.devices);
    demand_w_.resize(config_.devices);
    caps_w_.resize(config_.devices);
  }

  const std::size_t slots = config_.devices * kMaxClusters;
  util_.resize(slots);
  temp_c_.resize(slots);
  temp_decay_.resize(slots);
  opp_.resize(slots);
  throttled_.resize(slots);
  demand_pos_.resize(slots);
  energy_j_.resize(config_.devices);
  battery_j_.resize(config_.devices);
  served_.resize(config_.devices);
  demand_.resize(config_.devices);
  violations_.resize(config_.devices);

  arch_.resize(config_.devices);
  seed_.resize(config_.devices);
  ambient_c_.resize(config_.devices);
  r_th_.resize(slots);
  cluster_spec_.resize(slots);
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const DeviceSpec& sp = specs_[d];
    arch_[d] = static_cast<std::uint32_t>(sp.archetype);
    seed_[d] = sp.seed;
    ambient_c_[d] = sp.ambient_c;
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      r_th_[d * kMaxClusters + c] = sp.clusters[c].r_th_k_per_w;
      cluster_spec_[d * kMaxClusters + c] = sp.clusters[c];
    }
  }
}

void FleetEngine::reset_state() {
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const DeviceSpec& sp = specs_[d];
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      const DeviceClusterSpec& cs = sp.clusters[c];
      util_[i] = cs.initial_util;
      temp_c_[i] = cs.initial_temp_c;
      // Same expression on the same inputs that DeviceEngine evaluates on
      // every tick, hence bit-identical decay factors — hoisted here to
      // construction time because it never changes.
      temp_decay_[i] =
          std::exp(-timing_.tick_s / (cs.r_th_k_per_w * cs.c_th_j_per_k));
      opp_[i] = cs.initial_opp;
      throttled_[i] = 0;
      demand_pos_[i] = static_cast<std::uint32_t>(cs.demand_phase %
                                                  cs.demand_period_epochs);
    }
    energy_j_[d] = 0.0;
    battery_j_[d] = sp.battery_initial_j;
    served_[d] = 0.0;
    demand_[d] = 0.0;
    violations_[d] = 0;
  }
}

FleetEngine::BlockScratch FleetEngine::make_scratch(std::size_t first,
                                                    std::size_t last,
                                                    bool budgeted) const {
  BlockScratch s;
  s.first = first;
  s.last = last;
  const std::size_t n = last - first;
  const std::size_t slots = n * kMaxClusters;
  s.busy.resize(slots);
  s.t_target.resize(slots);
  s.p_total.resize(n);
  s.served_rate.resize(n);
  s.demand_rate.resize(n);
  s.states.resize(slots);
  s.actions.resize(slots);
  if (budgeted) {
    s.cl_dem.resize(slots);
    s.cl_tf.resize(slots);
    s.cl_power.resize(slots);
    s.cl_served.resize(slots);
  }
  return s;
}

FleetEngine::EpochStats FleetEngine::epoch_pass(BlockScratch& s, std::size_t e,
                                                const double* caps_w) {
  const std::size_t first = s.first;
  const std::size_t last = s.last;
  const std::size_t slots = (last - first) * kMaxClusters;
  EpochStats st;

  // Epoch start: hash demand, hold the leakage temp factor, derive every
  // epoch-constant quantity once. The AoS baseline re-derives these on
  // every tick; the values are identical because every input is
  // epoch-constant.
  for (std::size_t d = first; d < last; ++d) {
    const std::size_t li = d - first;
    const Archetype& ar = archetypes_[arch_[d]];
    const std::uint64_t dev_seed = seed_[d];
    const double ambient = ambient_c_[d];
    double pt = ar.uncore_static_w;
    double srs = 0.0;
    double drs = 0.0;
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      const std::size_t si = li * kMaxClusters + c;
      const ArchetypeCluster& ac = ar.clusters[c];
      const DeviceClusterSpec& cs = cluster_spec_[i];
      const std::uint32_t pos = demand_pos_[i];
      const double dem = epoch_demand_at(cs, dev_seed, e, c, pos);
      const std::uint32_t next = pos + 1;
      demand_pos_[i] = next == cs.demand_period_epochs ? 0u : next;
      const double tf = leak_temp_factor(ac.leak_temp_coeff, temp_c_[i],
                                         ac.leak_ref_temp_c);
      const ClusterEpochDerived der =
          derive_cluster_epoch(ac, opp_[i], dem, tf, ambient, r_th_[i]);
      s.busy[si] = der.busy;
      s.t_target[si] = der.t_target_c;
      pt += der.power_w;
      srs += der.served_rate;
      drs += dem;
      if (caps_w) {
        // Held per-slot inputs for the masked decision's step-up power
        // projection at the end of the epoch.
        s.cl_dem[si] = dem;
        s.cl_tf[si] = tf;
        s.cl_power[si] = der.power_w;
        s.cl_served[si] = der.served_rate;
      }
    }
    s.p_total[li] = pt + ar.uncore_dyn_w * srs;
    s.served_rate[li] = srs;
    s.demand_rate[li] = drs;
    // Measured device power is next epoch's apportionment demand.
    if (caps_w) demand_w_[d] = s.p_total[li];
  }

  // Tick sweep: only the integrators run per tick — two FMA pairs per
  // cluster slot plus the energy/battery update. Device-major with the
  // epoch's ticks innermost, so each device's eight state words live in
  // registers for the whole epoch instead of round-tripping to memory
  // every tick. The per-device operation sequence is exactly the AoS
  // engine's, so the bits are unchanged.
  // Interleaving kTickChunk devices keeps ~6*kTickChunk independent FMA
  // dependency chains in flight, hiding the multiply-add latency that a
  // one-device-at-a-time loop serializes on. Per-device operation order
  // is untouched, so interleaving cannot change any bit.
  constexpr std::size_t kTickChunk = 4;
  const double util_decay = timing_.util_decay;
  const double dt = timing_.tick_s;
  const std::size_t ticks = timing_.ticks_per_epoch;
  {
    std::size_t d = first;
    for (; d + kTickChunk <= last; d += kTickChunk) {
      const std::size_t li = d - first;
      double u[kTickChunk * kMaxClusters];
      double tc[kTickChunk * kMaxClusters];
      double dec[kTickChunk * kMaxClusters];
      double bz[kTickChunk * kMaxClusters];
      double tt[kTickChunk * kMaxClusters];
      double pw[kTickChunk];
      double en[kTickChunk];
      double bat[kTickChunk];
      for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
        u[k] = util_[d * kMaxClusters + k];
        tc[k] = temp_c_[d * kMaxClusters + k];
        dec[k] = temp_decay_[d * kMaxClusters + k];
        bz[k] = s.busy[li * kMaxClusters + k];
        tt[k] = s.t_target[li * kMaxClusters + k];
      }
      for (std::size_t k = 0; k < kTickChunk; ++k) {
        pw[k] = s.p_total[li + k];
        en[k] = energy_j_[d + k];
        bat[k] = battery_j_[d + k];
      }
      for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
          tick_cluster(u[k], tc[k], bz[k], tt[k], util_decay, dec[k]);
        }
        for (std::size_t k = 0; k < kTickChunk; ++k) {
          tick_device_energy(en[k], bat[k], pw[k], dt);
        }
      }
      for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
        util_[d * kMaxClusters + k] = u[k];
        temp_c_[d * kMaxClusters + k] = tc[k];
      }
      for (std::size_t k = 0; k < kTickChunk; ++k) {
        energy_j_[d + k] = en[k];
        battery_j_[d + k] = bat[k];
      }
    }
    for (; d < last; ++d) {
      const std::size_t li = d - first;
      const std::size_t i0 = d * kMaxClusters;
      const std::size_t s0 = li * kMaxClusters;
      double u0 = util_[i0], u1 = util_[i0 + 1];
      double tc0 = temp_c_[i0], tc1 = temp_c_[i0 + 1];
      const double dec0 = temp_decay_[i0], dec1 = temp_decay_[i0 + 1];
      const double b0 = s.busy[s0], b1 = s.busy[s0 + 1];
      const double tt0 = s.t_target[s0], tt1 = s.t_target[s0 + 1];
      const double power = s.p_total[li];
      double energy = energy_j_[d];
      double battery = battery_j_[d];
      for (std::size_t t = 0; t < ticks; ++t) {
        tick_cluster(u0, tc0, b0, tt0, util_decay, dec0);
        tick_cluster(u1, tc1, b1, tt1, util_decay, dec1);
        tick_device_energy(energy, battery, power, dt);
      }
      util_[i0] = u0;
      util_[i0 + 1] = u1;
      temp_c_[i0] = tc0;
      temp_c_[i0 + 1] = tc1;
      energy_j_[d] = energy;
      battery_j_[d] = battery;
    }
  }

  // QoS accounting (identical closed forms to DeviceEngine::step_epoch).
  for (std::size_t d = first; d < last; ++d) {
    const std::size_t li = d - first;
    const double epoch_served = s.served_rate[li] * timing_.epoch_s;
    const double epoch_demand_cap = s.demand_rate[li] * timing_.epoch_s;
    served_[d] += epoch_served;
    demand_[d] += epoch_demand_cap;
    const bool violated = epoch_served < epoch_demand_cap * kQosSlack;
    if (violated) ++violations_[d];
    st.power_w += s.p_total[li];
    st.served += epoch_served;
    st.demand += epoch_demand_cap;
    if (violated) ++st.violations;
    if (caps_w && s.p_total[li] > caps_w[d]) {
      // Over cap but already pinned at the bottom OPP everywhere: the
      // governor has nothing left to shed, so don't count it as pressure.
      bool pinned = true;
      const std::size_t active = archetypes_[arch_[d]].cluster_count;
      for (std::size_t c = 0; c < active; ++c) {
        if (opp_[d * kMaxClusters + c] != 0) {
          pinned = false;
          break;
        }
      }
      if (!pinned) ++st.over_cap;
    }
  }

  // Decision: bin every cluster slot's observation, pick the whole
  // block's actions with one batched argmax, then gate by the throttle.
  for (std::size_t d = first; d < last; ++d) {
    const std::size_t li = d - first;
    const Archetype& ar = archetypes_[arch_[d]];
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      const ArchetypeCluster& ac = ar.clusters[c];
      s.states[li * kMaxClusters + c] =
          cluster_state(util_[i], temp_c_[i], ac.opp_freq_bin[opp_[i]]);
      // The throttle latch depends only on the post-tick temperature, not
      // on the chosen action, so it folds into this same sweep instead of
      // paying a second pass over temp_c_.
      throttled_[i] = update_throttle(throttled_[i] != 0, temp_c_[i],
                                      ac.trip_temp_c, ac.clear_temp_c)
                          ? 1
                          : 0;
    }
  }
  policy_.greedy_batch(s.states.data(), slots, s.actions.data());
  if (caps_w) {
    // Mask-then-argmax cap enforcement: the free batched argmax above is
    // untouched; only devices whose cap vetoes the choice re-resolve.
    for (std::size_t d = first; d < last; ++d) {
      const std::size_t li = d - first;
      const double cap = caps_w[d];
      if (s.p_total[li] > cap) {
        // Already above the cap: shed unconditionally.
        for (std::size_t c = 0; c < kMaxClusters; ++c) {
          s.actions[li * kMaxClusters + c] = kActionDown;
        }
        continue;
      }
      const Archetype& ar = archetypes_[arch_[d]];
      double proj = s.p_total[li];
      for (std::size_t c = 0; c < kMaxClusters; ++c) {
        const std::size_t si = li * kMaxClusters + c;
        if (s.actions[si] != kActionUp) continue;
        const std::size_t i = d * kMaxClusters + c;
        const ArchetypeCluster& ac = ar.clusters[c];
        if (opp_[i] + 1 >= ac.opp_count) continue;
        // Project this epoch's demand at the stepped-up OPP; the DVFS
        // actions are power-ordered, so a vetoed Up re-argmaxes over the
        // admissible {down, hold} prefix.
        const ClusterEpochDerived up = derive_cluster_epoch(
            ac, opp_[i] + 1, s.cl_dem[si], s.cl_tf[si], ambient_c_[d],
            r_th_[i]);
        const double delta =
            (up.power_w + ar.uncore_dyn_w * up.served_rate) -
            (s.cl_power[si] + ar.uncore_dyn_w * s.cl_served[si]);
        if (proj + delta > cap) {
          s.actions[si] = policy_.greedy_allowed(
              static_cast<std::uint32_t>(s.states[si]), 2);
        } else {
          proj += delta;
        }
      }
    }
  }
  for (std::size_t d = first; d < last; ++d) {
    const std::size_t li = d - first;
    const Archetype& ar = archetypes_[arch_[d]];
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      opp_[i] = apply_action(opp_[i], s.actions[li * kMaxClusters + c],
                             ar.clusters[c], throttled_[i] != 0);
    }
  }
  return st;
}

FleetEngine::BlockResult FleetEngine::finalize_block(
    std::size_t first, std::size_t last,
    std::vector<DeviceOutcome>* outcomes) const {
  BlockResult r;
  r.eps_hist = std::make_unique<obs::Histogram>(energy_per_served_bounds());
  // Block totals, accumulated in device order.
  for (std::size_t d = first; d < last; ++d) {
    r.energy_j += energy_j_[d];
    r.served += served_[d];
    r.demand += demand_[d];
    r.violations += violations_[d];
    if (battery_j_[d] <= 0.0) ++r.battery_depleted;
    DeviceOutcome o;
    o.energy_j = energy_j_[d];
    o.served = served_[d];
    o.demand = demand_[d];
    o.violations = violations_[d];
    o.battery_j = battery_j_[d];
    const std::size_t active = archetypes_[arch_[d]].cluster_count;
    for (std::size_t c = 0; c < active; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      o.util[c] = util_[i];
      o.temp_c[c] = temp_c_[i];
      o.opp[c] = opp_[i];
    }
    const double eps = o.energy_per_served();
    r.energy_per_served_sum += eps;
    r.eps_hist->observe(eps);
    if (outcomes) (*outcomes)[d] = o;
  }
  return r;
}

void FleetEngine::reduce_blocks(const std::vector<BlockResult>& blocks,
                                FleetResult& result) const {
  obs::Histogram eps_hist(energy_per_served_bounds());
  double eps_sum = 0.0;
  for (const BlockResult& b : blocks) {
    result.energy_j += b.energy_j;
    result.served += b.served;
    result.demand += b.demand;
    result.violation_epochs += b.violations;
    result.battery_depleted += b.battery_depleted;
    eps_sum += b.energy_per_served_sum;
    eps_hist.merge(*b.eps_hist);
    for (std::size_t e = 0; e < b.epoch_series.size(); ++e) {
      FleetEpochPoint& p = result.epoch_series[e];
      p.time_s = b.epoch_series[e].time_s;
      p.energy_j += b.epoch_series[e].energy_j;
      p.served += b.epoch_series[e].served;
      p.demand += b.epoch_series[e].demand;
      p.violations += b.epoch_series[e].violations;
    }
  }
  const double device_epochs = static_cast<double>(config_.devices) *
                               static_cast<double>(timing_.epochs);
  result.violation_rate =
      static_cast<double>(result.violation_epochs) / device_epochs;
  result.energy_per_served_mean =
      eps_sum / static_cast<double>(config_.devices);
  result.energy_per_served_p50 = eps_hist.percentile(0.50);
  result.energy_per_served_p95 = eps_hist.percentile(0.95);
  result.energy_per_served_p99 = eps_hist.percentile(0.99);

  if (metrics_) {
    metrics_->counter("fleet.devices").inc(config_.devices);
    metrics_->counter("fleet.device_ticks").inc(result.device_ticks);
    metrics_->counter("fleet.violation_epochs").inc(result.violation_epochs);
    metrics_->counter("fleet.battery_depleted").inc(result.battery_depleted);
    metrics_->gauge("fleet.energy_j").set(result.energy_j);
    metrics_->gauge("fleet.violation_rate").set(result.violation_rate);
    metrics_->histogram("fleet.energy_per_served", energy_per_served_bounds())
        .merge(eps_hist);
  }
}

FleetResult FleetEngine::run() {
  return config_.budget.enabled() ? run_budgeted() : run_unbudgeted();
}

FleetResult FleetEngine::run_unbudgeted() {
  reset_state();

  FleetResult result;
  result.devices = config_.devices;
  result.epochs = timing_.epochs;
  result.ticks_per_epoch = timing_.ticks_per_epoch;
  result.device_ticks = static_cast<std::uint64_t>(config_.devices) *
                        timing_.epochs * timing_.ticks_per_epoch;
  if (config_.record_devices) result.device_outcomes.resize(config_.devices);
  std::vector<DeviceOutcome>* outcomes =
      config_.record_devices ? &result.device_outcomes : nullptr;

  // One farm task per block. Tasks write disjoint SoA slices and their own
  // scratch; partial aggregates come back through run_ordered in block
  // order, so the merge below is the same fp reduction at any --jobs.
  std::vector<std::function<BlockResult()>> tasks;
  for (std::size_t first = 0; first < config_.devices;
       first += config_.block_size) {
    const std::size_t last =
        std::min(config_.devices, first + config_.block_size);
    tasks.push_back([this, first, last, outcomes] {
      BlockScratch s = make_scratch(first, last, false);
      std::vector<FleetEpochPoint> series;
      if (config_.record_epochs) series.resize(timing_.epochs);
      for (std::size_t e = 0; e < timing_.epochs; ++e) {
        const EpochStats st = epoch_pass(s, e, nullptr);
        if (config_.record_epochs) {
          FleetEpochPoint& ep = series[e];
          ep.time_s = static_cast<double>(e + 1) * timing_.epoch_s;
          ep.energy_j = st.power_w * timing_.epoch_s;
          ep.served = st.served;
          ep.demand = st.demand;
          ep.violations = st.violations;
        }
      }
      BlockResult r = finalize_block(first, last, outcomes);
      r.epoch_series = std::move(series);
      return r;
    });
  }
  std::unique_ptr<core::runfarm::ThreadPool> pool;
  if (jobs_ > 1) pool = std::make_unique<core::runfarm::ThreadPool>(jobs_);
  std::vector<BlockResult> blocks = core::runfarm::run_ordered<BlockResult>(
      pool ? pool.get() : nullptr, tasks);

  if (config_.record_epochs) result.epoch_series.resize(timing_.epochs);
  reduce_blocks(blocks, result);
  return result;
}

FleetResult FleetEngine::run_budgeted() {
  reset_state();
  tree_->reset();
  // Epoch 0 apportions from an all-zero demand column (no measurement
  // exists yet), which every policy resolves to a uniform split.
  std::fill(demand_w_.begin(), demand_w_.end(), 0.0);
  std::fill(caps_w_.begin(), caps_w_.end(), 0.0);

  FleetResult result;
  result.devices = config_.devices;
  result.epochs = timing_.epochs;
  result.ticks_per_epoch = timing_.ticks_per_epoch;
  result.device_ticks = static_cast<std::uint64_t>(config_.devices) *
                        timing_.epochs * timing_.ticks_per_epoch;
  if (config_.record_devices) result.device_outcomes.resize(config_.devices);
  std::vector<DeviceOutcome>* outcomes =
      config_.record_devices ? &result.device_outcomes : nullptr;
  if (config_.record_epochs) result.epoch_series.resize(timing_.epochs);

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<BlockScratch> scratch;
  for (std::size_t first = 0; first < config_.devices;
       first += config_.block_size) {
    const std::size_t last =
        std::min(config_.devices, first + config_.block_size);
    ranges.emplace_back(first, last);
    scratch.push_back(make_scratch(first, last, true));
  }
  std::unique_ptr<core::runfarm::ThreadPool> pool;
  if (jobs_ > 1) pool = std::make_unique<core::runfarm::ThreadPool>(jobs_);

  // Epoch-major loop: a serial apportionment pass between parallel epoch
  // rounds. Caps are a pure function of the strictly device-ordered demand
  // column, so they are bit-identical at any --jobs and any --block.
  std::size_t last_step_epoch = 0;
  std::vector<EpochStats> totals(timing_.epochs);
  std::vector<double> eff_caps(timing_.epochs);
  std::uint64_t over_cap_total = 0;
  // One task per block, built once: each closure reads the shared epoch
  // counter, which only the serial loop below mutates (between rounds).
  std::size_t current_epoch = 0;
  std::vector<std::function<EpochStats()>> tasks;
  tasks.reserve(scratch.size());
  for (std::size_t b = 0; b < scratch.size(); ++b) {
    BlockScratch* s = &scratch[b];
    tasks.push_back(
        [this, s, &current_epoch] {
          return epoch_pass(*s, current_epoch, caps_w_.data());
        });
  }
  for (std::size_t e = 0; e < timing_.epochs; ++e) {
    const double t = static_cast<double>(e) * timing_.epoch_s;
    if (tree_->begin_epoch(t)) last_step_epoch = e;
    tree_->apportion(demand_w_, caps_w_);
    eff_caps[e] = tree_->effective_cap_w();

    current_epoch = e;
    const std::vector<EpochStats> parts =
        core::runfarm::run_ordered<EpochStats>(pool ? pool.get() : nullptr,
                                               tasks);
    EpochStats tot;
    for (const EpochStats& p : parts) {
      tot.power_w += p.power_w;
      tot.served += p.served;
      tot.demand += p.demand;
      tot.violations += p.violations;
      tot.over_cap += p.over_cap;
    }
    totals[e] = tot;
    over_cap_total += tot.over_cap;
    if (config_.record_epochs) {
      FleetEpochPoint& ep = result.epoch_series[e];
      ep.time_s = static_cast<double>(e + 1) * timing_.epoch_s;
      ep.energy_j = tot.power_w * timing_.epoch_s;
      ep.served = tot.served;
      ep.demand = tot.demand;
      ep.violations = tot.violations;
      ep.cap_w = eff_caps[e];
      ep.over_cap = tot.over_cap;
    }
  }

  // Settle: epochs from the last cap step until fleet epoch power first
  // held within the effective cap (with an ulp-scale audit tolerance).
  long settle = -1;
  for (std::size_t e = last_step_epoch; e < timing_.epochs; ++e) {
    const double tol = 1e-9 * std::max(1.0, eff_caps[e]);
    if (totals[e].power_w <= eff_caps[e] + tol) {
      settle = static_cast<long>(e - last_step_epoch);
      break;
    }
  }

  std::vector<std::function<BlockResult()>> ftasks;
  ftasks.reserve(ranges.size());
  for (const auto& [first, last] : ranges) {
    ftasks.push_back([this, first = first, last = last, outcomes] {
      return finalize_block(first, last, outcomes);
    });
  }
  const std::vector<BlockResult> blocks =
      core::runfarm::run_ordered<BlockResult>(pool ? pool.get() : nullptr,
                                              ftasks);
  reduce_blocks(blocks, result);

  result.budget.enabled = true;
  result.budget.requested_cap_w = tree_->requested_cap_w();
  result.budget.effective_cap_w = tree_->effective_cap_w();
  result.budget.cap_steps = tree_->steps_fired();
  result.budget.last_step_epoch = last_step_epoch;
  result.budget.settle_epochs = settle;
  result.budget.over_cap_device_epochs = over_cap_total;
  result.budget.audit_error = tree_->audit_error();
  if (config_.record_devices) result.device_caps_w = caps_w_;

  if (metrics_) {
    metrics_->counter("budget.over_cap_device_epochs").inc(over_cap_total);
    metrics_->counter("budget.cap_steps").inc(tree_->steps_fired());
    metrics_->gauge("budget.effective_cap_w").set(tree_->effective_cap_w());
    metrics_->gauge("budget.settle_epochs").set(static_cast<double>(settle));
  }
  if (trace_) {
    // Emitted serially after the run (determinism rule: a farmed run's
    // trace is byte-identical to the serial run's).
    for (std::size_t e = 0; e < timing_.epochs; ++e) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::Budget;
      ev.epoch = e;
      ev.time_s = static_cast<double>(e + 1) * timing_.epoch_s;
      ev.power_w = totals[e].power_w;
      ev.energy_j = totals[e].power_w * timing_.epoch_s;
      ev.value = eff_caps[e];
      ev.violations = totals[e].over_cap;
      trace_->record(ev);
    }
  }
  return result;
}

}  // namespace pmrl::fleet
