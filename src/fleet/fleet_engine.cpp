#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/runfarm/runfarm.hpp"
#include "core/runfarm/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace pmrl::fleet {

std::vector<double> energy_per_served_bounds() {
  // Geometric ladder over the plausible J-per-capacity-second range of the
  // device model (idle LITTLE phone ~0.3, throttling big cluster ~60).
  std::vector<double> bounds;
  const int n = 96;
  const double lo = 0.125;
  const double hi = 128.0;
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double b = lo;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

/// Per-block partial aggregate; merged across blocks in block order.
struct FleetEngine::BlockResult {
  double energy_j = 0.0;
  double served = 0.0;
  double demand = 0.0;
  double energy_per_served_sum = 0.0;
  std::uint64_t violations = 0;
  std::size_t battery_depleted = 0;
  std::unique_ptr<obs::Histogram> eps_hist;
  std::vector<FleetEpochPoint> epoch_series;
};

FleetEngine::FleetEngine(FleetConfig config, FleetPolicy policy)
    : config_(config),
      timing_(resolve_timing(config)),
      policy_(std::move(policy)) {
  if (config_.devices == 0) throw std::invalid_argument("fleet of 0 devices");
  if (config_.block_size == 0) throw std::invalid_argument("block_size == 0");
  archetypes_ = make_archetypes(config_.archetypes, config_.seed);
  specs_ = make_device_specs(archetypes_, config_.devices, config_.seed);
  jobs_ = core::runfarm::resolve_jobs(config_.jobs);

  const std::size_t slots = config_.devices * kMaxClusters;
  util_.resize(slots);
  temp_c_.resize(slots);
  temp_decay_.resize(slots);
  opp_.resize(slots);
  throttled_.resize(slots);
  demand_pos_.resize(slots);
  energy_j_.resize(config_.devices);
  battery_j_.resize(config_.devices);
  served_.resize(config_.devices);
  demand_.resize(config_.devices);
  violations_.resize(config_.devices);

  arch_.resize(config_.devices);
  seed_.resize(config_.devices);
  ambient_c_.resize(config_.devices);
  r_th_.resize(slots);
  cluster_spec_.resize(slots);
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const DeviceSpec& sp = specs_[d];
    arch_[d] = static_cast<std::uint32_t>(sp.archetype);
    seed_[d] = sp.seed;
    ambient_c_[d] = sp.ambient_c;
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      r_th_[d * kMaxClusters + c] = sp.clusters[c].r_th_k_per_w;
      cluster_spec_[d * kMaxClusters + c] = sp.clusters[c];
    }
  }
}

void FleetEngine::reset_state() {
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const DeviceSpec& sp = specs_[d];
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      const DeviceClusterSpec& cs = sp.clusters[c];
      util_[i] = cs.initial_util;
      temp_c_[i] = cs.initial_temp_c;
      // Same expression on the same inputs that DeviceEngine evaluates on
      // every tick, hence bit-identical decay factors — hoisted here to
      // construction time because it never changes.
      temp_decay_[i] =
          std::exp(-timing_.tick_s / (cs.r_th_k_per_w * cs.c_th_j_per_k));
      opp_[i] = cs.initial_opp;
      throttled_[i] = 0;
      demand_pos_[i] = static_cast<std::uint32_t>(cs.demand_phase %
                                                  cs.demand_period_epochs);
    }
    energy_j_[d] = 0.0;
    battery_j_[d] = sp.battery_initial_j;
    served_[d] = 0.0;
    demand_[d] = 0.0;
    violations_[d] = 0;
  }
}

FleetEngine::BlockResult FleetEngine::run_block(
    std::size_t first, std::size_t last,
    std::vector<DeviceOutcome>* outcomes) {
  const std::size_t n = last - first;
  const std::size_t slots = n * kMaxClusters;

  // Block-local scratch (the task owns all of its mutable state).
  std::vector<double> busy(slots);
  std::vector<double> t_target(slots);
  std::vector<double> p_total(n);
  std::vector<double> served_rate(n);
  std::vector<double> demand_rate(n);
  std::vector<std::uint64_t> states(slots);
  std::vector<std::uint32_t> actions(slots);

  BlockResult r;
  r.eps_hist = std::make_unique<obs::Histogram>(energy_per_served_bounds());
  if (config_.record_epochs) r.epoch_series.resize(timing_.epochs);

  for (std::size_t e = 0; e < timing_.epochs; ++e) {
    // Epoch start: hash demand, hold the leakage temp factor, derive every
    // epoch-constant quantity once. The AoS baseline re-derives these on
    // every tick; the values are identical because every input is
    // epoch-constant.
    for (std::size_t d = first; d < last; ++d) {
      const std::size_t li = d - first;
      const Archetype& ar = archetypes_[arch_[d]];
      const std::uint64_t dev_seed = seed_[d];
      const double ambient = ambient_c_[d];
      double pt = ar.uncore_static_w;
      double srs = 0.0;
      double drs = 0.0;
      for (std::size_t c = 0; c < kMaxClusters; ++c) {
        const std::size_t i = d * kMaxClusters + c;
        const std::size_t s = li * kMaxClusters + c;
        const ArchetypeCluster& ac = ar.clusters[c];
        const DeviceClusterSpec& cs = cluster_spec_[i];
        const std::uint32_t pos = demand_pos_[i];
        const double dem = epoch_demand_at(cs, dev_seed, e, c, pos);
        const std::uint32_t next = pos + 1;
        demand_pos_[i] = next == cs.demand_period_epochs ? 0u : next;
        const double tf = leak_temp_factor(ac.leak_temp_coeff, temp_c_[i],
                                           ac.leak_ref_temp_c);
        const ClusterEpochDerived der =
            derive_cluster_epoch(ac, opp_[i], dem, tf, ambient, r_th_[i]);
        busy[s] = der.busy;
        t_target[s] = der.t_target_c;
        pt += der.power_w;
        srs += der.served_rate;
        drs += dem;
      }
      p_total[li] = pt + ar.uncore_dyn_w * srs;
      served_rate[li] = srs;
      demand_rate[li] = drs;
    }

    // Tick sweep: only the integrators run per tick — two FMA pairs per
    // cluster slot plus the energy/battery update. Device-major with the
    // epoch's ticks innermost, so each device's eight state words live in
    // registers for the whole epoch instead of round-tripping to memory
    // every tick. The per-device operation sequence is exactly the AoS
    // engine's, so the bits are unchanged.
    // Interleaving kTickChunk devices keeps ~6*kTickChunk independent FMA
    // dependency chains in flight, hiding the multiply-add latency that a
    // one-device-at-a-time loop serializes on. Per-device operation order
    // is untouched, so interleaving cannot change any bit.
    constexpr std::size_t kTickChunk = 4;
    const double util_decay = timing_.util_decay;
    const double dt = timing_.tick_s;
    const std::size_t ticks = timing_.ticks_per_epoch;
    {
    std::size_t d = first;
    for (; d + kTickChunk <= last; d += kTickChunk) {
      const std::size_t li = d - first;
      double u[kTickChunk * kMaxClusters];
      double tc[kTickChunk * kMaxClusters];
      double dec[kTickChunk * kMaxClusters];
      double bz[kTickChunk * kMaxClusters];
      double tt[kTickChunk * kMaxClusters];
      double pw[kTickChunk];
      double en[kTickChunk];
      double bat[kTickChunk];
      for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
        u[k] = util_[d * kMaxClusters + k];
        tc[k] = temp_c_[d * kMaxClusters + k];
        dec[k] = temp_decay_[d * kMaxClusters + k];
        bz[k] = busy[li * kMaxClusters + k];
        tt[k] = t_target[li * kMaxClusters + k];
      }
      for (std::size_t k = 0; k < kTickChunk; ++k) {
        pw[k] = p_total[li + k];
        en[k] = energy_j_[d + k];
        bat[k] = battery_j_[d + k];
      }
      for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
          tick_cluster(u[k], tc[k], bz[k], tt[k], util_decay, dec[k]);
        }
        for (std::size_t k = 0; k < kTickChunk; ++k) {
          tick_device_energy(en[k], bat[k], pw[k], dt);
        }
      }
      for (std::size_t k = 0; k < kTickChunk * kMaxClusters; ++k) {
        util_[d * kMaxClusters + k] = u[k];
        temp_c_[d * kMaxClusters + k] = tc[k];
      }
      for (std::size_t k = 0; k < kTickChunk; ++k) {
        energy_j_[d + k] = en[k];
        battery_j_[d + k] = bat[k];
      }
    }
    for (; d < last; ++d) {
      const std::size_t li = d - first;
      const std::size_t i0 = d * kMaxClusters;
      const std::size_t s0 = li * kMaxClusters;
      double u0 = util_[i0], u1 = util_[i0 + 1];
      double tc0 = temp_c_[i0], tc1 = temp_c_[i0 + 1];
      const double dec0 = temp_decay_[i0], dec1 = temp_decay_[i0 + 1];
      const double b0 = busy[s0], b1 = busy[s0 + 1];
      const double tt0 = t_target[s0], tt1 = t_target[s0 + 1];
      const double power = p_total[li];
      double energy = energy_j_[d];
      double battery = battery_j_[d];
      for (std::size_t t = 0; t < ticks; ++t) {
        tick_cluster(u0, tc0, b0, tt0, util_decay, dec0);
        tick_cluster(u1, tc1, b1, tt1, util_decay, dec1);
        tick_device_energy(energy, battery, power, dt);
      }
      util_[i0] = u0;
      util_[i0 + 1] = u1;
      temp_c_[i0] = tc0;
      temp_c_[i0 + 1] = tc1;
      energy_j_[d] = energy;
      battery_j_[d] = battery;
    }
    }

    // QoS accounting (identical closed forms to DeviceEngine::step_epoch).
    FleetEpochPoint* ep =
        config_.record_epochs ? &r.epoch_series[e] : nullptr;
    for (std::size_t d = first; d < last; ++d) {
      const std::size_t li = d - first;
      const double epoch_served = served_rate[li] * timing_.epoch_s;
      const double epoch_demand_cap = demand_rate[li] * timing_.epoch_s;
      served_[d] += epoch_served;
      demand_[d] += epoch_demand_cap;
      const bool violated = epoch_served < epoch_demand_cap * kQosSlack;
      if (violated) ++violations_[d];
      if (ep) {
        ep->energy_j += p_total[li];
        ep->served += epoch_served;
        ep->demand += epoch_demand_cap;
        if (violated) ++ep->violations;
      }
    }
    if (ep) {
      ep->time_s = static_cast<double>(e + 1) * timing_.epoch_s;
      ep->energy_j *= timing_.epoch_s;  // watts accumulated -> joules
    }

    // Decision: bin every cluster slot's observation, pick the whole
    // block's actions with one batched argmax, then gate by the throttle.
    for (std::size_t d = first; d < last; ++d) {
      const std::size_t li = d - first;
      const Archetype& ar = archetypes_[arch_[d]];
      for (std::size_t c = 0; c < kMaxClusters; ++c) {
        const std::size_t i = d * kMaxClusters + c;
        const ArchetypeCluster& ac = ar.clusters[c];
        states[li * kMaxClusters + c] =
            cluster_state(util_[i], temp_c_[i], ac.opp_freq_bin[opp_[i]]);
        // The throttle latch depends only on the post-tick temperature, not
        // on the chosen action, so it folds into this same sweep instead of
        // paying a second pass over temp_c_.
        throttled_[i] = update_throttle(throttled_[i] != 0, temp_c_[i],
                                        ac.trip_temp_c, ac.clear_temp_c)
                            ? 1
                            : 0;
      }
    }
    policy_.greedy_batch(states.data(), slots, actions.data());
    for (std::size_t d = first; d < last; ++d) {
      const std::size_t li = d - first;
      const Archetype& ar = archetypes_[arch_[d]];
      for (std::size_t c = 0; c < kMaxClusters; ++c) {
        const std::size_t i = d * kMaxClusters + c;
        opp_[i] = apply_action(opp_[i], actions[li * kMaxClusters + c],
                               ar.clusters[c], throttled_[i] != 0);
      }
    }
  }

  // Block totals, accumulated in device order.
  for (std::size_t d = first; d < last; ++d) {
    r.energy_j += energy_j_[d];
    r.served += served_[d];
    r.demand += demand_[d];
    r.violations += violations_[d];
    if (battery_j_[d] <= 0.0) ++r.battery_depleted;
    DeviceOutcome o;
    o.energy_j = energy_j_[d];
    o.served = served_[d];
    o.demand = demand_[d];
    o.violations = violations_[d];
    o.battery_j = battery_j_[d];
    const std::size_t active = archetypes_[arch_[d]].cluster_count;
    for (std::size_t c = 0; c < active; ++c) {
      const std::size_t i = d * kMaxClusters + c;
      o.util[c] = util_[i];
      o.temp_c[c] = temp_c_[i];
      o.opp[c] = opp_[i];
    }
    const double eps = o.energy_per_served();
    r.energy_per_served_sum += eps;
    r.eps_hist->observe(eps);
    if (outcomes) (*outcomes)[d] = o;
  }
  return r;
}

FleetResult FleetEngine::run() {
  reset_state();

  FleetResult result;
  result.devices = config_.devices;
  result.epochs = timing_.epochs;
  result.ticks_per_epoch = timing_.ticks_per_epoch;
  result.device_ticks = static_cast<std::uint64_t>(config_.devices) *
                        timing_.epochs * timing_.ticks_per_epoch;
  if (config_.record_devices) result.device_outcomes.resize(config_.devices);
  std::vector<DeviceOutcome>* outcomes =
      config_.record_devices ? &result.device_outcomes : nullptr;

  // One farm task per block. Tasks write disjoint SoA slices and their own
  // scratch; partial aggregates come back through run_ordered in block
  // order, so the merge below is the same fp reduction at any --jobs.
  std::vector<std::function<BlockResult()>> tasks;
  for (std::size_t first = 0; first < config_.devices;
       first += config_.block_size) {
    const std::size_t last =
        std::min(config_.devices, first + config_.block_size);
    tasks.push_back(
        [this, first, last, outcomes] { return run_block(first, last, outcomes); });
  }
  std::unique_ptr<core::runfarm::ThreadPool> pool;
  if (jobs_ > 1) pool = std::make_unique<core::runfarm::ThreadPool>(jobs_);
  std::vector<BlockResult> blocks = core::runfarm::run_ordered<BlockResult>(
      pool ? pool.get() : nullptr, tasks);

  obs::Histogram eps_hist(energy_per_served_bounds());
  double eps_sum = 0.0;
  if (config_.record_epochs) result.epoch_series.resize(timing_.epochs);
  for (const BlockResult& b : blocks) {
    result.energy_j += b.energy_j;
    result.served += b.served;
    result.demand += b.demand;
    result.violation_epochs += b.violations;
    result.battery_depleted += b.battery_depleted;
    eps_sum += b.energy_per_served_sum;
    eps_hist.merge(*b.eps_hist);
    for (std::size_t e = 0; e < b.epoch_series.size(); ++e) {
      FleetEpochPoint& p = result.epoch_series[e];
      p.time_s = b.epoch_series[e].time_s;
      p.energy_j += b.epoch_series[e].energy_j;
      p.served += b.epoch_series[e].served;
      p.demand += b.epoch_series[e].demand;
      p.violations += b.epoch_series[e].violations;
    }
  }
  const double device_epochs =
      static_cast<double>(config_.devices) * static_cast<double>(timing_.epochs);
  result.violation_rate =
      static_cast<double>(result.violation_epochs) / device_epochs;
  result.energy_per_served_mean =
      eps_sum / static_cast<double>(config_.devices);
  result.energy_per_served_p50 = eps_hist.percentile(0.50);
  result.energy_per_served_p95 = eps_hist.percentile(0.95);
  result.energy_per_served_p99 = eps_hist.percentile(0.99);

  if (metrics_) {
    metrics_->counter("fleet.devices").inc(config_.devices);
    metrics_->counter("fleet.device_ticks").inc(result.device_ticks);
    metrics_->counter("fleet.violation_epochs").inc(result.violation_epochs);
    metrics_->counter("fleet.battery_depleted").inc(result.battery_depleted);
    metrics_->gauge("fleet.energy_j").set(result.energy_j);
    metrics_->gauge("fleet.violation_rate").set(result.violation_rate);
    metrics_->histogram("fleet.energy_per_served", energy_per_served_bounds())
        .merge(eps_hist);
  }
  return result;
}

}  // namespace pmrl::fleet
