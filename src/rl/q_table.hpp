#pragma once
// Dense tabular Q-function with deterministic argmax, visit counting, and
// CSV (de)serialization for checkpointing trained policies.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pmrl::rl {

/// Q(s, a) storage: row-major [state][action].
class QTable {
 public:
  QTable(std::size_t states, std::size_t actions, double initial_value = 0.0);

  std::size_t states() const { return states_; }
  std::size_t actions() const { return actions_; }

  double get(std::size_t state, std::size_t action) const;
  void set(std::size_t state, std::size_t action, double value);

  /// Greedy action for a state; ties break toward the lowest action index
  /// (deterministic, and matches the hardware comparator tree).
  std::size_t argmax(std::size_t state) const;
  /// Value of the greedy action (single scan; same result as
  /// get(state, argmax(state))).
  double max_value(std::size_t state) const;

  /// Row-major [state][action] storage, for batched kernels
  /// (rl/batch_argmax.hpp).
  const double* data() const { return values_.data(); }

  /// Visit bookkeeping (updated by agents on learn()).
  void record_visit(std::size_t state, std::size_t action);
  std::size_t visits(std::size_t state, std::size_t action) const;
  /// Overwrites one visit count (saturating at the counter width) — used
  /// when merging per-actor training deltas so the merged table carries the
  /// fleet-wide visit totals.
  void set_visits(std::size_t state, std::size_t action, std::uint64_t count);
  /// Number of (s, a) pairs visited at least once.
  std::size_t visited_pairs() const;
  /// Number of states with at least one visited action.
  std::size_t visited_states() const;

  void fill(double value);

  /// CSV: one row per state, `actions` columns.
  void save(std::ostream& out) const;
  /// Parses a CSV produced by save(); throws std::runtime_error on shape
  /// mismatch.
  static QTable load(std::istream& in);

 private:
  std::size_t index(std::size_t state, std::size_t action) const;
  std::size_t states_;
  std::size_t actions_;
  std::vector<double> values_;
  std::vector<std::uint32_t> visit_counts_;
};

}  // namespace pmrl::rl
