#pragma once
// Training loop for the RL policy: repeated simulated episodes across the
// mobile scenarios with a decaying exploration schedule. Produces the
// per-episode learning curve (energy/QoS, violation rate, reward) that
// bench_learning_curve reports.

#include <vector>

#include "core/engine.hpp"
#include "rl/rl_governor.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::rl {

/// Training schedule. The per-episode scenario and workload seed are pure
/// functions of the episode index (episode_kind/episode_seed below), so a
/// distributed trainer that shards episodes across actors reproduces the
/// serial trainer's exact global schedule chunk by chunk.
struct TrainerConfig {
  std::size_t episodes = 60;
  /// Scenarios rotated round-robin across episodes; empty means "all six".
  std::vector<workload::ScenarioKind> scenarios;
  /// Base seed for workload generation.
  std::uint64_t workload_seed = 42;
  /// If true each episode uses a different workload seed (base + episode),
  /// preventing the agent from memorizing one job sequence.
  bool vary_seed_per_episode = true;

  /// Scenario list with the empty-means-all-six default applied.
  std::vector<workload::ScenarioKind> resolved_scenarios() const;
  /// Scenario of episode `episode` under the round-robin rotation.
  workload::ScenarioKind episode_kind(std::size_t episode) const;
  /// Workload seed of episode `episode` (base + episode when varying).
  std::uint64_t episode_seed(std::size_t episode) const;
};

/// Outcome of one training episode.
struct EpisodeResult {
  std::size_t episode = 0;
  std::string scenario;
  double energy_per_qos = 0.0;
  double violation_rate = 0.0;
  double energy_j = 0.0;
  double mean_reward = 0.0;
  double epsilon = 0.0;
};

/// Runs training episodes; the governor's Q-table accumulates across them.
class Trainer {
 public:
  Trainer(core::SimEngine& engine, RlGovernor& governor,
          TrainerConfig config = {});

  /// Runs all configured episodes and returns the learning curve.
  std::vector<EpisodeResult> train();

  /// Runs a single episode on the given scenario kind; exposed for
  /// fine-grained harnesses (adaptation bench).
  EpisodeResult train_episode(std::size_t episode_index,
                              workload::ScenarioKind kind);

 private:
  core::SimEngine& engine_;
  RlGovernor& governor_;
  TrainerConfig config_;
};

}  // namespace pmrl::rl
