#include "rl/policy_io.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/crc32.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"

namespace pmrl::rl {

namespace {
constexpr char kMagic[] = "pmrl-policy";
constexpr unsigned kFormatVersion = 2;
/// Sanity bound on |Q|: rewards live in roughly [-10, 0] and gamma < 1, so
/// any stored magnitude beyond this is corruption, not learning.
constexpr double kMaxAbsQ = 1e6;

[[noreturn]] void fail(PolicyLoadErrorKind kind, const std::string& detail) {
  throw PolicyLoadError(
      kind, std::string("policy checkpoint: ") +
                policy_load_error_kind_name(kind) + ": " + detail);
}

/// Strict unsigned parse of one comma-separated field; rejects empty,
/// non-numeric, and trailing-garbage fields.
std::size_t parse_size_field(const std::string& line, std::size_t& pos,
                             const char* what) {
  const std::size_t next = line.find(',', pos);
  const std::size_t end = next == std::string::npos ? line.size() : next;
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(line.data() + pos, line.data() + end, value);
  if (ec != std::errc{} || ptr != line.data() + end || pos == end) {
    fail(PolicyLoadErrorKind::BadField,
         std::string("expected unsigned integer for ") + what + ", got '" +
             line.substr(pos, end - pos) + "'");
  }
  pos = next == std::string::npos ? line.size() : next + 1;
  return value;
}

/// Strict double parse of one field; rejects non-numeric and non-finite.
double parse_q_field(const std::string& line, std::size_t begin,
                     std::size_t end, std::size_t row) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(line.data() + begin, line.data() + end, value);
  if (ec != std::errc{} || ptr != line.data() + end || begin == end) {
    fail(PolicyLoadErrorKind::BadField,
         "non-numeric Q-value '" + line.substr(begin, end - begin) +
             "' in row " + std::to_string(row));
  }
  if (!std::isfinite(value) || std::fabs(value) > kMaxAbsQ) {
    fail(PolicyLoadErrorKind::NonFinite,
         "non-finite or out-of-range Q-value in row " + std::to_string(row));
  }
  return value;
}
}  // namespace

const char* policy_load_error_kind_name(PolicyLoadErrorKind kind) {
  switch (kind) {
    case PolicyLoadErrorKind::BadHeader: return "bad header";
    case PolicyLoadErrorKind::UnsupportedVersion: return "unsupported version";
    case PolicyLoadErrorKind::BadField: return "bad field";
    case PolicyLoadErrorKind::ShapeMismatch: return "shape mismatch";
    case PolicyLoadErrorKind::Truncated: return "truncated";
    case PolicyLoadErrorKind::NonFinite: return "non-finite value";
    case PolicyLoadErrorKind::ChecksumMismatch: return "checksum mismatch";
  }
  return "unknown";
}

void save_policy(const RlGovernor& governor, std::ostream& out) {
  std::string payload;
  payload += kMagic;
  payload += ',';
  payload += std::to_string(kFormatVersion);
  payload += ',';
  payload += std::to_string(governor.agent_count());
  payload += ',';
  payload += std::to_string(governor.agent(0).state_count());
  payload += ',';
  payload += std::to_string(governor.agent(0).action_count());
  payload += '\n';
  char buf[64];
  for (std::size_t i = 0; i < governor.agent_count(); ++i) {
    const QAgent& agent = governor.agent(i);
    for (std::size_t s = 0; s < agent.state_count(); ++s) {
      for (std::size_t a = 0; a < agent.action_count(); ++a) {
        if (a) payload += ',';
        std::snprintf(buf, sizeof buf, "%.17g", agent.q_value(s, a));
        payload += buf;
      }
      payload += '\n';
    }
  }
  out << payload << util::crc32_footer_line(crc32(payload));
}

void load_policy(RlGovernor& governor, std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    fail(PolicyLoadErrorKind::BadHeader, "empty stream");
  }
  const std::string magic_prefix = std::string(kMagic) + ',';
  if (header.rfind(magic_prefix, 0) != 0) {
    fail(PolicyLoadErrorKind::BadHeader, "missing '" + magic_prefix +
                                             "' magic (got '" +
                                             header.substr(0, 24) + "')");
  }
  std::size_t pos = magic_prefix.size();
  const std::size_t version = parse_size_field(header, pos, "version");
  if (version < 1 || version > kFormatVersion) {
    fail(PolicyLoadErrorKind::UnsupportedVersion,
         "version " + std::to_string(version) + " (supported: 1.." +
             std::to_string(kFormatVersion) + ")");
  }
  const std::size_t agents = parse_size_field(header, pos, "agent count");
  const std::size_t states = parse_size_field(header, pos, "state count");
  const std::size_t actions = parse_size_field(header, pos, "action count");
  if (agents != governor.agent_count() ||
      states != governor.agent(0).state_count() ||
      actions != governor.agent(0).action_count()) {
    fail(PolicyLoadErrorKind::ShapeMismatch,
         "checkpoint " + std::to_string(agents) + "x" +
             std::to_string(states) + "x" + std::to_string(actions) +
             ", governor " + std::to_string(governor.agent_count()) + "x" +
             std::to_string(governor.agent(0).state_count()) + "x" +
             std::to_string(governor.agent(0).action_count()));
  }
  if (agents == 0 || states == 0 || actions == 0) {
    fail(PolicyLoadErrorKind::BadHeader, "zero-sized table dimensions");
  }

  // Parse the full payload into a staging buffer first; the governor is
  // touched only after every row, value, and the checksum have passed.
  std::uint32_t crc = crc32_update(kCrc32Init, header);
  crc = crc32_update(crc, "\n", 1);
  std::vector<double> values;
  values.reserve(agents * states * actions);
  std::string line;
  for (std::size_t row = 0; row < agents * states; ++row) {
    if (!std::getline(in, line)) {
      fail(PolicyLoadErrorKind::Truncated,
           "ends after " + std::to_string(row) + " of " +
               std::to_string(agents * states) + " rows");
    }
    crc = crc32_update(crc, line);
    crc = crc32_update(crc, "\n", 1);
    std::size_t cursor = 0;
    for (std::size_t a = 0; a < actions; ++a) {
      const std::size_t next = line.find(',', cursor);
      if (a + 1 < actions && next == std::string::npos) {
        fail(PolicyLoadErrorKind::Truncated,
             "row " + std::to_string(row) + " has fewer than " +
                 std::to_string(actions) + " columns");
      }
      const std::size_t end = next == std::string::npos ? line.size() : next;
      values.push_back(parse_q_field(line, cursor, end, row));
      cursor = next == std::string::npos ? line.size() : next + 1;
    }
  }

  if (version >= 2) {
    std::string footer;
    if (!std::getline(in, footer)) {
      fail(PolicyLoadErrorKind::Truncated, "missing crc32 footer");
    }
    std::uint32_t stored = 0;
    if (!util::parse_crc32_footer_line(footer, stored)) {
      fail(PolicyLoadErrorKind::BadField,
           "expected crc32 footer, got '" + footer.substr(0, 24) + "'");
    }
    const std::uint32_t computed = crc32_final(crc);
    if (stored != computed) {
      char msg[64];
      std::snprintf(msg, sizeof msg, "stored %08x, computed %08x", stored,
                    computed);
      fail(PolicyLoadErrorKind::ChecksumMismatch, msg);
    }
  } else {
    PMRL_WARN("policy_io") << "loading legacy v1 checkpoint (no crc32 "
                              "footer); corruption cannot be detected";
  }

  // Validated: commit into the governor.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < agents; ++i) {
    QAgent& agent = governor.agent(i);
    for (std::size_t s = 0; s < states; ++s) {
      for (std::size_t a = 0; a < actions; ++a) {
        agent.set_q_value(s, a, values[idx++]);
      }
    }
  }
}

bool try_load_policy(RlGovernor& governor, std::istream& in,
                     std::string* error) {
  try {
    load_policy(governor, in);
    return true;
  } catch (const PolicyLoadError& e) {
    if (error) *error = e.what();
    return false;
  }
}

}  // namespace pmrl::rl
