#include "rl/policy_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace pmrl::rl {

void save_policy(const RlGovernor& governor, std::ostream& out) {
  out << "pmrl-policy,1," << governor.agent_count() << ','
      << governor.agent(0).state_count() << ','
      << governor.agent(0).action_count() << '\n';
  char buf[64];
  for (std::size_t i = 0; i < governor.agent_count(); ++i) {
    const QAgent& agent = governor.agent(i);
    for (std::size_t s = 0; s < agent.state_count(); ++s) {
      for (std::size_t a = 0; a < agent.action_count(); ++a) {
        if (a) out << ',';
        std::snprintf(buf, sizeof buf, "%.17g", agent.q_value(s, a));
        out << buf;
      }
      out << '\n';
    }
  }
}

namespace {
std::size_t parse_field(const std::string& line, std::size_t& pos) {
  const std::size_t next = line.find(',', pos);
  const std::string field = line.substr(
      pos, next == std::string::npos ? std::string::npos : next - pos);
  pos = next == std::string::npos ? line.size() : next + 1;
  return static_cast<std::size_t>(std::stoul(field));
}
}  // namespace

void load_policy(RlGovernor& governor, std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || header.rfind("pmrl-policy,1,", 0) != 0) {
    throw std::runtime_error("policy checkpoint: bad header");
  }
  std::size_t pos = std::string("pmrl-policy,1,").size();
  const std::size_t agents = parse_field(header, pos);
  const std::size_t states = parse_field(header, pos);
  const std::size_t actions = parse_field(header, pos);
  if (agents != governor.agent_count() ||
      states != governor.agent(0).state_count() ||
      actions != governor.agent(0).action_count()) {
    throw std::runtime_error(
        "policy checkpoint: shape mismatch (checkpoint " +
        std::to_string(agents) + "x" + std::to_string(states) + "x" +
        std::to_string(actions) + ", governor " +
        std::to_string(governor.agent_count()) + "x" +
        std::to_string(governor.agent(0).state_count()) + "x" +
        std::to_string(governor.agent(0).action_count()) + ")");
  }
  std::string line;
  for (std::size_t i = 0; i < agents; ++i) {
    QAgent& agent = governor.agent(i);
    for (std::size_t s = 0; s < states; ++s) {
      if (!std::getline(in, line)) {
        throw std::runtime_error("policy checkpoint: truncated");
      }
      std::size_t cursor = 0;
      for (std::size_t a = 0; a < actions; ++a) {
        const std::size_t next = line.find(',', cursor);
        if (a + 1 < actions && next == std::string::npos) {
          throw std::runtime_error("policy checkpoint: short row");
        }
        const std::string field = line.substr(
            cursor,
            next == std::string::npos ? std::string::npos : next - cursor);
        agent.set_q_value(s, a, std::stod(field));
        cursor = next == std::string::npos ? line.size() : next + 1;
      }
    }
  }
}

}  // namespace pmrl::rl
