#include "rl/reward.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmrl::rl {

RewardFunction::RewardFunction(RewardConfig config) : config_(config) {
  if (config_.power_ref_w <= 0.0) {
    throw std::invalid_argument("power_ref_w must be positive");
  }
  if (config_.lambda_qos < 0.0) {
    throw std::invalid_argument("lambda_qos must be >= 0");
  }
}

double RewardFunction::energy_term(
    const governors::PolicyObservation& obs) const {
  if (obs.epoch_duration_s <= 0.0) return 0.0;
  const double norm =
      obs.epoch_energy_j / (config_.power_ref_w * obs.epoch_duration_s);
  return -std::min(norm, 2.0);  // clip runaway readings
}

double RewardFunction::qos_deficit(
    const governors::PolicyObservation& obs) const {
  if (obs.epoch_releases == 0) return 0.0;
  // Quality actually delivered vs quality owed this epoch. Completions can
  // exceed releases in an epoch (backlog draining), so clamp at 0 deficit.
  const double owed = static_cast<double>(obs.epoch_releases);
  const double deficit = (owed - obs.epoch_quality) / owed;
  return std::clamp(deficit, 0.0, 1.0);
}

double RewardFunction::cluster_energy_term(
    const governors::PolicyObservation& obs, std::size_t cluster) const {
  if (obs.epoch_duration_s <= 0.0 ||
      cluster >= obs.cluster_feedback.size() ||
      cluster >= obs.soc.clusters.size()) {
    return 0.0;
  }
  const double ref_w = obs.soc.clusters[cluster].max_power_w;
  if (ref_w <= 0.0) return 0.0;
  const double norm = obs.cluster_feedback[cluster].epoch_energy_j /
                      (ref_w * obs.epoch_duration_s);
  return -std::min(norm, 2.0);
}

double RewardFunction::cluster_qos_deficit(
    const governors::PolicyObservation& obs, std::size_t cluster) const {
  if (cluster >= obs.cluster_feedback.size()) return 0.0;
  const auto& fb = obs.cluster_feedback[cluster];
  // Overdue queued jobs count as owed-and-undelivered: a drowning cluster
  // must feel the full penalty even though its late jobs have not completed.
  const double overdue =
      cluster < obs.soc.clusters.size()
          ? static_cast<double>(obs.soc.clusters[cluster].overdue_jobs)
          : 0.0;
  const double owed =
      static_cast<double>(fb.epoch_deadline_completed) + overdue;
  if (owed <= 0.0) return 0.0;
  const double deficit = (owed - fb.epoch_deadline_quality) / owed;
  return std::clamp(deficit, 0.0, 1.0);
}

double RewardFunction::cluster_reward(const governors::PolicyObservation& obs,
                                      std::size_t cluster,
                                      bool opp_changed) const {
  double reward = cluster_energy_term(obs, cluster) -
                  config_.lambda_qos * cluster_qos_deficit(obs, cluster);
  if (opp_changed) reward -= config_.transition_penalty;
  return reward;
}

double RewardFunction::operator()(const governors::PolicyObservation& obs,
                                  bool opp_changed) const {
  double reward = energy_term(obs) - config_.lambda_qos * qos_deficit(obs);
  if (opp_changed) reward -= config_.transition_penalty;
  return reward;
}

}  // namespace pmrl::rl
