#pragma once
// State featurization/discretization of the policy observation. The paper's
// policy "predicts a system's characteristics": the state captures, per
// cluster, the utilization level and the current OPP position, plus a
// system-wide QoS-pressure level — discretized into a compact index for the
// tabular Q-learning agent (and for the hardware Q-table address).

#include <cstddef>
#include <vector>

#include "governors/governor.hpp"

namespace pmrl::rl {

/// Discretization configuration.
///
/// Defaults suit the factored (per-domain) policy: when a cluster's OPP
/// table fits within `opp_bins` the OPP index is encoded *exactly* (no
/// binning), which the per-domain policy needs — coarse OPP bins alias the
/// low indices together and the greedy policy then parks mid-table instead
/// of descending to the floor. The joint-policy configuration used for the
/// hardware experiment narrows this to 4x4x4 per cluster (1024 joint
/// states, the hardware Q-memory depth).
struct StateConfig {
  std::size_t util_bins = 4;
  std::size_t opp_bins = 20;
  std::size_t qos_bins = 3;
  /// Upper bound of the top QoS-pressure bin: violations per released
  /// deadline job in the epoch at or above this saturate the bin.
  double qos_pressure_cap = 0.30;
};

/// Encodes observations into dense state indices.
class StateEncoder {
 public:
  StateEncoder(StateConfig config, std::size_t cluster_count);

  /// Total number of states (Q-table depth).
  std::size_t state_count() const { return state_count_; }
  std::size_t cluster_count() const { return cluster_count_; }
  const StateConfig& config() const { return config_; }

  /// Maps an observation to a state index in [0, state_count()).
  std::size_t encode(const governors::PolicyObservation& obs) const;

  /// Per-domain (factored) encoding: the state of one cluster only —
  /// its utilization bin, OPP bin, and its *own* QoS-pressure bin (from the
  /// per-cluster feedback). Range [0, cluster_state_count()).
  std::size_t encode_cluster(const governors::PolicyObservation& obs,
                             std::size_t cluster) const;

  /// Number of per-domain states (util_bins * opp_bins * qos_bins).
  std::size_t cluster_state_count() const {
    return config_.util_bins * config_.opp_bins * config_.qos_bins;
  }

  /// QoS-pressure bin of one cluster: violations per completed deadline job
  /// on that cluster during the epoch.
  std::size_t cluster_qos_bin(const governors::PolicyObservation& obs,
                              std::size_t cluster) const;

  /// Individual feature extractors (exposed for tests and for the hardware
  /// state-packing model, which concatenates exactly these fields).
  std::size_t util_bin(double util) const;
  std::size_t opp_bin(std::size_t opp_index, std::size_t opp_count) const;
  std::size_t qos_bin(const governors::PolicyObservation& obs) const;

 private:
  StateConfig config_;
  std::size_t cluster_count_;
  std::size_t state_count_;
};

}  // namespace pmrl::rl
