#include "rl/fixed_agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rl/batch_argmax.hpp"

namespace pmrl::rl {

namespace {
std::uint32_t epsilon_to_threshold(double epsilon) {
  const double clamped = std::clamp(epsilon, 0.0, 1.0);
  return static_cast<std::uint32_t>(std::lround(clamped * 65536.0));
}
}  // namespace

FixedPointQAgent::FixedPointQAgent(FixedAgentConfig config, std::size_t states,
                                   std::size_t actions)
    : config_(config),
      format_(config.total_bits, config.frac_bits),
      states_(states),
      actions_(actions),
      q_raw_(states * actions,
             FixedFormat(config.total_bits, config.frac_bits)
                 .from_double(config.learning.initial_q)),
      lfsr_(static_cast<std::uint16_t>(config.learning.seed)),
      alpha_raw_(format_.from_double(config.learning.alpha)),
      gamma_raw_(format_.from_double(config.learning.gamma)),
      epsilon_threshold_(epsilon_to_threshold(config.learning.epsilon_start)) {
  if (states == 0 || actions == 0) {
    throw std::invalid_argument("fixed agent dimensions must be positive");
  }
  if (alpha_raw_ == 0) {
    throw std::invalid_argument(
        "alpha quantizes to zero in the chosen format; add fractional bits");
  }
}

std::size_t FixedPointQAgent::index(std::size_t state,
                                    std::size_t action) const {
  if (state >= states_ || action >= actions_) {
    throw std::out_of_range("fixed agent index");
  }
  return state * actions_ + action;
}

std::int64_t FixedPointQAgent::q_raw(std::size_t state,
                                     std::size_t action) const {
  return q_raw_[index(state, action)];
}

double FixedPointQAgent::q_value(std::size_t state, std::size_t action) const {
  return format_.to_double(q_raw(state, action));
}

std::size_t FixedPointQAgent::greedy_action(std::size_t state) const {
  const std::size_t base = index(state, 0);
  std::size_t best = 0;
  std::int64_t best_raw =
      bias_raw_.empty() ? q_raw_[base]
                        : format_.add(q_raw_[base], bias_raw_[0]);
  for (std::size_t a = 1; a < actions_; ++a) {
    const std::int64_t v =
        bias_raw_.empty() ? q_raw_[base + a]
                          : format_.add(q_raw_[base + a], bias_raw_[a]);
    if (v > best_raw) {
      best_raw = v;
      best = a;
    }
  }
  return best;
}

void FixedPointQAgent::greedy_actions(const std::uint64_t* states,
                                      std::size_t count,
                                      std::uint32_t* actions) const {
  batch_argmax_i64(q_raw_.data(), actions_,
                   bias_raw_.empty() ? nullptr : bias_raw_.data(),
                   format_.raw_min(), format_.raw_max(), states, count,
                   actions);
}

void FixedPointQAgent::set_q_value(std::size_t state, std::size_t action,
                                   double value) {
  q_raw_[index(state, action)] = format_.from_double(value);
}

void FixedPointQAgent::set_action_bias(std::vector<double> bias) {
  if (!bias.empty() && bias.size() != actions_) {
    throw std::invalid_argument("action bias size mismatch");
  }
  bias_raw_.clear();
  bias_raw_.reserve(bias.size());
  for (double b : bias) bias_raw_.push_back(format_.from_double(b));
}

std::size_t FixedPointQAgent::select_action(std::size_t state) {
  if (!frozen_ && lfsr_.below(epsilon_threshold_)) {
    return lfsr_.next_mod(static_cast<std::uint32_t>(actions_));
  }
  return greedy_action(state);
}

void FixedPointQAgent::learn(std::size_t state, std::size_t action,
                             double reward, std::size_t next_state) {
  if (frozen_) return;
  const std::int64_t reward_raw = format_.from_double(reward);
  // TD target uses the unbiased max (the selection prior only steers the
  // behaviour policy, not the value estimates).
  std::int64_t max_next = q_raw_[index(next_state, 0)];
  for (std::size_t a = 1; a < actions_; ++a) {
    max_next = std::max(max_next, q_raw_[index(next_state, a)]);
  }
  // target = r + gamma * max_a' Q(s', a')
  const std::int64_t target =
      format_.add(reward_raw, format_.mul(gamma_raw_, max_next));
  const std::int64_t old_q = q_raw_[index(state, action)];
  // Q += alpha * (target - Q), exactly as the RTL update stage computes it.
  const std::int64_t delta =
      format_.mul(alpha_raw_, format_.sub(target, old_q));
  q_raw_[index(state, action)] = format_.add(old_q, delta);
}

void FixedPointQAgent::begin_episode() {
  ++episodes_;
  const auto& lc = config_.learning;
  double eps;
  if (lc.epsilon_decay_episodes == 0) {
    eps = lc.epsilon_end;
  } else {
    const double progress =
        std::min(1.0, static_cast<double>(episodes_) /
                          static_cast<double>(lc.epsilon_decay_episodes));
    eps = lc.epsilon_start + (lc.epsilon_end - lc.epsilon_start) * progress;
  }
  epsilon_threshold_ = epsilon_to_threshold(eps);
}

double FixedPointQAgent::epsilon() const {
  return static_cast<double>(epsilon_threshold_) / 65536.0;
}

}  // namespace pmrl::rl
