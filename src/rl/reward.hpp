#pragma once
// Reward shaping. The paper's objective is lower energy per unit QoS
// "without compromising the user satisfaction": the reward combines a
// normalized energy term with a weighted QoS-deficit penalty, so the agent
// learns the lowest operating points that still meet deadlines.

#include "governors/governor.hpp"

namespace pmrl::rl {

/// Reward configuration.
struct RewardConfig {
  /// Power that normalizes the energy term (W). Chosen near the SoC's
  /// *typical* sustained power rather than its worst case so that the
  /// energy differences between neighbouring OPPs remain visible to the
  /// agent against QoS-penalty noise.
  double power_ref_w = 2.0;
  /// Weight of the QoS-deficit penalty relative to the energy term. Higher
  /// values trade energy savings for stricter deadline adherence (ablated
  /// in bench_ablation_reward).
  double lambda_qos = 2.0;
  /// Small penalty per epoch in which the domain's OPP changed: DVFS
  /// relocks stall the domain ~50 us and thrashing between neighbouring
  /// OPPs buys nothing, so indifferent states should learn to hold. Far
  /// below any real energy/QoS signal, so legitimate tracking moves are
  /// unaffected (0 disables).
  double transition_penalty = 0.01;
};

/// Computes the reward earned by the previous epoch's action.
class RewardFunction {
 public:
  explicit RewardFunction(RewardConfig config);

  /// Reward from the epoch feedback carried by the observation.
  /// `opp_changed` reports whether the previous action moved any OPP.
  double operator()(const governors::PolicyObservation& obs,
                    bool opp_changed) const;

  /// The energy component alone (negated normalized energy), exposed for
  /// tests/diagnostics.
  double energy_term(const governors::PolicyObservation& obs) const;

  /// The QoS-deficit component alone (>= 0: fraction of quality not
  /// delivered this epoch).
  double qos_deficit(const governors::PolicyObservation& obs) const;

  // ---- Per-domain (factored) reward ----------------------------------------

  /// Reward for one cluster: its own epoch energy normalized by its
  /// worst-case power, minus lambda times its own QoS deficit.
  double cluster_reward(const governors::PolicyObservation& obs,
                        std::size_t cluster, bool opp_changed) const;

  /// Normalized energy term of one cluster (<= 0).
  double cluster_energy_term(const governors::PolicyObservation& obs,
                             std::size_t cluster) const;

  /// QoS deficit among deadline jobs completed on one cluster (0..1).
  double cluster_qos_deficit(const governors::PolicyObservation& obs,
                             std::size_t cluster) const;

  const RewardConfig& config() const { return config_; }

 private:
  RewardConfig config_;
};

}  // namespace pmrl::rl
