#include "rl/action.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmrl::rl {

ActionSpace::ActionSpace(ActionConfig config, std::size_t cluster_count)
    : config_(config), cluster_count_(cluster_count) {
  if (cluster_count_ == 0) {
    throw std::invalid_argument("action space needs >= 1 cluster");
  }
  if (config_.step == 0) throw std::invalid_argument("action step must be >=1");
  const int s = static_cast<int>(config_.step);
  // "hold" is deliberately move 0: joint action 0 is then (hold, hold, ...),
  // which is what Q-ties — and therefore never-visited states — resolve to
  // in both the software argmax and the hardware comparator tree.
  moves_ = {0, -s, s};
  if (config_.jump > 0) {
    moves_.push_back(static_cast<int>(config_.jump));
  }
  action_count_ = 1;
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    action_count_ *= moves_.size();
  }
}

int ActionSpace::delta(std::size_t action, std::size_t cluster) const {
  if (action >= action_count_) throw std::out_of_range("action index");
  if (cluster >= cluster_count_) throw std::out_of_range("cluster index");
  // Mixed-radix decode: cluster 0 is the least-significant digit.
  std::size_t rest = action;
  for (std::size_t c = 0; c < cluster; ++c) rest /= moves_.size();
  return moves_[rest % moves_.size()];
}

void ActionSpace::apply(std::size_t action,
                        const governors::PolicyObservation& obs,
                        governors::OppRequest& request) const {
  if (obs.soc.clusters.size() != cluster_count_) {
    throw std::invalid_argument("action apply: cluster count mismatch");
  }
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    const auto& cluster = obs.soc.clusters[c];
    const int current = static_cast<int>(cluster.opp_index);
    const int top = static_cast<int>(cluster.opp_count) - 1;
    const int next = std::clamp(current + delta(action, c), 0, top);
    request[c] = static_cast<std::size_t>(next);
  }
}

std::size_t ActionSpace::hold_action() const {
  return 0;  // move 0 of every digit is "hold" by construction
}

int ActionSpace::move_value(std::size_t move_index) const {
  if (move_index >= moves_.size()) throw std::out_of_range("move index");
  return moves_[move_index];
}

void ActionSpace::apply_move(std::size_t move_index,
                             const governors::PolicyObservation& obs,
                             std::size_t cluster,
                             governors::OppRequest& request) const {
  if (cluster >= obs.soc.clusters.size()) {
    throw std::out_of_range("apply_move: cluster");
  }
  const auto& ct = obs.soc.clusters[cluster];
  const int current = static_cast<int>(ct.opp_index);
  const int top = static_cast<int>(ct.opp_count) - 1;
  const int next = std::clamp(current + move_value(move_index), 0, top);
  request[cluster] = static_cast<std::size_t>(next);
}

}  // namespace pmrl::rl
