#include "rl/trainer.hpp"

#include <stdexcept>

namespace pmrl::rl {

std::vector<workload::ScenarioKind> TrainerConfig::resolved_scenarios()
    const {
  return scenarios.empty() ? workload::all_scenario_kinds() : scenarios;
}

workload::ScenarioKind TrainerConfig::episode_kind(std::size_t episode)
    const {
  const auto resolved = resolved_scenarios();
  return resolved[episode % resolved.size()];
}

std::uint64_t TrainerConfig::episode_seed(std::size_t episode) const {
  return vary_seed_per_episode ? workload_seed + episode : workload_seed;
}

Trainer::Trainer(core::SimEngine& engine, RlGovernor& governor,
                 TrainerConfig config)
    : engine_(engine), governor_(governor), config_(std::move(config)) {
  if (config_.scenarios.empty()) {
    config_.scenarios = workload::all_scenario_kinds();
  }
}

EpisodeResult Trainer::train_episode(std::size_t episode_index,
                                     workload::ScenarioKind kind) {
  const std::uint64_t seed = config_.episode_seed(episode_index);
  const auto scenario = workload::make_scenario(kind, seed);
  governor_.begin_episode();
  const core::RunResult run = engine_.run(*scenario, governor_);

  EpisodeResult result;
  result.episode = episode_index;
  result.scenario = run.scenario;
  result.energy_per_qos = run.energy_per_qos;
  result.violation_rate = run.violation_rate;
  result.energy_j = run.energy_j;
  result.mean_reward =
      governor_.run_decisions() > 0
          ? governor_.run_reward() /
                static_cast<double>(governor_.run_decisions())
          : 0.0;
  result.epsilon = governor_.agent().epsilon();
  return result;
}

std::vector<EpisodeResult> Trainer::train() {
  std::vector<EpisodeResult> curve;
  curve.reserve(config_.episodes);
  for (std::size_t e = 0; e < config_.episodes; ++e) {
    const auto kind = config_.scenarios[e % config_.scenarios.size()];
    curve.push_back(train_episode(e, kind));
  }
  return curve;
}

}  // namespace pmrl::rl
