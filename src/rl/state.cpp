#include "rl/state.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmrl::rl {

StateEncoder::StateEncoder(StateConfig config, std::size_t cluster_count)
    : config_(config), cluster_count_(cluster_count) {
  if (config_.util_bins == 0 || config_.opp_bins == 0 ||
      config_.qos_bins == 0) {
    throw std::invalid_argument("state bins must be >= 1");
  }
  if (cluster_count_ == 0) {
    throw std::invalid_argument("state encoder needs >= 1 cluster");
  }
  state_count_ = config_.qos_bins;
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    state_count_ *= config_.util_bins * config_.opp_bins;
  }
}

std::size_t StateEncoder::util_bin(double util) const {
  const double clamped = std::clamp(util, 0.0, 1.0);
  const auto bin = static_cast<std::size_t>(
      clamped * static_cast<double>(config_.util_bins));
  return std::min(bin, config_.util_bins - 1);
}

std::size_t StateEncoder::opp_bin(std::size_t opp_index,
                                  std::size_t opp_count) const {
  if (opp_count <= 1) return 0;
  // Exact encoding when the table fits: every OPP is its own state, so a
  // greedy descent can distinguish "one step down" all the way to index 0.
  if (opp_count <= config_.opp_bins) {
    return std::min(opp_index, config_.opp_bins - 1);
  }
  const double fraction = static_cast<double>(opp_index) /
                          static_cast<double>(opp_count - 1);
  const auto bin = static_cast<std::size_t>(
      fraction * static_cast<double>(config_.opp_bins));
  return std::min(bin, config_.opp_bins - 1);
}

std::size_t StateEncoder::qos_bin(
    const governors::PolicyObservation& obs) const {
  if (config_.qos_bins == 1) return 0;
  double pressure = 0.0;
  if (obs.epoch_releases > 0) {
    pressure = static_cast<double>(obs.epoch_violations) /
               static_cast<double>(obs.epoch_releases);
  }
  const double fraction =
      std::clamp(pressure / config_.qos_pressure_cap, 0.0, 1.0);
  const auto bin = static_cast<std::size_t>(
      fraction * static_cast<double>(config_.qos_bins));
  return std::min(bin, config_.qos_bins - 1);
}

std::size_t StateEncoder::cluster_qos_bin(
    const governors::PolicyObservation& obs, std::size_t cluster) const {
  if (config_.qos_bins == 1) return 0;
  // Pressure counts both completed-late jobs and *overdue queued* jobs —
  // without the latter, a drowning cluster (whose late frames never
  // complete) looks healthy to a completion-only metric.
  const double overdue =
      cluster < obs.soc.clusters.size()
          ? static_cast<double>(obs.soc.clusters[cluster].overdue_jobs)
          : 0.0;
  double violations = overdue;
  double resolved = overdue;
  if (cluster < obs.cluster_feedback.size()) {
    const auto& fb = obs.cluster_feedback[cluster];
    violations += static_cast<double>(fb.epoch_violations);
    resolved += static_cast<double>(fb.epoch_deadline_completed);
  }
  const double pressure = resolved > 0.0 ? violations / resolved : 0.0;
  const double fraction =
      std::clamp(pressure / config_.qos_pressure_cap, 0.0, 1.0);
  const auto bin = static_cast<std::size_t>(
      fraction * static_cast<double>(config_.qos_bins));
  return std::min(bin, config_.qos_bins - 1);
}

std::size_t StateEncoder::encode_cluster(
    const governors::PolicyObservation& obs, std::size_t cluster) const {
  if (cluster >= obs.soc.clusters.size()) {
    throw std::invalid_argument("encode_cluster: cluster out of range");
  }
  const auto& ct = obs.soc.clusters[cluster];
  std::size_t index = cluster_qos_bin(obs, cluster);
  index = index * config_.util_bins + util_bin(ct.util_max);
  index = index * config_.opp_bins + opp_bin(ct.opp_index, ct.opp_count);
  return index;
}

std::size_t StateEncoder::encode(
    const governors::PolicyObservation& obs) const {
  if (obs.soc.clusters.size() != cluster_count_) {
    throw std::invalid_argument("observation cluster count mismatch");
  }
  std::size_t index = qos_bin(obs);
  for (const auto& cluster : obs.soc.clusters) {
    index = index * config_.util_bins + util_bin(cluster.util_max);
    index = index * config_.opp_bins +
            opp_bin(cluster.opp_index, cluster.opp_count);
  }
  return index;
}

}  // namespace pmrl::rl
