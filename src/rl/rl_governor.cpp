#include "rl/rl_governor.hpp"

#include "governors/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace pmrl::rl {

namespace {
std::unique_ptr<QAgent> make_agent(const RlGovernorConfig& config,
                                   std::size_t states, std::size_t actions,
                                   std::uint64_t seed_offset) {
  if (config.backend == AgentBackend::Fixed) {
    FixedAgentConfig fixed;
    fixed.total_bits = config.fixed_total_bits;
    fixed.frac_bits = config.fixed_frac_bits;
    fixed.learning = config.learning;
    fixed.learning.seed += seed_offset;
    return std::make_unique<FixedPointQAgent>(fixed, states, actions);
  }
  QLearningConfig learning = config.learning;
  learning.seed += seed_offset;
  return std::make_unique<QLearningAgent>(learning, states, actions);
}
}  // namespace

RlGovernor::RlGovernor(RlGovernorConfig config, std::size_t cluster_count)
    : config_(config),
      cluster_count_(cluster_count),
      encoder_(config.state, cluster_count),
      actions_(config.action, cluster_count),
      reward_(config.reward) {
  if (config_.structure == PolicyStructure::Joint) {
    agents_.push_back(make_agent(config_, encoder_.state_count(),
                                 actions_.action_count(), 0));
  } else {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      agents_.push_back(make_agent(config_, encoder_.cluster_state_count(),
                                   actions_.moves_per_cluster(), c));
    }
  }
  if (config_.down_bias > 0.0) {
    if (config_.structure == PolicyStructure::Joint) {
      // Joint action: bias proportional to the number of lowering digits.
      std::vector<double> bias(actions_.action_count(), 0.0);
      for (std::size_t a = 0; a < bias.size(); ++a) {
        for (std::size_t c = 0; c < cluster_count_; ++c) {
          if (actions_.delta(a, c) < 0) bias[a] += config_.down_bias;
        }
      }
      agents_.front()->set_action_bias(std::move(bias));
    } else {
      std::vector<double> bias(actions_.moves_per_cluster(), 0.0);
      for (std::size_t m = 0; m < bias.size(); ++m) {
        if (actions_.move_value(m) < 0) bias[m] = config_.down_bias;
      }
      for (auto& agent : agents_) agent->set_action_bias(bias);
    }
  }
}

std::string RlGovernor::name() const {
  return config_.backend == AgentBackend::Fixed ? "rl-fixed" : "rl";
}

void RlGovernor::begin_episode() {
  for (auto& agent : agents_) agent->begin_episode();
}

void RlGovernor::set_frozen(bool frozen) {
  for (auto& agent : agents_) agent->set_frozen(frozen);
}

void RlGovernor::reset(const governors::PolicyObservation&) {
  prev_states_.reset();
  prev_actions_.assign(agents_.size(), 0);
  prev_moved_.assign(agents_.size(), false);
  run_reward_ = 0.0;
  run_decisions_ = 0;
}

void RlGovernor::set_metrics(pmrl::obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  decisions_counter_ = metrics ? &metrics->counter("rl.decisions") : nullptr;
  q_updates_counter_ = metrics ? &metrics->counter("rl.q_updates") : nullptr;
  epsilon_gauge_ = metrics ? &metrics->gauge("rl.epsilon") : nullptr;
}

void RlGovernor::decide(const governors::PolicyObservation& obs,
                        governors::OppRequest& request) {
  if (config_.structure == PolicyStructure::Joint) {
    decide_joint(obs, request);
  } else {
    decide_factored(obs, request);
  }
  ++run_decisions_;
  if (decisions_counter_) decisions_counter_->inc(agents_.size());
  if (epsilon_gauge_) epsilon_gauge_->set(agents_.front()->epsilon());
}

void RlGovernor::decide_joint(const governors::PolicyObservation& obs,
                              governors::OppRequest& request) {
  QAgent& agent = *agents_.front();
  const std::size_t state = encoder_.encode(obs);
  double learn_reward = 0.0;
  if (prev_states_ && run_decisions_ > config_.warmup_decisions) {
    const double r = reward_(obs, prev_moved_.front());
    learn_reward = r;
    run_reward_ += r;
    agent.learn(prev_states_->front(), prev_actions_.front(), r, state);
    if (q_updates_counter_) q_updates_counter_->inc();
  }
  const std::size_t action = agent.select_action(state);
  actions_.apply(action, obs, request);

  bool moved = false;
  for (std::size_t c = 0; c < request.size(); ++c) {
    if (request[c] != obs.soc.clusters[c].opp_index) {
      moved = true;
      break;
    }
  }
  prev_states_.emplace(1, state);
  prev_actions_.assign(1, action);
  prev_moved_.assign(1, moved);
  if (trace_) {
    pmrl::obs::TraceEvent event;
    event.kind = pmrl::obs::EventKind::Decision;
    event.epoch = run_decisions_;
    event.time_s = obs.soc.time_s;
    event.index = 0;
    event.state = state;
    event.action = static_cast<std::uint32_t>(action);
    event.reward = learn_reward;
    event.value = agent.epsilon();
    event.detail = "joint";
    trace_->record(event);
  }
}

void RlGovernor::decide_factored(const governors::PolicyObservation& obs,
                                 governors::OppRequest& request) {
  std::vector<std::size_t> states(cluster_count_);
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    states[c] = encoder_.encode_cluster(obs, c);
  }
  if (trace_) trace_rewards_.assign(cluster_count_, 0.0);
  if (prev_states_ && run_decisions_ > config_.warmup_decisions) {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      const double r = reward_.cluster_reward(obs, c, prev_moved_[c]);
      run_reward_ += r;
      if (trace_) trace_rewards_[c] = r;
      agents_[c]->learn((*prev_states_)[c], prev_actions_[c], r, states[c]);
    }
    if (q_updates_counter_) q_updates_counter_->inc(cluster_count_);
  }
  prev_moved_.assign(cluster_count_, false);
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    const std::size_t move = agents_[c]->select_action(states[c]);
    actions_.apply_move(move, obs, c, request);
    apply_qos_guard(obs, c, request);
    prev_actions_[c] = move;
    prev_moved_[c] = request[c] != obs.soc.clusters[c].opp_index;
    if (trace_) {
      pmrl::obs::TraceEvent event;
      event.kind = pmrl::obs::EventKind::Decision;
      event.epoch = run_decisions_;
      event.time_s = obs.soc.time_s;
      event.index = static_cast<std::uint32_t>(c);
      event.state = states[c];
      event.action = static_cast<std::uint32_t>(move);
      event.reward = trace_rewards_[c];
      event.value = agents_[c]->epsilon();
      trace_->record(event);
    }
  }
  prev_states_ = std::move(states);
}

void RlGovernor::apply_qos_guard(const governors::PolicyObservation& obs,
                                 std::size_t cluster,
                                 governors::OppRequest& request) const {
  if (config_.qos_guard_fraction <= 0.0) return;
  const std::size_t top_bin = config_.state.qos_bins - 1;
  if (top_bin == 0) return;
  if (encoder_.cluster_qos_bin(obs, cluster) < top_bin) return;
  const auto& ct = obs.soc.clusters[cluster];
  const auto floor_idx = static_cast<std::size_t>(
      config_.qos_guard_fraction *
      static_cast<double>(ct.opp_count - 1) + 0.5);
  if (request[cluster] < floor_idx) request[cluster] = floor_idx;
}

void register_rl_governor() {
  if (governors::has_governor("rl")) return;
  governors::register_governor("rl", [] {
    return governors::GovernorPtr(
        new RlGovernor(RlGovernorConfig{}, /*cluster_count=*/2));
  });
}

}  // namespace pmrl::rl
