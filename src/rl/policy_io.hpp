#pragma once
// Policy checkpointing: serialize a trained RlGovernor's Q-tables so a
// policy trained offline can be shipped and deployed (or flashed into the
// accelerator's Q memory) without retraining. The format is line-oriented:
//
//   pmrl-policy,1,<agents>,<states>,<actions>
//   <QTable CSV of agent 0: states rows x actions columns>
//   <QTable CSV of agent 1>
//   ...
//
// Only the learned values travel; the structural configuration must match
// at load time (checked, with clear errors on mismatch).

#include <iosfwd>

#include "rl/rl_governor.hpp"

namespace pmrl::rl {

/// Writes the governor's Q-table(s).
void save_policy(const RlGovernor& governor, std::ostream& out);

/// Restores Q-values into an existing governor of matching shape; throws
/// std::runtime_error on format or shape mismatch. Fixed-point agents
/// re-quantize the stored values (lossless for checkpoints produced by a
/// fixed-point agent, rounding for cross-backend restores).
void load_policy(RlGovernor& governor, std::istream& in);

}  // namespace pmrl::rl
