#pragma once
// Policy checkpointing: serialize a trained RlGovernor's Q-tables so a
// policy trained offline can be shipped and deployed (or flashed into the
// accelerator's Q memory) without retraining. The format is line-oriented:
//
//   pmrl-policy,2,<agents>,<states>,<actions>
//   <QTable CSV of agent 0: states rows x actions columns>
//   <QTable CSV of agent 1>
//   ...
//   crc32,<8 lowercase hex digits>
//
// The footer is the CRC-32 of every byte above it (header + rows,
// including their newlines), so bit-flips in persisted checkpoints are
// detected instead of absorbed into the Q-values. Version 1 files (no
// footer) still load, with a warning.
//
// Only the learned values travel; the structural configuration must match
// at load time. Loading is transactional: the target governor is modified
// only after the whole file has been parsed and validated, so a rejected
// checkpoint leaves the governor exactly as it was (typically fresh-init).

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "rl/rl_governor.hpp"

namespace pmrl::rl {

/// Why a checkpoint was rejected.
enum class PolicyLoadErrorKind {
  BadHeader,           ///< missing/garbled magic or version field
  UnsupportedVersion,  ///< recognized magic, version we cannot read
  BadField,            ///< non-numeric or overflowing numeric field
  ShapeMismatch,       ///< agents/states/actions differ from the governor
  Truncated,           ///< fewer rows or columns than the header promises
  NonFinite,           ///< NaN or Inf Q-value in the payload
  ChecksumMismatch,    ///< CRC-32 footer does not match the payload
};

const char* policy_load_error_kind_name(PolicyLoadErrorKind kind);

/// Typed load failure; `kind()` identifies the rejection reason so callers
/// can distinguish corruption (retry/fall back) from misconfiguration
/// (shape mismatch).
class PolicyLoadError : public std::runtime_error {
 public:
  PolicyLoadError(PolicyLoadErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  PolicyLoadErrorKind kind() const { return kind_; }

 private:
  PolicyLoadErrorKind kind_;
};

/// Writes the governor's Q-table(s) in format version 2 (CRC-32 footer).
void save_policy(const RlGovernor& governor, std::ostream& out);

/// Restores Q-values into an existing governor of matching shape; throws
/// PolicyLoadError on any format, shape, checksum, or value problem — the
/// governor is untouched on failure. Fixed-point agents re-quantize the
/// stored values (lossless for checkpoints produced by a fixed-point
/// agent, rounding for cross-backend restores).
void load_policy(RlGovernor& governor, std::istream& in);

/// Non-throwing wrapper: attempts load_policy; on rejection leaves the
/// governor as-is (fresh-init when it was freshly constructed), stores the
/// failure message in `error` when non-null, and returns false.
bool try_load_policy(RlGovernor& governor, std::istream& in,
                     std::string* error = nullptr);

}  // namespace pmrl::rl
