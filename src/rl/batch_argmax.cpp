#include "rl/batch_argmax.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PMRL_BATCH_ARGMAX_X86 1
#endif

namespace pmrl::rl {

void batch_argmax_f64_scalar(const double* values, std::size_t actions,
                             const double* bias, const std::uint64_t* states,
                             std::size_t count, std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t base = static_cast<std::size_t>(states[i]) * actions;
    std::uint32_t best = 0;
    double best_value = values[base] + (bias ? bias[0] : 0.0);
    for (std::size_t a = 1; a < actions; ++a) {
      const double v = values[base + a] + (bias ? bias[a] : 0.0);
      if (v > best_value) {
        best_value = v;
        best = static_cast<std::uint32_t>(a);
      }
    }
    out[i] = best;
  }
}

std::uint32_t argmax_prefix_f64(const double* row, const double* bias,
                                std::size_t allowed) {
  std::uint32_t best = 0;
  double best_value = row[0] + (bias ? bias[0] : 0.0);
  for (std::size_t a = 1; a < allowed; ++a) {
    const double v = row[a] + (bias ? bias[a] : 0.0);
    if (v > best_value) {
      best_value = v;
      best = static_cast<std::uint32_t>(a);
    }
  }
  return best;
}

void batch_argmax_f64_mean2_scalar(const double* a, const double* b,
                                   std::size_t actions, const double* bias,
                                   const std::uint64_t* states,
                                   std::size_t count, std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t base = static_cast<std::size_t>(states[i]) * actions;
    std::uint32_t best = 0;
    double best_value = 0.5 * (a[base] + b[base]) + (bias ? bias[0] : 0.0);
    for (std::size_t act = 1; act < actions; ++act) {
      const double v =
          0.5 * (a[base + act] + b[base + act]) + (bias ? bias[act] : 0.0);
      if (v > best_value) {
        best_value = v;
        best = static_cast<std::uint32_t>(act);
      }
    }
    out[i] = best;
  }
}

void batch_argmax_i64_scalar(const std::int64_t* values, std::size_t actions,
                             const std::int64_t* bias_raw, std::int64_t raw_min,
                             std::int64_t raw_max, const std::uint64_t* states,
                             std::size_t count, std::uint32_t* out) {
  const auto score = [&](std::int64_t q, std::size_t a) {
    if (!bias_raw) return q;
    const std::int64_t sum = q + bias_raw[a];  // both within a <=48-bit format
    return sum > raw_max ? raw_max : (sum < raw_min ? raw_min : sum);
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t base = static_cast<std::size_t>(states[i]) * actions;
    std::uint32_t best = 0;
    std::int64_t best_value = score(values[base], 0);
    for (std::size_t a = 1; a < actions; ++a) {
      const std::int64_t v = score(values[base + a], a);
      if (v > best_value) {
        best_value = v;
        best = static_cast<std::uint32_t>(a);
      }
    }
    out[i] = best;
  }
}

#if defined(PMRL_BATCH_ARGMAX_X86)

namespace {

__attribute__((target("avx2"))) void batch_argmax_f64_avx2(
    const double* values, std::size_t actions, const double* bias,
    const std::uint64_t* states, std::size_t count, std::uint32_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    alignas(32) long long base[4];
    for (int lane = 0; lane < 4; ++lane) {
      base[lane] = static_cast<long long>(states[i + lane] * actions);
    }
    const __m256i vbase =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(base));
    // Bank 0 read seeds the running best; each further bank is one gather
    // (4 states × 1 action word) into the compare/blend "comparator" stage.
    __m256d best = _mm256_i64gather_pd(values, vbase, 8);
    if (bias) best = _mm256_add_pd(best, _mm256_set1_pd(bias[0]));
    __m256i best_idx = _mm256_setzero_si256();
    for (std::size_t a = 1; a < actions; ++a) {
      const __m256i idx =
          _mm256_add_epi64(vbase, _mm256_set1_epi64x(static_cast<long long>(a)));
      __m256d v = _mm256_i64gather_pd(values, idx, 8);
      if (bias) v = _mm256_add_pd(v, _mm256_set1_pd(bias[a]));
      // Strictly-greater keeps the earlier (lower) index on ties.
      const __m256d gt = _mm256_cmp_pd(v, best, _CMP_GT_OQ);
      best = _mm256_blendv_pd(best, v, gt);
      best_idx = _mm256_blendv_epi8(
          best_idx, _mm256_set1_epi64x(static_cast<long long>(a)),
          _mm256_castpd_si256(gt));
    }
    alignas(32) long long lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_idx);
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = static_cast<std::uint32_t>(lanes[lane]);
    }
  }
  if (i < count) {
    batch_argmax_f64_scalar(values, actions, bias, states + i, count - i,
                            out + i);
  }
}

__attribute__((target("avx2"))) void batch_argmax_f64_mean2_avx2(
    const double* a, const double* b, std::size_t actions, const double* bias,
    const std::uint64_t* states, std::size_t count, std::uint32_t* out) {
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    alignas(32) long long base[4];
    for (int lane = 0; lane < 4; ++lane) {
      base[lane] = static_cast<long long>(states[i + lane] * actions);
    }
    const __m256i vbase =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(base));
    // Two gathers per action bank (one per table); the 0.5*(a+b)+bias score
    // is formed in the scalar evaluation order so ties resolve identically.
    __m256d best = _mm256_mul_pd(
        _mm256_add_pd(_mm256_i64gather_pd(a, vbase, 8),
                      _mm256_i64gather_pd(b, vbase, 8)),
        half);
    if (bias) best = _mm256_add_pd(best, _mm256_set1_pd(bias[0]));
    __m256i best_idx = _mm256_setzero_si256();
    for (std::size_t act = 1; act < actions; ++act) {
      const __m256i idx = _mm256_add_epi64(
          vbase, _mm256_set1_epi64x(static_cast<long long>(act)));
      __m256d v = _mm256_mul_pd(
          _mm256_add_pd(_mm256_i64gather_pd(a, idx, 8),
                        _mm256_i64gather_pd(b, idx, 8)),
          half);
      if (bias) v = _mm256_add_pd(v, _mm256_set1_pd(bias[act]));
      const __m256d gt = _mm256_cmp_pd(v, best, _CMP_GT_OQ);
      best = _mm256_blendv_pd(best, v, gt);
      best_idx = _mm256_blendv_epi8(
          best_idx, _mm256_set1_epi64x(static_cast<long long>(act)),
          _mm256_castpd_si256(gt));
    }
    alignas(32) long long lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_idx);
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = static_cast<std::uint32_t>(lanes[lane]);
    }
  }
  if (i < count) {
    batch_argmax_f64_mean2_scalar(a, b, actions, bias, states + i, count - i,
                                  out + i);
  }
}

// Hoisted out of the kernel because GCC lambdas do not inherit the
// enclosing function's target attribute.
__attribute__((target("avx2"))) inline __m256i gather_score_i64(
    const std::int64_t* values, __m256i vbase, std::size_t a,
    const std::int64_t* bias_raw, __m256i vmin, __m256i vmax) {
  const __m256i idx =
      _mm256_add_epi64(vbase, _mm256_set1_epi64x(static_cast<long long>(a)));
  __m256i q = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(values), idx, 8);
  if (bias_raw) {
    // FixedFormat::add: plain sum (no int64 overflow possible for a
    // <=48-bit format) saturated to [raw_min, raw_max].
    q = _mm256_add_epi64(q, _mm256_set1_epi64x(bias_raw[a]));
    q = _mm256_blendv_epi8(q, vmax, _mm256_cmpgt_epi64(q, vmax));
    q = _mm256_blendv_epi8(q, vmin, _mm256_cmpgt_epi64(vmin, q));
  }
  return q;
}

__attribute__((target("avx2"))) void batch_argmax_i64_avx2(
    const std::int64_t* values, std::size_t actions,
    const std::int64_t* bias_raw, std::int64_t raw_min, std::int64_t raw_max,
    const std::uint64_t* states, std::size_t count, std::uint32_t* out) {
  const __m256i vmin = _mm256_set1_epi64x(raw_min);
  const __m256i vmax = _mm256_set1_epi64x(raw_max);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    alignas(32) long long base[4];
    for (int lane = 0; lane < 4; ++lane) {
      base[lane] = static_cast<long long>(states[i + lane] * actions);
    }
    const __m256i vbase =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(base));
    __m256i best = gather_score_i64(values, vbase, 0, bias_raw, vmin, vmax);
    __m256i best_idx = _mm256_setzero_si256();
    for (std::size_t a = 1; a < actions; ++a) {
      const __m256i v =
          gather_score_i64(values, vbase, a, bias_raw, vmin, vmax);
      const __m256i gt = _mm256_cmpgt_epi64(v, best);
      best = _mm256_blendv_epi8(best, v, gt);
      best_idx = _mm256_blendv_epi8(
          best_idx, _mm256_set1_epi64x(static_cast<long long>(a)), gt);
    }
    alignas(32) long long lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_idx);
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = static_cast<std::uint32_t>(lanes[lane]);
    }
  }
  if (i < count) {
    batch_argmax_i64_scalar(values, actions, bias_raw, raw_min, raw_max,
                            states + i, count - i, out + i);
  }
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace

void batch_argmax_f64(const double* values, std::size_t actions,
                      const double* bias, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out) {
  static const bool avx2 = cpu_has_avx2();
  if (avx2) {
    batch_argmax_f64_avx2(values, actions, bias, states, count, out);
  } else {
    batch_argmax_f64_scalar(values, actions, bias, states, count, out);
  }
}

void batch_argmax_f64_mean2(const double* a, const double* b,
                            std::size_t actions, const double* bias,
                            const std::uint64_t* states, std::size_t count,
                            std::uint32_t* out) {
  static const bool avx2 = cpu_has_avx2();
  if (avx2) {
    batch_argmax_f64_mean2_avx2(a, b, actions, bias, states, count, out);
  } else {
    batch_argmax_f64_mean2_scalar(a, b, actions, bias, states, count, out);
  }
}

void batch_argmax_i64(const std::int64_t* values, std::size_t actions,
                      const std::int64_t* bias_raw, std::int64_t raw_min,
                      std::int64_t raw_max, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out) {
  static const bool avx2 = cpu_has_avx2();
  if (avx2) {
    batch_argmax_i64_avx2(values, actions, bias_raw, raw_min, raw_max, states,
                          count, out);
  } else {
    batch_argmax_i64_scalar(values, actions, bias_raw, raw_min, raw_max,
                            states, count, out);
  }
}

const char* batch_argmax_backend() {
  static const bool avx2 = cpu_has_avx2();
  return avx2 ? "avx2" : "scalar";
}

#else  // !PMRL_BATCH_ARGMAX_X86

void batch_argmax_f64(const double* values, std::size_t actions,
                      const double* bias, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out) {
  batch_argmax_f64_scalar(values, actions, bias, states, count, out);
}

void batch_argmax_f64_mean2(const double* a, const double* b,
                            std::size_t actions, const double* bias,
                            const std::uint64_t* states, std::size_t count,
                            std::uint32_t* out) {
  batch_argmax_f64_mean2_scalar(a, b, actions, bias, states, count, out);
}

void batch_argmax_i64(const std::int64_t* values, std::size_t actions,
                      const std::int64_t* bias_raw, std::int64_t raw_min,
                      std::int64_t raw_max, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out) {
  batch_argmax_i64_scalar(values, actions, bias_raw, raw_min, raw_max, states,
                          count, out);
}

const char* batch_argmax_backend() { return "scalar"; }

#endif  // PMRL_BATCH_ARGMAX_X86

}  // namespace pmrl::rl
