#pragma once
// Fixed-point Q-learning agent: the bit-exact software model of the paper's
// FPGA policy. All Q storage and TD arithmetic use a runtime-configurable
// signed Q-format (default Q5.10 in 16 bits); exploration uses a 16-bit
// LFSR with a threshold comparator. The cycle-level datapath in src/hw
// wraps this agent, so "hardware" and "software" decisions match exactly.

#include <cstdint>
#include <vector>

#include "rl/agent.hpp"
#include "util/fixed_point.hpp"
#include "util/lfsr.hpp"

namespace pmrl::rl {

/// Hardware number-format and schedule configuration.
struct FixedAgentConfig {
  unsigned total_bits = 16;
  unsigned frac_bits = 10;
  QLearningConfig learning;  ///< alpha/gamma/epsilon quantized on ingest
};

/// Tabular Q-learning in saturating fixed-point arithmetic.
class FixedPointQAgent : public QAgent {
 public:
  FixedPointQAgent(FixedAgentConfig config, std::size_t states,
                   std::size_t actions);

  std::size_t select_action(std::size_t state) override;
  void learn(std::size_t state, std::size_t action, double reward,
             std::size_t next_state) override;
  void begin_episode() override;

  std::size_t state_count() const override { return states_; }
  std::size_t action_count() const override { return actions_; }
  void set_frozen(bool frozen) override { frozen_ = frozen; }
  bool frozen() const override { return frozen_; }
  double q_value(std::size_t state, std::size_t action) const override;
  std::size_t greedy_action(std::size_t state) const override;
  /// Batched via the AVX2/scalar raw-word kernel; bit-exact with
  /// greedy_action (same saturating bias add, same tie-break).
  void greedy_actions(const std::uint64_t* states, std::size_t count,
                      std::uint32_t* actions) const override;
  double epsilon() const override;
  void set_action_bias(std::vector<double> bias) override;
  /// Quantizes into the agent's Q format.
  void set_q_value(std::size_t state, std::size_t action,
                   double value) override;

  const FixedFormat& format() const { return format_; }
  const FixedAgentConfig& config() const { return config_; }

  /// Raw Q word as stored in the (modeled) BRAM.
  std::int64_t q_raw(std::size_t state, std::size_t action) const;
  /// Row-major raw Q storage, for batched kernels (rl/batch_argmax.hpp).
  const std::int64_t* q_raw_data() const { return q_raw_.data(); }
  /// Quantized selection prior (empty = disabled).
  const std::vector<std::int64_t>& bias_raw() const { return bias_raw_; }

  /// 16-bit epsilon comparator threshold currently in effect.
  std::uint32_t epsilon_threshold() const { return epsilon_threshold_; }

  /// Fixed-point constants as quantized (exposed for the hardware model and
  /// the precision ablation).
  std::int64_t alpha_raw() const { return alpha_raw_; }
  std::int64_t gamma_raw() const { return gamma_raw_; }

 private:
  std::size_t index(std::size_t state, std::size_t action) const;

  FixedAgentConfig config_;
  FixedFormat format_;
  std::size_t states_;
  std::size_t actions_;
  std::vector<std::int64_t> q_raw_;
  /// Quantized per-action selection prior (empty = disabled).
  std::vector<std::int64_t> bias_raw_;
  Lfsr16 lfsr_;
  std::int64_t alpha_raw_;
  std::int64_t gamma_raw_;
  std::uint32_t epsilon_threshold_;
  std::size_t episodes_ = 0;
  bool frozen_ = false;
};

}  // namespace pmrl::rl
