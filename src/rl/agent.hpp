#pragma once
// Q-learning agents. Two implementations share one interface: the
// double-precision software agent (the paper's software policy) and a
// fixed-point agent that is bit-exact with the hardware datapath model in
// src/hw (the paper's FPGA policy).

#include <cstddef>
#include <memory>
#include <vector>

#include "rl/q_table.hpp"
#include "util/lfsr.hpp"
#include "util/rng.hpp"

namespace pmrl::rl {

/// TD-control algorithm of the float agent. The fixed-point/hardware agent
/// always runs plain Q-learning (one Q memory, one update path — the
/// datapath the paper builds); the variants exist for the algorithm
/// ablation (bench_ablation_algorithm).
enum class TdAlgorithm {
  QLearning,      ///< max-target TD(0) (default; matches the hardware)
  DoubleQ,        ///< two tables, decoupled selection/evaluation
  ExpectedSarsa,  ///< expectation over the epsilon-greedy policy
};

const char* td_algorithm_name(TdAlgorithm algorithm);

/// Learning hyperparameters shared by both agents.
struct QLearningConfig {
  double alpha = 0.15;  ///< learning rate
  /// Discount factor. Deliberately low: the QoS penalty of a too-low OPP
  /// lands in the *same* epoch the action was in force, so the reward is
  /// nearly immediate and a mildly myopic agent both learns faster and
  /// avoids the slow 18-step value backup along the OPP chain.
  double gamma = 0.50;
  double epsilon_start = 0.60;
  double epsilon_end = 0.02;
  /// Episodes over which epsilon decays linearly from start to end.
  std::size_t epsilon_decay_episodes = 40;
  /// Optimistic initial Q value (0 = neutral).
  double initial_q = 0.0;
  std::uint64_t seed = 1;
  /// TD-control variant (float agent only; see TdAlgorithm).
  TdAlgorithm algorithm = TdAlgorithm::QLearning;
};

/// Common agent interface used by the RL governor and the hardware model.
class QAgent {
 public:
  virtual ~QAgent() = default;

  /// Epsilon-greedy action selection (pure greedy when frozen).
  virtual std::size_t select_action(std::size_t state) = 0;

  /// One TD(0) Q-learning update; no-op when frozen.
  virtual void learn(std::size_t state, std::size_t action, double reward,
                     std::size_t next_state) = 0;

  /// Advances the epsilon schedule (call at episode boundaries).
  virtual void begin_episode() = 0;

  virtual std::size_t state_count() const = 0;
  virtual std::size_t action_count() const = 0;

  /// Frozen agents neither explore nor update.
  virtual void set_frozen(bool frozen) = 0;
  virtual bool frozen() const = 0;

  /// Current Q estimate (exact for the float agent, dequantized for the
  /// fixed-point agent).
  virtual double q_value(std::size_t state, std::size_t action) const = 0;
  virtual std::size_t greedy_action(std::size_t state) const = 0;

  /// Greedy actions for a micro-batch of states; equivalent to calling
  /// greedy_action() per state (same bias, same lowest-index tie-break).
  /// States must be in range. Overridden with a SIMD kernel where the
  /// storage layout allows it; the default is the scalar loop.
  virtual void greedy_actions(const std::uint64_t* states, std::size_t count,
                              std::uint32_t* actions) const {
    for (std::size_t i = 0; i < count; ++i) {
      actions[i] = static_cast<std::uint32_t>(
          greedy_action(static_cast<std::size_t>(states[i])));
    }
  }

  /// Current exploration rate.
  virtual double epsilon() const = 0;

  /// Overwrites one Q entry (checkpoint restore; quantized on the
  /// fixed-point agent).
  virtual void set_q_value(std::size_t state, std::size_t action,
                           double value) = 0;

  /// Per-action selection prior: greedy selection maximizes Q(s,a)+bias[a]
  /// (TD targets still use the unbiased max). Used to encode the known
  /// energy ordering of DVFS actions — "when indifferent, step down". In
  /// the hardware datapath this is a constant added before the comparator
  /// tree. An empty vector disables the prior.
  virtual void set_action_bias(std::vector<double> bias) = 0;
};

/// Double-precision tabular Q-learning (the software policy).
class QLearningAgent : public QAgent {
 public:
  QLearningAgent(QLearningConfig config, std::size_t states,
                 std::size_t actions);

  std::size_t select_action(std::size_t state) override;
  void learn(std::size_t state, std::size_t action, double reward,
             std::size_t next_state) override;
  void begin_episode() override;

  std::size_t state_count() const override { return table_.states(); }
  std::size_t action_count() const override { return table_.actions(); }
  void set_frozen(bool frozen) override { frozen_ = frozen; }
  bool frozen() const override { return frozen_; }
  /// Mean of both tables under Double Q-learning; the single table
  /// otherwise.
  double q_value(std::size_t state, std::size_t action) const override;
  std::size_t greedy_action(std::size_t state) const override;
  /// Batched via the AVX2/scalar kernels: the single-table algorithms use
  /// the dense-store kernel, Double Q the two-table-mean kernel — both
  /// bit-exact with the per-state combined-Q scan.
  void greedy_actions(const std::uint64_t* states, std::size_t count,
                      std::uint32_t* actions) const override;
  double epsilon() const override { return epsilon_; }
  void set_action_bias(std::vector<double> bias) override;
  /// Sets both tables under Double Q-learning.
  void set_q_value(std::size_t state, std::size_t action,
                   double value) override;

  QTable& table() { return table_; }
  const QTable& table() const { return table_; }
  /// Second table (Double Q-learning only; nullptr otherwise).
  const QTable* table_b() const { return table_b_.get(); }
  const QLearningConfig& config() const { return config_; }
  std::size_t episodes_started() const { return episodes_; }

 private:
  double combined_q(std::size_t state, std::size_t action) const;
  void learn_q(std::size_t state, std::size_t action, double reward,
               std::size_t next_state);
  void learn_double_q(std::size_t state, std::size_t action, double reward,
                      std::size_t next_state);
  void learn_expected_sarsa(std::size_t state, std::size_t action,
                            double reward, std::size_t next_state);

  QLearningConfig config_;
  QTable table_;
  std::unique_ptr<QTable> table_b_;
  Rng rng_;
  double epsilon_;
  std::size_t episodes_ = 0;
  bool frozen_ = false;
  std::vector<double> action_bias_;
};

}  // namespace pmrl::rl
