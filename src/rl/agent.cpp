#include "rl/agent.hpp"

#include <algorithm>
#include <stdexcept>

#include "rl/batch_argmax.hpp"

namespace pmrl::rl {

const char* td_algorithm_name(TdAlgorithm algorithm) {
  switch (algorithm) {
    case TdAlgorithm::QLearning: return "q-learning";
    case TdAlgorithm::DoubleQ: return "double-q";
    case TdAlgorithm::ExpectedSarsa: return "expected-sarsa";
  }
  return "?";
}

QLearningAgent::QLearningAgent(QLearningConfig config, std::size_t states,
                               std::size_t actions)
    : config_(config),
      table_(states, actions, config.initial_q),
      rng_(config.seed),
      epsilon_(config.epsilon_start) {
  if (config_.algorithm == TdAlgorithm::DoubleQ) {
    table_b_ =
        std::make_unique<QTable>(states, actions, config.initial_q);
  }
  if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0,1]");
  }
  if (config_.gamma < 0.0 || config_.gamma >= 1.0) {
    throw std::invalid_argument("gamma must be in [0,1)");
  }
  if (config_.epsilon_start < 0.0 || config_.epsilon_start > 1.0 ||
      config_.epsilon_end < 0.0 ||
      config_.epsilon_end > config_.epsilon_start) {
    throw std::invalid_argument("invalid epsilon schedule");
  }
}

std::size_t QLearningAgent::select_action(std::size_t state) {
  if (!frozen_ && rng_.bernoulli(epsilon_)) {
    return static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(table_.actions()) - 1));
  }
  return greedy_action(state);
}

double QLearningAgent::combined_q(std::size_t state,
                                  std::size_t action) const {
  if (table_b_) {
    return 0.5 * (table_.get(state, action) + table_b_->get(state, action));
  }
  return table_.get(state, action);
}

double QLearningAgent::q_value(std::size_t state, std::size_t action) const {
  return combined_q(state, action);
}

std::size_t QLearningAgent::greedy_action(std::size_t state) const {
  std::size_t best = 0;
  double best_value =
      combined_q(state, 0) + (action_bias_.empty() ? 0.0 : action_bias_[0]);
  for (std::size_t a = 1; a < table_.actions(); ++a) {
    const double v = combined_q(state, a) +
                     (action_bias_.empty() ? 0.0 : action_bias_[a]);
    if (v > best_value) {
      best_value = v;
      best = a;
    }
  }
  return best;
}

void QLearningAgent::greedy_actions(const std::uint64_t* states,
                                    std::size_t count,
                                    std::uint32_t* actions) const {
  if (table_b_) {
    batch_argmax_f64_mean2(
        table_.data(), table_b_->data(), table_.actions(),
        action_bias_.empty() ? nullptr : action_bias_.data(), states, count,
        actions);
    return;
  }
  batch_argmax_f64(table_.data(), table_.actions(),
                   action_bias_.empty() ? nullptr : action_bias_.data(),
                   states, count, actions);
}

void QLearningAgent::set_q_value(std::size_t state, std::size_t action,
                                 double value) {
  table_.set(state, action, value);
  if (table_b_) table_b_->set(state, action, value);
}

void QLearningAgent::set_action_bias(std::vector<double> bias) {
  if (!bias.empty() && bias.size() != table_.actions()) {
    throw std::invalid_argument("action bias size mismatch");
  }
  action_bias_ = std::move(bias);
}

void QLearningAgent::learn(std::size_t state, std::size_t action,
                           double reward, std::size_t next_state) {
  if (frozen_) return;
  switch (config_.algorithm) {
    case TdAlgorithm::QLearning:
      learn_q(state, action, reward, next_state);
      break;
    case TdAlgorithm::DoubleQ:
      learn_double_q(state, action, reward, next_state);
      break;
    case TdAlgorithm::ExpectedSarsa:
      learn_expected_sarsa(state, action, reward, next_state);
      break;
  }
  table_.record_visit(state, action);
}

void QLearningAgent::learn_q(std::size_t state, std::size_t action,
                             double reward, std::size_t next_state) {
  const double target = reward + config_.gamma * table_.max_value(next_state);
  const double old_q = table_.get(state, action);
  table_.set(state, action, old_q + config_.alpha * (target - old_q));
}

void QLearningAgent::learn_double_q(std::size_t state, std::size_t action,
                                    double reward, std::size_t next_state) {
  // Hasselt's Double Q-learning: a fair coin picks which table to update;
  // the updated table selects the next action, the other evaluates it.
  QTable& updated = rng_.bernoulli(0.5) ? table_ : *table_b_;
  QTable& other = &updated == &table_ ? *table_b_ : table_;
  const std::size_t best_next = updated.argmax(next_state);
  const double target =
      reward + config_.gamma * other.get(next_state, best_next);
  const double old_q = updated.get(state, action);
  updated.set(state, action, old_q + config_.alpha * (target - old_q));
}

void QLearningAgent::learn_expected_sarsa(std::size_t state,
                                          std::size_t action, double reward,
                                          std::size_t next_state) {
  // Expectation under the epsilon-greedy behaviour policy:
  // (1 - eps) * max + eps * mean. One scan collects both the max and the
  // sum (same ascending accumulation order, so results are bit-identical
  // to the former two-pass version).
  double max_q = table_.get(next_state, 0);
  double mean_q = 0.0 + max_q;
  for (std::size_t a = 1; a < table_.actions(); ++a) {
    const double q = table_.get(next_state, a);
    if (q > max_q) max_q = q;
    mean_q += q;
  }
  mean_q /= static_cast<double>(table_.actions());
  const double eps = frozen_ ? 0.0 : epsilon_;
  const double expectation = (1.0 - eps) * max_q + eps * mean_q;
  const double target = reward + config_.gamma * expectation;
  const double old_q = table_.get(state, action);
  table_.set(state, action, old_q + config_.alpha * (target - old_q));
}

void QLearningAgent::begin_episode() {
  ++episodes_;
  if (config_.epsilon_decay_episodes == 0) {
    epsilon_ = config_.epsilon_end;
    return;
  }
  const double progress =
      std::min(1.0, static_cast<double>(episodes_) /
                        static_cast<double>(config_.epsilon_decay_episodes));
  epsilon_ = config_.epsilon_start +
             (config_.epsilon_end - config_.epsilon_start) * progress;
}

}  // namespace pmrl::rl
