#pragma once
// The proposed policy: a Governor that wraps Q-learning agents behind the
// same observe/act interface the baseline governors use. Each decision
// epoch it (1) scores the previous action with the reward function,
// (2) performs the TD update, and (3) epsilon-greedily selects the next
// DVFS action — the learn-while-controlling loop the paper describes.
//
// Two policy structures are supported:
//   factored (default) — one agent per DVFS domain. Each cluster's agent
//     sees that cluster's utilization/OPP/QoS-pressure state and is rewarded
//     with that cluster's own energy and the QoS of the jobs *it* completed.
//     This per-domain credit assignment is what lets the policy park an idle
//     cluster while another is busy.
//   joint — one agent over the joint state/action space (used by the
//     hardware latency experiment's single-Q-memory configuration and the
//     state-space ablation).

#include <memory>
#include <optional>
#include <vector>

#include "governors/governor.hpp"
#include "rl/action.hpp"
#include "rl/agent.hpp"
#include "rl/fixed_agent.hpp"
#include "rl/reward.hpp"
#include "rl/state.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace pmrl::obs

namespace pmrl::rl {

/// Which arithmetic backs the agents.
enum class AgentBackend {
  Float,  ///< double-precision software policy
  Fixed,  ///< fixed-point policy, bit-exact with the hardware model
};

/// Policy structure.
enum class PolicyStructure {
  Factored,  ///< one agent per DVFS domain (default)
  Joint,     ///< one agent over the joint state/action space
};

/// Complete policy configuration.
struct RlGovernorConfig {
  StateConfig state;
  ActionConfig action;
  RewardConfig reward;
  QLearningConfig learning;
  AgentBackend backend = AgentBackend::Float;
  PolicyStructure structure = PolicyStructure::Factored;
  /// Number format when backend == Fixed.
  unsigned fixed_total_bits = 16;
  unsigned fixed_frac_bits = 10;
  /// Selection prior added to every OPP-lowering action when choosing
  /// greedily: "when indifferent, step down". The per-step energy saving
  /// between adjacent OPPs (~0.01-0.02 reward units) sits below tabular
  /// Q noise, so without this prior descent chains stall at arbitrary
  /// indices; any real QoS penalty (>= lambda * deficit) dwarfs the prior.
  /// Implemented inside the agents (a bias constant ahead of the hardware
  /// comparator tree). 0 disables.
  double down_bias = 0.05;
  /// Decisions at the start of each run during which the agent acts but
  /// does not update: the PELT utilization signal needs ~100-200 ms to warm
  /// up from zero, and learning from those cold observations poisons the
  /// high-OPP/low-util states (a heavy scenario booting looks identical to
  /// true idle there).
  std::size_t warmup_decisions = 4;
  /// QoS guard: when a domain's epoch violation pressure reaches the top
  /// pressure bin, the OPP request is floored at this fraction of the
  /// table — a deterministic hispeed boost (cf. the interactive governor)
  /// that recovers from workload phase changes in one epoch instead of one
  /// OPP step per epoch. 0 disables the guard. The guard is an environment
  /// assist: the agent still learns on its own chosen action.
  double qos_guard_fraction = 0.8;
};

/// The RL power-management policy.
class RlGovernor : public governors::Governor {
 public:
  RlGovernor(RlGovernorConfig config, std::size_t cluster_count);

  std::string name() const override;
  /// Clears the per-run decision chain (NOT the learned Q-tables).
  void reset(const governors::PolicyObservation& initial) override;
  void decide(const governors::PolicyObservation& obs,
              governors::OppRequest& request) override;

  /// Advances the exploration schedule; call between training episodes.
  void begin_episode();

  /// Freezes learning and exploration (pure greedy evaluation).
  void set_frozen(bool frozen);
  bool frozen() const { return agents_.front()->frozen(); }

  /// Number of agents: 1 (joint) or cluster_count (factored).
  std::size_t agent_count() const { return agents_.size(); }
  QAgent& agent(std::size_t i = 0) { return *agents_.at(i); }
  const QAgent& agent(std::size_t i = 0) const { return *agents_.at(i); }

  const StateEncoder& encoder() const { return encoder_; }
  const ActionSpace& actions() const { return actions_; }
  const RewardFunction& reward() const { return reward_; }
  const RlGovernorConfig& config() const { return config_; }
  std::size_t cluster_count() const { return cluster_count_; }

  /// Cumulative reward (summed over agents) and decision count of the
  /// current run (reset() zeroes them).
  double run_reward() const { return run_reward_; }
  std::size_t run_decisions() const { return run_decisions_; }

  /// Installs a trace sink (nullptr disengages). While installed, every
  /// decision epoch emits one Decision event per agent carrying the encoded
  /// state, chosen action/move, and the reward that scored the previous
  /// action (0 before learning starts). Events carry only
  /// simulation-derived values — traces stay deterministic.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a metrics registry (nullptr detaches): decision/Q-update
  /// counters and the current exploration rate gauge.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  void decide_joint(const governors::PolicyObservation& obs,
                    governors::OppRequest& request);
  void decide_factored(const governors::PolicyObservation& obs,
                       governors::OppRequest& request);
  void apply_qos_guard(const governors::PolicyObservation& obs,
                       std::size_t cluster,
                       governors::OppRequest& request) const;

  RlGovernorConfig config_;
  std::size_t cluster_count_;
  StateEncoder encoder_;
  ActionSpace actions_;
  RewardFunction reward_;
  std::vector<std::unique_ptr<QAgent>> agents_;
  /// Previous (state, action) per agent; empty until the first decision of
  /// a run.
  std::optional<std::vector<std::size_t>> prev_states_;
  std::vector<std::size_t> prev_actions_;
  std::vector<bool> prev_moved_;
  double run_reward_ = 0.0;
  std::size_t run_decisions_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Instruments resolved once at attach time (registry lookups lock).
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* q_updates_counter_ = nullptr;
  obs::Gauge* epsilon_gauge_ = nullptr;
  /// Scratch: per-agent reward of the update performed this epoch, only
  /// maintained while a trace sink is installed.
  std::vector<double> trace_rewards_;
};

/// Registers the "rl" policy (fresh, untrained, default config for a
/// two-cluster SoC) in the governors registry. Harnesses that need a
/// *trained* policy hold an RlGovernor instance directly.
void register_rl_governor();

}  // namespace pmrl::rl
