#pragma once
// Action space: the joint per-cluster OPP moves. The default is
// {down, hold, up} per cluster — 3^2 = 9 joint actions on a two-cluster
// SoC — with a configurable step size and an optional wider move set for
// the ablation study.

#include <cstddef>
#include <vector>

#include "governors/governor.hpp"

namespace pmrl::rl {

/// Action-space configuration.
struct ActionConfig {
  /// OPP indices moved per fine "up"/"down" action component.
  std::size_t step = 1;
  /// Optional coarse *upward* move distance; adds {+jump} to the
  /// per-cluster move set. Disabled by default: an asymmetric jump biases
  /// epsilon-greedy exploration upward (mean drift ~ +1 index per epoch)
  /// and starves the low-OPP states, while a symmetric +-jump crashes
  /// frequency into backlog whose violation cost arrives too delayed for a
  /// myopic learner to attribute. Fast ramp-up after phase changes is
  /// instead provided by the RL governor's deterministic QoS guard.
  std::size_t jump = 0;
};

/// Enumerates and applies joint DVFS actions.
class ActionSpace {
 public:
  ActionSpace(ActionConfig config, std::size_t cluster_count);

  /// Number of joint actions (moves_per_cluster ^ cluster_count).
  std::size_t action_count() const { return action_count_; }
  std::size_t cluster_count() const { return cluster_count_; }
  std::size_t moves_per_cluster() const { return moves_.size(); }

  /// Per-cluster signed OPP delta of a joint action.
  int delta(std::size_t action, std::size_t cluster) const;

  /// Applies a joint action to the clusters' current OPP indices, clamping
  /// to each cluster's table, and writes the result into `request`.
  void apply(std::size_t action, const governors::PolicyObservation& obs,
             governors::OppRequest& request) const;

  /// The joint action index whose every component is "hold".
  std::size_t hold_action() const;

  /// Signed OPP delta of one per-cluster move index (factored mode, where
  /// each cluster has its own agent choosing among moves_per_cluster()).
  int move_value(std::size_t move_index) const;

  /// Applies one per-cluster move to a single cluster's OPP (clamped) and
  /// writes it into `request[cluster]`.
  void apply_move(std::size_t move_index,
                  const governors::PolicyObservation& obs,
                  std::size_t cluster, governors::OppRequest& request) const;

 private:
  ActionConfig config_;
  std::size_t cluster_count_;
  std::vector<int> moves_;  // per-cluster move set, ascending
  std::size_t action_count_;
};

}  // namespace pmrl::rl
