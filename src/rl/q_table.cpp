#include "rl/q_table.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <stdexcept>

#include "util/csv.hpp"

namespace pmrl::rl {

QTable::QTable(std::size_t states, std::size_t actions, double initial_value)
    : states_(states),
      actions_(actions),
      values_(states * actions, initial_value),
      visit_counts_(states * actions, 0) {
  if (states == 0 || actions == 0) {
    throw std::invalid_argument("QTable dimensions must be positive");
  }
}

std::size_t QTable::index(std::size_t state, std::size_t action) const {
  if (state >= states_ || action >= actions_) {
    throw std::out_of_range("QTable index");
  }
  return state * actions_ + action;
}

double QTable::get(std::size_t state, std::size_t action) const {
  return values_[index(state, action)];
}

void QTable::set(std::size_t state, std::size_t action, double value) {
  values_[index(state, action)] = value;
}

std::size_t QTable::argmax(std::size_t state) const {
  const std::size_t base = index(state, 0);
  std::size_t best = 0;
  double best_value = values_[base];
  for (std::size_t a = 1; a < actions_; ++a) {
    if (values_[base + a] > best_value) {
      best_value = values_[base + a];
      best = a;
    }
  }
  return best;
}

double QTable::max_value(std::size_t state) const {
  const std::size_t base = index(state, 0);
  double best_value = values_[base];
  for (std::size_t a = 1; a < actions_; ++a) {
    if (values_[base + a] > best_value) best_value = values_[base + a];
  }
  return best_value;
}

void QTable::record_visit(std::size_t state, std::size_t action) {
  ++visit_counts_[index(state, action)];
}

std::size_t QTable::visits(std::size_t state, std::size_t action) const {
  return visit_counts_[index(state, action)];
}

void QTable::set_visits(std::size_t state, std::size_t action,
                        std::uint64_t count) {
  constexpr std::uint64_t kMax = 0xFFFFFFFFull;
  visit_counts_[index(state, action)] =
      static_cast<std::uint32_t>(std::min(count, kMax));
}

std::size_t QTable::visited_pairs() const {
  std::size_t n = 0;
  for (auto count : visit_counts_) n += count > 0 ? 1 : 0;
  return n;
}

std::size_t QTable::visited_states() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < states_; ++s) {
    for (std::size_t a = 0; a < actions_; ++a) {
      if (visit_counts_[s * actions_ + a] > 0) {
        ++n;
        break;
      }
    }
  }
  return n;
}

void QTable::fill(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void QTable::save(std::ostream& out) const {
  CsvWriter writer(out);
  for (std::size_t s = 0; s < states_; ++s) {
    std::vector<double> row(values_.begin() + s * actions_,
                            values_.begin() + (s + 1) * actions_);
    writer.write_row_values(row);
  }
}

QTable QTable::load(std::istream& in) {
  const auto rows = CsvReader::parse(in);
  if (rows.empty()) throw std::runtime_error("QTable::load: empty input");
  const std::size_t actions = rows.front().size();
  QTable table(rows.size(), actions);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    if (rows[s].size() != actions) {
      throw std::runtime_error("QTable::load: ragged rows");
    }
    for (std::size_t a = 0; a < actions; ++a) {
      table.set(s, a, std::stod(rows[s][a]));
    }
  }
  return table;
}

}  // namespace pmrl::rl
