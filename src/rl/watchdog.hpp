#pragma once
// Policy watchdog: graceful degradation for the learned governor. A
// deployed RL policy can diverge — a corrupted Q-table, telemetry faults
// that poison online learning, or an oscillating action loop — and a
// production power manager must never let a sick policy burn the battery
// or starve QoS. The watchdog wraps the RL governor together with a
// registered *safe governor* (a conventional baseline, conservative by
// default) behind the ordinary Governor interface and runs a small state
// machine:
//
//         trip (QoS streak | oscillation | unhealthy Q)
//   PRIMARY ------------------------------------------> FALLBACK
//       ^                                                  |
//       |   hold_epochs elapsed AND clean_epochs healthy   |
//       +------------------ re-engage ---------------------+
//
// Hysteresis on both edges prevents flapping: a trip holds the fallback
// for at least `hold_epochs`, and re-engagement additionally requires a
// streak of clean epochs plus a healthy Q-table. While the fallback is
// engaged the primary is quarantined (not invoked), so a poisoned agent
// cannot keep learning from the epochs it ruined.

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "governors/governor.hpp"
#include "rl/rl_governor.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
}  // namespace pmrl::obs

namespace pmrl::rl {

/// Why the watchdog engaged the fallback.
enum class WatchdogTrip {
  None,
  QosStreak,    ///< sustained violation pressure under the primary
  Oscillation,  ///< rapid OPP direction flapping on some domain
  UnhealthyQ,   ///< NaN / Inf / out-of-range Q-values in the agents
};

const char* watchdog_trip_name(WatchdogTrip trip);

/// Watchdog thresholds. Defaults are tuned for 20 ms epochs (50 Hz):
/// trips react within ~0.2 s, re-engagement takes >= 0.5 s of health.
struct WatchdogConfig {
  /// Epoch violation pressure (violations / released deadline jobs) at or
  /// above which an epoch counts toward the QoS streak.
  double violation_pressure = 0.5;
  /// Consecutive pressured epochs that trip the watchdog.
  std::size_t qos_streak_epochs = 10;
  /// Sliding window (epochs) over which OPP direction flips are counted.
  std::size_t oscillation_window = 16;
  /// Direction reversals within the window that trip the watchdog. A
  /// reversal is an up-move following a down-move (or vice versa) on the
  /// same DVFS domain.
  std::size_t oscillation_flips = 10;
  /// Scan the agents' Q-tables for NaN/Inf/out-of-range every epoch.
  bool check_q_health = true;
  /// |Q| beyond this is treated as corruption.
  double q_bound = 1e6;
  /// Minimum epochs the fallback stays engaged after a trip.
  std::size_t hold_epochs = 25;
  /// Consecutive clean (unpressured) epochs required to re-engage the
  /// primary once the hold has elapsed.
  std::size_t clean_epochs = 10;
};

/// Governor wrapper implementing the fallback state machine. The primary
/// is held by reference (the caller owns it — typically a trained
/// RlGovernor whose learned state outlives runs); the fallback is owned.
class PolicyWatchdog : public governors::Governor {
 public:
  PolicyWatchdog(RlGovernor& primary, governors::GovernorPtr fallback,
                 WatchdogConfig config = {});

  std::string name() const override;
  void reset(const governors::PolicyObservation& initial) override;
  void decide(const governors::PolicyObservation& obs,
              governors::OppRequest& request) override;

  /// True while the safe governor is driving.
  bool engaged() const { return engaged_; }
  /// Times the fallback was engaged since construction/reset.
  std::size_t engagements() const { return engagements_; }
  /// Epochs driven by the fallback / total epochs, since reset.
  std::size_t fallback_epochs() const { return fallback_epochs_; }
  std::size_t total_epochs() const { return total_epochs_; }
  /// Reason of the most recent engagement.
  WatchdogTrip last_trip() const { return last_trip_; }
  /// Scans the primary's Q-tables; false on NaN/Inf/out-of-range.
  bool q_healthy() const;

  const WatchdogConfig& config() const { return wd_config_; }
  RlGovernor& primary() { return primary_; }
  governors::Governor& fallback() { return *fallback_; }

  /// Installs a trace sink (nullptr disengages): a Watchdog event is
  /// emitted on every trip (value=1, detail=trip name) and re-engagement
  /// (value=0, detail="re-engage").
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a metrics registry (nullptr detaches): counts trips and
  /// re-engagements.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  void observe_epoch(const governors::PolicyObservation& obs);
  WatchdogTrip evaluate_trip() const;
  void record_requests(const governors::PolicyObservation& obs,
                       const governors::OppRequest& request);

  RlGovernor& primary_;
  governors::GovernorPtr fallback_;
  WatchdogConfig wd_config_;

  bool engaged_ = false;
  std::size_t engagements_ = 0;
  std::size_t fallback_epochs_ = 0;
  std::size_t total_epochs_ = 0;
  std::size_t epochs_since_trip_ = 0;
  std::size_t qos_streak_ = 0;
  std::size_t clean_streak_ = 0;
  WatchdogTrip last_trip_ = WatchdogTrip::None;
  /// Per-domain sliding window of move directions (-1, 0, +1).
  std::vector<std::deque<int>> move_history_;
  std::vector<std::size_t> last_request_;
  bool has_last_request_ = false;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* trips_counter_ = nullptr;
  obs::Counter* reengage_counter_ = nullptr;
};

}  // namespace pmrl::rl
