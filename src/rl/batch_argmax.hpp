#pragma once
// Micro-batched greedy-action kernels for the serving hot path.
//
// Both kernels compute, for a batch of states, the argmax over the action
// row of a dense row-major Q store — exactly the scan QTable::argmax /
// FixedPointQAgent::greedy_action perform one state at a time. The layout
// mirrors the hardware datapath in src/hw: each action column is a BRAM
// bank, a "gather" reads one bank for four states at once, and the running
// strictly-greater compare is the comparator tree, so ties break toward the
// lowest action index bit-exactly like the scalar scan (and the RTL).
//
// An AVX2 implementation is selected at runtime when the CPU supports it;
// otherwise the portable scalar loop runs. Both paths are exposed so the
// parity test can diff them on the same inputs.
//
// Preconditions (not checked — the serve layer validates requests first):
// every states[i] < rows of the Q store, actions >= 1, bias is nullptr or
// holds `actions` entries.

#include <cstddef>
#include <cstdint>

namespace pmrl::rl {

/// Batched argmax over a row-major double Q store (`values[state*actions+a]`).
/// `bias`, when non-null, is added per action before comparison (the DVFS
/// "when indifferent, step down" selection prior); TD targets never see it.
void batch_argmax_f64(const double* values, std::size_t actions,
                      const double* bias, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out);

/// Batched argmax over the element-wise two-table mean of two row-major
/// double Q stores — the Double Q-learning selection score. Each candidate
/// is scored as 0.5 * (a[state*actions+act] + b[state*actions+act]) plus
/// the optional per-action bias, in exactly that order, so results are
/// bit-identical to the scalar combined-Q scan in QLearningAgent.
void batch_argmax_f64_mean2(const double* a, const double* b,
                            std::size_t actions, const double* bias,
                            const std::uint64_t* states, std::size_t count,
                            std::uint32_t* out);

/// Batched argmax over raw fixed-point words. `bias_raw`, when non-null, is
/// added with saturation to [raw_min, raw_max] — the same FixedFormat::add
/// the scalar agent applies — before the signed compare.
void batch_argmax_i64(const std::int64_t* values, std::size_t actions,
                      const std::int64_t* bias_raw, std::int64_t raw_min,
                      std::int64_t raw_max, const std::uint64_t* states,
                      std::size_t count, std::uint32_t* out);

/// Argmax over the first `allowed` actions of one Q row (`row[a]` plus the
/// optional per-action bias), strict > so ties break toward the lowest
/// index — the scalar scan restricted to a prefix of the action set. Used
/// by constrained selection (the fleet budget layer masks the power-ordered
/// DVFS actions down to the prefix a device's cap admits, then re-argmaxes
/// only the vetoed slots). Requires allowed >= 1.
std::uint32_t argmax_prefix_f64(const double* row, const double* bias,
                                std::size_t allowed);

/// Forced-scalar variants (reference implementations for parity tests).
void batch_argmax_f64_scalar(const double* values, std::size_t actions,
                             const double* bias, const std::uint64_t* states,
                             std::size_t count, std::uint32_t* out);
void batch_argmax_f64_mean2_scalar(const double* a, const double* b,
                                   std::size_t actions, const double* bias,
                                   const std::uint64_t* states,
                                   std::size_t count, std::uint32_t* out);
void batch_argmax_i64_scalar(const std::int64_t* values, std::size_t actions,
                             const std::int64_t* bias_raw, std::int64_t raw_min,
                             std::int64_t raw_max, const std::uint64_t* states,
                             std::size_t count, std::uint32_t* out);

/// Name of the dispatched implementation: "avx2" or "scalar".
const char* batch_argmax_backend();

}  // namespace pmrl::rl
