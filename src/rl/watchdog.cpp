#include "rl/watchdog.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "util/log.hpp"

namespace pmrl::rl {

const char* watchdog_trip_name(WatchdogTrip trip) {
  switch (trip) {
    case WatchdogTrip::None: return "none";
    case WatchdogTrip::QosStreak: return "qos-streak";
    case WatchdogTrip::Oscillation: return "oscillation";
    case WatchdogTrip::UnhealthyQ: return "unhealthy-q";
  }
  return "unknown";
}

PolicyWatchdog::PolicyWatchdog(RlGovernor& primary,
                               governors::GovernorPtr fallback,
                               WatchdogConfig config)
    : primary_(primary), fallback_(std::move(fallback)), wd_config_(config) {
  if (!fallback_) {
    throw std::invalid_argument("watchdog needs a fallback governor");
  }
}

std::string PolicyWatchdog::name() const {
  return primary_.name() + "+watchdog(" + fallback_->name() + ")";
}

void PolicyWatchdog::set_metrics(pmrl::obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  trips_counter_ = metrics ? &metrics->counter("watchdog.trips") : nullptr;
  reengage_counter_ =
      metrics ? &metrics->counter("watchdog.reengagements") : nullptr;
}

void PolicyWatchdog::reset(const governors::PolicyObservation& initial) {
  primary_.reset(initial);
  fallback_->reset(initial);
  engaged_ = false;
  engagements_ = 0;
  fallback_epochs_ = 0;
  total_epochs_ = 0;
  epochs_since_trip_ = 0;
  qos_streak_ = 0;
  clean_streak_ = 0;
  last_trip_ = WatchdogTrip::None;
  move_history_.clear();
  last_request_.clear();
  has_last_request_ = false;
}

bool PolicyWatchdog::q_healthy() const {
  if (!wd_config_.check_q_health) return true;
  for (std::size_t i = 0; i < primary_.agent_count(); ++i) {
    const QAgent& agent = primary_.agent(i);
    for (std::size_t s = 0; s < agent.state_count(); ++s) {
      for (std::size_t a = 0; a < agent.action_count(); ++a) {
        const double q = agent.q_value(s, a);
        if (!std::isfinite(q) || std::fabs(q) > wd_config_.q_bound) {
          return false;
        }
      }
    }
  }
  return true;
}

void PolicyWatchdog::observe_epoch(const governors::PolicyObservation& obs) {
  ++total_epochs_;
  const double releases =
      obs.epoch_releases > 0 ? static_cast<double>(obs.epoch_releases) : 1.0;
  const double pressure = static_cast<double>(obs.epoch_violations) / releases;
  if (pressure >= wd_config_.violation_pressure) {
    ++qos_streak_;
    clean_streak_ = 0;
  } else {
    qos_streak_ = 0;
    ++clean_streak_;
  }
}

void PolicyWatchdog::record_requests(
    const governors::PolicyObservation& obs,
    const governors::OppRequest& request) {
  if (move_history_.size() < request.size()) {
    move_history_.resize(request.size());
  }
  for (std::size_t c = 0; c < request.size(); ++c) {
    int dir = 0;
    const std::size_t current =
        c < obs.soc.clusters.size() ? obs.soc.clusters[c].opp_index
                                    : (has_last_request_ ? last_request_[c]
                                                         : request[c]);
    if (request[c] > current) dir = 1;
    if (request[c] < current) dir = -1;
    auto& history = move_history_[c];
    history.push_back(dir);
    while (history.size() > wd_config_.oscillation_window) {
      history.pop_front();
    }
  }
  last_request_.assign(request.begin(), request.end());
  has_last_request_ = true;
}

WatchdogTrip PolicyWatchdog::evaluate_trip() const {
  if (!q_healthy()) return WatchdogTrip::UnhealthyQ;
  if (qos_streak_ >= wd_config_.qos_streak_epochs) {
    return WatchdogTrip::QosStreak;
  }
  for (const auto& history : move_history_) {
    std::size_t flips = 0;
    int last_dir = 0;
    for (int dir : history) {
      if (dir == 0) continue;
      if (last_dir != 0 && dir != last_dir) ++flips;
      last_dir = dir;
    }
    if (flips >= wd_config_.oscillation_flips) {
      return WatchdogTrip::Oscillation;
    }
  }
  return WatchdogTrip::None;
}

void PolicyWatchdog::decide(const governors::PolicyObservation& obs,
                            governors::OppRequest& request) {
  observe_epoch(obs);

  if (engaged_) {
    ++fallback_epochs_;
    ++epochs_since_trip_;
    fallback_->decide(obs, request);
    // Re-engage only after the hold expires, the system has been healthy
    // for a sustained stretch, and the Q-tables scan clean. A NaN-poisoned
    // table never scans clean, so that trip is permanent by design.
    if (epochs_since_trip_ >= wd_config_.hold_epochs &&
        clean_streak_ >= wd_config_.clean_epochs && q_healthy()) {
      engaged_ = false;
      qos_streak_ = 0;
      move_history_.clear();
      has_last_request_ = false;
      // The primary's decision chain is stale (it last saw an epoch from
      // before the trip); restart it so the first TD update after
      // re-engagement does not bridge the gap.
      primary_.reset(obs);
      PMRL_INFO("watchdog") << "re-engaging primary after "
                            << epochs_since_trip_ << " fallback epochs";
      if (reengage_counter_) reengage_counter_->inc();
      if (trace_) {
        pmrl::obs::TraceEvent event;
        event.kind = pmrl::obs::EventKind::Watchdog;
        event.epoch = total_epochs_;
        event.time_s = obs.soc.time_s;
        event.value = 0.0;
        event.detail = "re-engage";
        trace_->record(event);
      }
    }
    return;
  }

  primary_.decide(obs, request);
  record_requests(obs, request);
  const WatchdogTrip trip = evaluate_trip();
  if (trip != WatchdogTrip::None) {
    engaged_ = true;
    ++engagements_;
    ++fallback_epochs_;
    epochs_since_trip_ = 0;
    last_trip_ = trip;
    PMRL_WARN("watchdog") << "trip (" << watchdog_trip_name(trip)
                          << "): engaging " << fallback_->name();
    if (trips_counter_) trips_counter_->inc();
    if (trace_) {
      pmrl::obs::TraceEvent event;
      event.kind = pmrl::obs::EventKind::Watchdog;
      event.epoch = total_epochs_;
      event.time_s = obs.soc.time_s;
      event.value = 1.0;
      event.detail = watchdog_trip_name(trip);
      trace_->record(event);
    }
    // Override this epoch's request with the safe governor's decision —
    // the primary's choice is the one under suspicion.
    fallback_->decide(obs, request);
  }
}

}  // namespace pmrl::rl
