#pragma once
// Trace sinks: where structured TraceEvents go. The observability contract
// is "zero overhead when disabled" — producers hold a nullable TraceSink*
// and skip everything behind one pointer check — and "deterministic when
// enabled": sinks only see simulation-derived data, so a farmed run's
// per-task trace is byte-identical to the serial run's.
//
// Sinks:
//   VectorTraceSink  unbounded in-memory buffer (tests, CLI, farm tasks)
//   RingTraceSink    fixed-capacity ring keeping the LAST N events, with a
//                    compact binary dump (flight-recorder for long runs)
//   CsvTraceSink     streaming CSV rows over any std::ostream
//   JsonlTraceSink   streaming JSON-object lines over any std::ostream

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"
#include "util/csv.hpp"
#include "util/ring_buffer.hpp"

namespace pmrl::obs {

/// Receiver of structured trace events. Implementations need not be
/// thread-safe: the farm gives every task its own sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Keeps every event, in order.
class VectorTraceSink : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> take() { return std::move(events_); }

 private:
  std::vector<TraceEvent> events_;
};

/// Flight recorder: ring buffer holding the last `capacity` events; older
/// events are dropped (and counted). save() dumps the retained window in
/// the compact binary trace format.
class RingTraceSink : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity) : ring_(capacity) {}

  void record(const TraceEvent& event) override {
    if (ring_.full()) ++dropped_;
    ring_.push(event);
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  /// Events overwritten since construction.
  std::size_t dropped() const { return dropped_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Binary dump of the retained window (read back with load()).
  void save(std::ostream& out) const;
  static std::vector<TraceEvent> load(std::istream& in);

 private:
  RingBuffer<TraceEvent> ring_;
  std::size_t dropped_ = 0;
};

/// Streams events as CSV rows (header emitted with the first event). The
/// column layout is fixed by `cluster_count` (see trace_csv_header).
class CsvTraceSink : public TraceSink {
 public:
  CsvTraceSink(std::ostream& out, std::size_t cluster_count);

  void record(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& out_;
  std::size_t cluster_count_;
  CsvWriter writer_;
  std::vector<std::string> fields_;  // reused per record
};

/// Streams events as JSONL (one JSON object per line).
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}

  void record(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// Serializes buffered events as a complete CSV document (header + rows).
void write_csv_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                     std::size_t cluster_count);

/// Parses a complete CSV trace document (header + rows) back into events.
std::vector<TraceEvent> read_csv_trace(std::istream& in);

/// Serializes buffered events as JSONL.
void write_jsonl_trace(std::ostream& out,
                       const std::vector<TraceEvent>& events);

/// Largest cluster-sample count across `events` (the CSV column layout).
std::size_t trace_cluster_count(const std::vector<TraceEvent>& events);

}  // namespace pmrl::obs
