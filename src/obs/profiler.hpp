#pragma once
// Lightweight scoped-timer profiling for the tick/epoch hot paths. A
// producer holds a nullable Profiler* and caches TimerStat pointers at
// attach time; with no profiler attached the cost is one pointer check.
// Timers are charged at epoch (not tick) granularity inside the engine, so
// even an attached profiler costs only two clock reads per decision epoch.
//
// TimerStat accumulation is atomic, so one Profiler can be shared by every
// task of a farm batch.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmrl::obs {

/// Accumulated time of one named code region.
class TimerStat {
 public:
  void add(std::uint64_t ns, std::uint64_t calls = 1) {
    ns_.fetch_add(ns, std::memory_order_relaxed);
    calls_.fetch_add(calls, std::memory_order_relaxed);
  }

  std::uint64_t total_ns() const {
    return ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  double total_s() const { return static_cast<double>(total_ns()) * 1e-9; }
  double mean_s() const {
    const auto n = calls();
    return n > 0 ? total_s() / static_cast<double>(n) : 0.0;
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Registry of named timers. timer() references stay valid for the
/// profiler's lifetime (node-based map).
class Profiler {
 public:
  TimerStat& timer(const std::string& name);

  std::vector<std::string> names() const;

  /// Human-readable breakdown, one line per timer, sorted by total time.
  void write_report(std::ostream& out) const;
  /// {"name":{"total_s":...,"calls":...,"mean_s":...},...}
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

/// RAII timer: charges the elapsed time to `stat` on destruction; a null
/// stat disables it entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* stat) : stat_(stat) {
    if (stat_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (stat_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      stat_->add(static_cast<std::uint64_t>(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace pmrl::obs
