#include "obs/trace_sink.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace pmrl::obs {

std::vector<TraceEvent> RingTraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

void RingTraceSink::save(std::ostream& out) const {
  write_binary_trace(out, snapshot());
}

std::vector<TraceEvent> RingTraceSink::load(std::istream& in) {
  return read_binary_trace(in);
}

CsvTraceSink::CsvTraceSink(std::ostream& out, std::size_t cluster_count)
    : out_(out),
      cluster_count_(cluster_count),
      writer_(out, trace_csv_header(cluster_count)) {}

void CsvTraceSink::record(const TraceEvent& event) {
  trace_csv_fields(event, cluster_count_, fields_);
  writer_.write_row(fields_);
}

void CsvTraceSink::flush() { out_.flush(); }

void JsonlTraceSink::record(const TraceEvent& event) {
  out_ << trace_jsonl_line(event) << '\n';
}

void JsonlTraceSink::flush() { out_.flush(); }

std::size_t trace_cluster_count(const std::vector<TraceEvent>& events) {
  std::size_t n = 0;
  for (const TraceEvent& event : events) {
    n = std::max(n, event.clusters.size());
  }
  return n;
}

void write_csv_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                     std::size_t cluster_count) {
  CsvTraceSink sink(out, cluster_count);
  for (const TraceEvent& event : events) sink.record(event);
  // A trace with zero events still gets its header so readers can tell an
  // empty trace from a missing one.
  if (events.empty()) {
    CsvWriter writer(out);
    writer.write_row(trace_csv_header(cluster_count));
  }
}

std::vector<TraceEvent> read_csv_trace(std::istream& in) {
  const auto rows = CsvReader::parse(in);
  if (rows.empty()) throw std::runtime_error("trace: empty CSV document");
  const std::size_t width = rows.front().size();
  if (width < 16 || (width - 16) % 5 != 0) {
    throw std::runtime_error("trace: CSV header width " +
                             std::to_string(width) +
                             " is not a trace schema");
  }
  const std::size_t cluster_count = (width - 16) / 5;
  std::vector<TraceEvent> events;
  events.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    events.push_back(trace_from_csv_fields(rows[i], cluster_count));
  }
  return events;
}

void write_jsonl_trace(std::ostream& out,
                       const std::vector<TraceEvent>& events) {
  JsonlTraceSink sink(out);
  for (const TraceEvent& event : events) sink.record(event);
}

}  // namespace pmrl::obs
