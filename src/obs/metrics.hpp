#pragma once
// MetricsRegistry: named counters, gauges, and histograms shared across the
// whole stack (engine, RL policy, fault injector, hardware interface, run
// farm). Instruments are lock-free on the hot path (atomics); the registry
// itself is mutex-protected and node-based, so a reference handed out by
// counter()/gauge()/histogram() stays valid for the registry's lifetime.
// One registry can be attached to every task of a RunFarm batch: the atomic
// instruments aggregate across worker threads without locks.
//
// Zero-overhead-when-disabled: producers cache instrument pointers at
// attach time (set_metrics) and skip everything behind one nullptr check.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmrl::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value plus a running maximum.
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void update_max(double v) {
    double seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> value_{0.0};
  std::atomic<double> max_{std::numeric_limits<double>::lowest()};
};

/// Fixed-bucket histogram: counts per upper bound (a final +inf bucket is
/// implicit) plus sum/count for the mean.
class Histogram {
 public:
  /// `bounds` are ascending upper bounds; throws std::invalid_argument on
  /// an unsorted list.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const auto n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count of observations in bucket i (i == bounds().size() is +inf).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) from the bucket counts: linear
  /// interpolation inside the bucket holding the rank (the first bucket
  /// interpolates from 0). Ranks landing in the +inf bucket clamp to the
  /// highest finite bound. Returns 0 with no observations.
  double percentile(double q) const;

  /// Folds another histogram's buckets/count/sum into this one. Both must
  /// have identical bounds (std::invalid_argument otherwise). Not atomic as
  /// a whole: merge shard-local histograms after their producers are done,
  /// in a fixed order, so the floating-point sum stays deterministic.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of named instruments.
class MetricsRegistry {
 public:
  /// Returns the instrument named `name`, creating it on first use. A name
  /// identifies exactly one instrument kind; re-requesting it as a
  /// different kind throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Default bounds suit latency-ish seconds values; bounds are fixed by
  /// the first call for a given name.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// All instrument names, sorted (deterministic dump order).
  std::vector<std::string> names() const;

  /// Dumps every instrument as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace pmrl::obs
