#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/trace_event.hpp"  // format_trace_double

namespace pmrl::obs {

TimerStat& Profiler::timer(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::make_unique<TimerStat>()).first;
  }
  return *it->second;
}

std::vector<std::string> Profiler::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(timers_.size());
  for (const auto& [name, stat] : timers_) out.push_back(name);
  return out;
}

void Profiler::write_report(std::ostream& out) const {
  struct Row {
    std::string name;
    double total_s;
    std::uint64_t calls;
    double mean_s;
  };
  std::vector<Row> rows;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(timers_.size());
    for (const auto& [name, stat] : timers_) {
      rows.push_back({name, stat->total_s(), stat->calls(), stat->mean_s()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total_s > b.total_s; });
  for (const Row& row : rows) {
    char line[160];
    std::snprintf(line, sizeof line, "%-28s %10.4f s  %10llu calls  %.3f us/call",
                  row.name.c_str(), row.total_s,
                  static_cast<unsigned long long>(row.calls),
                  row.mean_s * 1e6);
    out << line << '\n';
  }
}

void Profiler::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << '{';
  bool first = true;
  for (const auto& [name, stat] : timers_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name
        << "\":{\"total_s\":" << format_trace_double(stat->total_s())
        << ",\"calls\":" << stat->calls()
        << ",\"mean_s\":" << format_trace_double(stat->mean_s()) << '}';
  }
  out << '}';
}

}  // namespace pmrl::obs
