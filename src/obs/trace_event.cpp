#include "obs/trace_event.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pmrl::obs {

namespace {

constexpr char kBinaryMagic[8] = {'P', 'M', 'R', 'L', 'O', 'B', 'S', '1'};
/// Fixed CSV columns ahead of the per-cluster groups.
constexpr std::size_t kFixedColumns = 16;
constexpr std::size_t kClusterColumns = 5;

std::string format_u64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

double parse_double(const std::string& field, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    if (pos != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace: bad double in ") + what +
                             ": '" + field + "'");
  }
}

std::uint64_t parse_u64(const std::string& field, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(field, &pos);
    if (pos != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace: bad integer in ") + what +
                             ": '" + field + "'");
  }
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::RunBegin: return "run_begin";
    case EventKind::Epoch: return "epoch";
    case EventKind::Decision: return "decision";
    case EventKind::Fault: return "fault";
    case EventKind::Watchdog: return "watchdog";
    case EventKind::HwInvoke: return "hw_invoke";
    case EventKind::RunEnd: return "run_end";
    case EventKind::Budget: return "budget";
    case EventKind::Rollout: return "rollout";
  }
  return "unknown";
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (const EventKind kind :
       {EventKind::RunBegin, EventKind::Epoch, EventKind::Decision,
        EventKind::Fault, EventKind::Watchdog, EventKind::HwInvoke,
        EventKind::RunEnd, EventKind::Budget, EventKind::Rollout}) {
    if (name == event_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::string format_trace_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

// ---- CSV -------------------------------------------------------------------

std::vector<std::string> trace_csv_header(std::size_t cluster_count) {
  std::vector<std::string> header = {
      "kind",     "epoch",          "time_s",   "index",
      "state",    "action",         "reward",   "energy_j",
      "total_energy_j", "quality",  "violations", "releases",
      "power_w",  "latency_s",      "value",    "detail"};
  for (std::size_t c = 0; c < cluster_count; ++c) {
    const std::string prefix = "c" + std::to_string(c) + "_";
    header.push_back(prefix + "opp");
    header.push_back(prefix + "freq_hz");
    header.push_back(prefix + "util");
    header.push_back(prefix + "energy_j");
    header.push_back(prefix + "temp_c");
  }
  return header;
}

void trace_csv_fields(const TraceEvent& event, std::size_t cluster_count,
                      std::vector<std::string>& out) {
  out.clear();
  out.reserve(kFixedColumns + kClusterColumns * cluster_count);
  out.push_back(event_kind_name(event.kind));
  out.push_back(format_u64(event.epoch));
  out.push_back(format_trace_double(event.time_s));
  out.push_back(format_u64(event.index));
  out.push_back(format_u64(event.state));
  out.push_back(format_u64(event.action));
  out.push_back(format_trace_double(event.reward));
  out.push_back(format_trace_double(event.energy_j));
  out.push_back(format_trace_double(event.total_energy_j));
  out.push_back(format_trace_double(event.quality));
  out.push_back(format_u64(event.violations));
  out.push_back(format_u64(event.releases));
  out.push_back(format_trace_double(event.power_w));
  out.push_back(format_trace_double(event.latency_s));
  out.push_back(format_trace_double(event.value));
  out.push_back(event.detail);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    if (c < event.clusters.size()) {
      const ClusterSample& s = event.clusters[c];
      out.push_back(format_u64(s.opp_index));
      out.push_back(format_trace_double(s.freq_hz));
      out.push_back(format_trace_double(s.util_avg));
      out.push_back(format_trace_double(s.energy_j));
      out.push_back(format_trace_double(s.temp_c));
    } else {
      for (std::size_t k = 0; k < kClusterColumns; ++k) out.emplace_back();
    }
  }
}

TraceEvent trace_from_csv_fields(const std::vector<std::string>& fields,
                                 std::size_t cluster_count) {
  if (fields.size() != kFixedColumns + kClusterColumns * cluster_count) {
    throw std::runtime_error("trace: row width " +
                             std::to_string(fields.size()) +
                             " does not match " +
                             std::to_string(cluster_count) + " clusters");
  }
  TraceEvent event;
  const auto kind = event_kind_from_name(fields[0]);
  if (!kind) {
    throw std::runtime_error("trace: unknown event kind '" + fields[0] + "'");
  }
  event.kind = *kind;
  event.epoch = parse_u64(fields[1], "epoch");
  event.time_s = parse_double(fields[2], "time_s");
  event.index = static_cast<std::uint32_t>(parse_u64(fields[3], "index"));
  event.state = parse_u64(fields[4], "state");
  event.action = static_cast<std::uint32_t>(parse_u64(fields[5], "action"));
  event.reward = parse_double(fields[6], "reward");
  event.energy_j = parse_double(fields[7], "energy_j");
  event.total_energy_j = parse_double(fields[8], "total_energy_j");
  event.quality = parse_double(fields[9], "quality");
  event.violations = parse_u64(fields[10], "violations");
  event.releases = parse_u64(fields[11], "releases");
  event.power_w = parse_double(fields[12], "power_w");
  event.latency_s = parse_double(fields[13], "latency_s");
  event.value = parse_double(fields[14], "value");
  event.detail = fields[15];
  for (std::size_t c = 0; c < cluster_count; ++c) {
    const std::size_t base = kFixedColumns + c * kClusterColumns;
    if (fields[base].empty()) break;  // no sample for this (or any later) slot
    ClusterSample s;
    s.opp_index = static_cast<std::uint32_t>(parse_u64(fields[base], "opp"));
    s.freq_hz = parse_double(fields[base + 1], "freq_hz");
    s.util_avg = parse_double(fields[base + 2], "util");
    s.energy_j = parse_double(fields[base + 3], "cluster energy_j");
    s.temp_c = parse_double(fields[base + 4], "temp_c");
    event.clusters.push_back(s);
  }
  return event;
}

// ---- JSONL -----------------------------------------------------------------

namespace {

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char ch : value) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Minimal parser for the flat JSON objects trace_jsonl_line emits: one
/// object of number/string members plus one "clusters" array of flat
/// number objects. Not a general JSON parser.
class JsonlParser {
 public:
  explicit JsonlParser(const std::string& text) : text_(text) {}

  TraceEvent parse() {
    TraceEvent event;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) fail("expected ',' or '}'");
      first = false;
      parse_members(event);
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return event;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace jsonl: " + what + " at offset " +
                             std::to_string(pos_));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void expect(char ch) {
    skip_ws();
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') break;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0xFF) fail("non-latin \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) fail("expected number");
    return parse_double(text_.substr(start, pos_ - start), "jsonl number");
  }

  void parse_members(TraceEvent& event) {
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      expect(':');
      skip_ws();
      if (key == "kind") {
        const std::string name = parse_string();
        const auto kind = event_kind_from_name(name);
        if (!kind) fail("unknown kind '" + name + "'");
        event.kind = *kind;
      } else if (key == "detail") {
        event.detail = parse_string();
      } else if (key == "clusters") {
        parse_clusters(event);
      } else {
        const double v = parse_number();
        if (key == "epoch") event.epoch = static_cast<std::uint64_t>(v);
        else if (key == "time_s") event.time_s = v;
        else if (key == "index") event.index = static_cast<std::uint32_t>(v);
        else if (key == "state") event.state = static_cast<std::uint64_t>(v);
        else if (key == "action") event.action = static_cast<std::uint32_t>(v);
        else if (key == "reward") event.reward = v;
        else if (key == "energy_j") event.energy_j = v;
        else if (key == "total_energy_j") event.total_energy_j = v;
        else if (key == "quality") event.quality = v;
        else if (key == "violations") event.violations = static_cast<std::uint64_t>(v);
        else if (key == "releases") event.releases = static_cast<std::uint64_t>(v);
        else if (key == "power_w") event.power_w = v;
        else if (key == "latency_s") event.latency_s = v;
        else if (key == "value") event.value = v;
        else fail("unknown member '" + key + "'");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return;
    }
  }

  void parse_clusters(TraceEvent& event) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      expect('{');
      ClusterSample sample;
      while (true) {
        skip_ws();
        const std::string key = parse_string();
        expect(':');
        const double v = parse_number();
        if (key == "opp") sample.opp_index = static_cast<std::uint32_t>(v);
        else if (key == "freq_hz") sample.freq_hz = v;
        else if (key == "util") sample.util_avg = v;
        else if (key == "energy_j") sample.energy_j = v;
        else if (key == "temp_c") sample.temp_c = v;
        else fail("unknown cluster member '" + key + "'");
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
      event.clusters.push_back(sample);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string trace_jsonl_line(const TraceEvent& event) {
  std::string out;
  out.reserve(256);
  out += "{\"kind\":";
  append_json_string(out, event_kind_name(event.kind));
  out += ",\"epoch\":" + format_u64(event.epoch);
  out += ",\"time_s\":" + format_trace_double(event.time_s);
  out += ",\"index\":" + format_u64(event.index);
  out += ",\"state\":" + format_u64(event.state);
  out += ",\"action\":" + format_u64(event.action);
  out += ",\"reward\":" + format_trace_double(event.reward);
  out += ",\"energy_j\":" + format_trace_double(event.energy_j);
  out += ",\"total_energy_j\":" + format_trace_double(event.total_energy_j);
  out += ",\"quality\":" + format_trace_double(event.quality);
  out += ",\"violations\":" + format_u64(event.violations);
  out += ",\"releases\":" + format_u64(event.releases);
  out += ",\"power_w\":" + format_trace_double(event.power_w);
  out += ",\"latency_s\":" + format_trace_double(event.latency_s);
  out += ",\"value\":" + format_trace_double(event.value);
  out += ",\"detail\":";
  append_json_string(out, event.detail);
  out += ",\"clusters\":[";
  for (std::size_t c = 0; c < event.clusters.size(); ++c) {
    const ClusterSample& s = event.clusters[c];
    if (c > 0) out += ',';
    out += "{\"opp\":" + format_u64(s.opp_index);
    out += ",\"freq_hz\":" + format_trace_double(s.freq_hz);
    out += ",\"util\":" + format_trace_double(s.util_avg);
    out += ",\"energy_j\":" + format_trace_double(s.energy_j);
    out += ",\"temp_c\":" + format_trace_double(s.temp_c);
    out += '}';
  }
  out += "]}";
  return out;
}

TraceEvent trace_from_jsonl_line(const std::string& line) {
  return JsonlParser(line).parse();
}

// ---- Binary ----------------------------------------------------------------

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("trace: truncated binary stream");
  return value;
}

}  // namespace

void write_binary_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  write_pod(out, static_cast<std::uint64_t>(events.size()));
  for (const TraceEvent& event : events) {
    write_pod(out, static_cast<std::uint8_t>(event.kind));
    write_pod(out, event.epoch);
    write_pod(out, event.time_s);
    write_pod(out, event.index);
    write_pod(out, event.state);
    write_pod(out, event.action);
    write_pod(out, event.reward);
    write_pod(out, event.energy_j);
    write_pod(out, event.total_energy_j);
    write_pod(out, event.quality);
    write_pod(out, event.violations);
    write_pod(out, event.releases);
    write_pod(out, event.power_w);
    write_pod(out, event.latency_s);
    write_pod(out, event.value);
    write_pod(out, static_cast<std::uint32_t>(event.detail.size()));
    out.write(event.detail.data(),
              static_cast<std::streamsize>(event.detail.size()));
    write_pod(out, static_cast<std::uint32_t>(event.clusters.size()));
    for (const ClusterSample& s : event.clusters) {
      write_pod(out, s.opp_index);
      write_pod(out, s.freq_hz);
      write_pod(out, s.util_avg);
      write_pod(out, s.energy_j);
      write_pod(out, s.temp_c);
    }
  }
}

std::vector<TraceEvent> read_binary_trace(std::istream& in) {
  char magic[sizeof kBinaryMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    throw std::runtime_error("trace: bad binary magic");
  }
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    const auto kind = read_pod<std::uint8_t>(in);
    if (kind > static_cast<std::uint8_t>(EventKind::Rollout)) {
      throw std::runtime_error("trace: bad binary event kind");
    }
    event.kind = static_cast<EventKind>(kind);
    event.epoch = read_pod<std::uint64_t>(in);
    event.time_s = read_pod<double>(in);
    event.index = read_pod<std::uint32_t>(in);
    event.state = read_pod<std::uint64_t>(in);
    event.action = read_pod<std::uint32_t>(in);
    event.reward = read_pod<double>(in);
    event.energy_j = read_pod<double>(in);
    event.total_energy_j = read_pod<double>(in);
    event.quality = read_pod<double>(in);
    event.violations = read_pod<std::uint64_t>(in);
    event.releases = read_pod<std::uint64_t>(in);
    event.power_w = read_pod<double>(in);
    event.latency_s = read_pod<double>(in);
    event.value = read_pod<double>(in);
    const auto detail_len = read_pod<std::uint32_t>(in);
    event.detail.resize(detail_len);
    in.read(event.detail.data(), detail_len);
    if (!in) throw std::runtime_error("trace: truncated binary detail");
    const auto n_clusters = read_pod<std::uint32_t>(in);
    event.clusters.reserve(n_clusters);
    for (std::uint32_t c = 0; c < n_clusters; ++c) {
      ClusterSample s;
      s.opp_index = read_pod<std::uint32_t>(in);
      s.freq_hz = read_pod<double>(in);
      s.util_avg = read_pod<double>(in);
      s.energy_j = read_pod<double>(in);
      s.temp_c = read_pod<double>(in);
      event.clusters.push_back(s);
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace pmrl::obs
