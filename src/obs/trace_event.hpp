#pragma once
// The structured trace event: one record per observable step of a run.
// Every producer (the engine's epoch loop, the RL governor's decision
// chain, the fault injector, the watchdog, the hardware policy interface)
// emits these into a TraceSink, so the whole state -> action -> reward ->
// energy chain of a run can be inspected and pinned down offline.
//
// Determinism rule: events carry ONLY simulation-derived values (sim time,
// energies, indices) — never wall-clock time, thread ids, or pointers — so
// the trace of a run is a pure function of its inputs and a farmed run's
// per-task trace is byte-identical to the serial run's.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pmrl::obs {

/// What a TraceEvent describes.
enum class EventKind : std::uint8_t {
  RunBegin = 0,  ///< start of a run: initial telemetry, scenario/governor
  Epoch,         ///< one decision epoch's telemetry + energy/QoS deltas
  Decision,      ///< one agent's state/action/reward at a decision point
  Fault,         ///< an injected fault fired (detail names the kind)
  Watchdog,      ///< fallback engaged (value=1) or primary re-engaged (0)
  HwInvoke,      ///< one hardware policy invocation (latency, retries)
  RunEnd,        ///< end of a run: aggregate totals
  Budget,        ///< one budget-tree epoch: cap, fleet power, over-cap count
  Rollout,       ///< policy lifecycle transition (canary start/rollback/
                 ///< promote); value = candidate version, detail names it
};

const char* event_kind_name(EventKind kind);
std::optional<EventKind> event_kind_from_name(std::string_view name);

/// Per-DVFS-domain sample embedded in RunBegin/Epoch events.
struct ClusterSample {
  std::uint32_t opp_index = 0;
  double freq_hz = 0.0;
  double util_avg = 0.0;
  /// Energy this domain consumed during the epoch (J); 0 in RunBegin.
  double energy_j = 0.0;
  double temp_c = 0.0;

  bool operator==(const ClusterSample&) const = default;
};

/// One trace record. Unused fields stay zero/empty for a given kind; the
/// serialized schema is identical for all kinds so a trace is one flat,
/// rectangular table.
struct TraceEvent {
  EventKind kind = EventKind::Epoch;
  /// Decision-epoch index within the run (Decision events: decision index).
  std::uint64_t epoch = 0;
  /// Simulated time (s), never wall-clock.
  double time_s = 0.0;
  /// Which agent/cluster/domain the event refers to.
  std::uint32_t index = 0;
  /// RL state index (Decision/HwInvoke).
  std::uint64_t state = 0;
  /// RL action / move index (Decision/HwInvoke).
  std::uint32_t action = 0;
  /// Reward credited for the previous transition (Decision/HwInvoke).
  double reward = 0.0;
  /// Epoch energy delta (Epoch) or run total (RunEnd), J.
  double energy_j = 0.0;
  /// Cumulative energy at the event (J) — must be monotone within a run.
  double total_energy_j = 0.0;
  /// QoS quality units (epoch delta or run total).
  double quality = 0.0;
  std::uint64_t violations = 0;
  std::uint64_t releases = 0;
  double power_w = 0.0;
  /// End-to-end invocation latency (HwInvoke), s.
  double latency_s = 0.0;
  /// Generic payload: thermal delta (Fault), engaged flag (Watchdog),
  /// retries (HwInvoke), violation rate (RunEnd).
  double value = 0.0;
  /// Names: "scenario/governor", watchdog trip, fault kind.
  std::string detail;
  std::vector<ClusterSample> clusters;

  bool operator==(const TraceEvent&) const = default;
};

// ---- CSV schema -----------------------------------------------------------
// Fixed columns followed by cluster_count groups of per-domain columns
// (c<k>_opp, c<k>_freq_hz, c<k>_util, c<k>_energy_j, c<k>_temp_c). Events
// without samples leave the groups empty. Doubles are printed with %.17g so
// a parsed trace is bit-identical to the recorded one.

std::vector<std::string> trace_csv_header(std::size_t cluster_count);

/// Serializes one event into `out` (resized to the header width).
void trace_csv_fields(const TraceEvent& event, std::size_t cluster_count,
                      std::vector<std::string>& out);

/// Parses one CSV row (no header) back into an event; throws
/// std::runtime_error on malformed rows.
TraceEvent trace_from_csv_fields(const std::vector<std::string>& fields,
                                 std::size_t cluster_count);

// ---- JSONL schema ---------------------------------------------------------

/// One event as a single JSON object line (no trailing newline).
std::string trace_jsonl_line(const TraceEvent& event);

/// Parses a line produced by trace_jsonl_line; throws std::runtime_error on
/// malformed input.
TraceEvent trace_from_jsonl_line(const std::string& line);

// ---- Binary format --------------------------------------------------------
// Compact host-endian format ("PMRLOBS1" magic + record count + records),
// used by the ring-buffered sink's dump.

void write_binary_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);
std::vector<TraceEvent> read_binary_trace(std::istream& in);

/// %.17g formatting used by every text serialization (round-trips exactly).
std::string format_trace_double(double value);

}  // namespace pmrl::obs
