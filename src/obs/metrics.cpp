#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/trace_event.hpp"  // format_trace_double

namespace pmrl::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add is not yet universal; CAS-add instead.
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the buckets once so the walk sees one consistent total even
  // while other threads keep observing.
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0 || bounds_.empty()) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const auto n = static_cast<double>(counts[i]);
    if (cumulative + n >= rank && n > 0.0) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      return lo + (hi - lo) * ((rank - cumulative) / n);
    }
    cumulative += n;
  }
  return bounds_.back();  // rank lands in the +inf bucket
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bounds differ");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  const double add = other.sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + add,
                                     std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::Counter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::Counter) {
    throw std::invalid_argument("metric '" + name + "' is not a counter");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::Gauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::Gauge) {
    throw std::invalid_argument("metric '" + name + "' is not a gauge");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    if (bounds.empty()) {
      bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
    }
    Entry entry;
    entry.kind = Kind::Histogram;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::Histogram) {
    throw std::invalid_argument("metric '" + name + "' is not a histogram");
  }
  return *it->second.histogram;
}

std::vector<std::string> MetricsRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto write_section = [&](const char* title, Kind kind, auto&& body) {
    out << "\"" << title << "\":{";
    bool first = true;
    for (const auto& [name, entry] : entries_) {
      if (entry.kind != kind) continue;
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":";
      body(entry);
    }
    out << '}';
  };
  out << '{';
  write_section("counters", Kind::Counter, [&](const Entry& entry) {
    out << entry.counter->value();
  });
  out << ',';
  write_section("gauges", Kind::Gauge, [&](const Entry& entry) {
    const double max = entry.gauge->max();
    out << "{\"value\":" << format_trace_double(entry.gauge->value())
        << ",\"max\":"
        << format_trace_double(
               max == std::numeric_limits<double>::lowest() ? 0.0 : max)
        << '}';
  });
  out << ',';
  write_section("histograms", Kind::Histogram, [&](const Entry& entry) {
    const Histogram& h = *entry.histogram;
    out << "{\"count\":" << h.count()
        << ",\"sum\":" << format_trace_double(h.sum())
        << ",\"mean\":" << format_trace_double(h.mean())
        << ",\"p50\":" << format_trace_double(h.percentile(0.50))
        << ",\"p90\":" << format_trace_double(h.percentile(0.90))
        << ",\"p95\":" << format_trace_double(h.percentile(0.95))
        << ",\"p99\":" << format_trace_double(h.percentile(0.99))
        << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      if (i > 0) out << ',';
      out << h.bucket_count(i);
    }
    out << "]}";
  });
  out << '}';
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace pmrl::obs
