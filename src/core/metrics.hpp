#pragma once
// Cross-run aggregation: the paper's comparison is "average energy per unit
// QoS of the proposed policy vs the previous six DVFS governors". These
// helpers compute that improvement and assemble the comparison matrix the
// benches print.

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace pmrl::core {

/// Results of one policy across several scenarios.
struct PolicySummary {
  std::string governor;
  std::vector<RunResult> runs;  // one per scenario

  double mean_energy_per_qos() const;
  double mean_violation_rate() const;
  double mean_energy_j() const;
  double total_quality() const;
};

/// Relative improvement of `candidate` over `baseline` in mean energy/QoS:
/// positive means the candidate uses less energy per QoS unit.
/// (baseline - candidate) / baseline.
double energy_per_qos_improvement(const PolicySummary& candidate,
                                  const PolicySummary& baseline);

/// Mean of the per-baseline improvements (averages the six relative
/// savings).
double mean_improvement_vs_baselines(
    const PolicySummary& candidate,
    const std::vector<PolicySummary>& baselines);

/// Improvement of the candidate against the *average* of the baselines'
/// energy/QoS — the aggregation matching the paper's phrasing ("average
/// energy per unit QoS ... lower than that of the previous six DVFS
/// governors by 31.66%").
double improvement_vs_mean_baseline(
    const PolicySummary& candidate,
    const std::vector<PolicySummary>& baselines);

/// Finds a run by scenario name; throws std::invalid_argument if absent.
const RunResult& run_for_scenario(const PolicySummary& summary,
                                  const std::string& scenario);

}  // namespace pmrl::core
