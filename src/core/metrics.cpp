#include "core/metrics.hpp"

#include <stdexcept>

namespace pmrl::core {

double PolicySummary::mean_energy_per_qos() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& run : runs) sum += run.energy_per_qos;
  return sum / static_cast<double>(runs.size());
}

double PolicySummary::mean_violation_rate() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& run : runs) sum += run.violation_rate;
  return sum / static_cast<double>(runs.size());
}

double PolicySummary::mean_energy_j() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& run : runs) sum += run.energy_j;
  return sum / static_cast<double>(runs.size());
}

double PolicySummary::total_quality() const {
  double sum = 0.0;
  for (const auto& run : runs) sum += run.quality;
  return sum;
}

double energy_per_qos_improvement(const PolicySummary& candidate,
                                  const PolicySummary& baseline) {
  const double base = baseline.mean_energy_per_qos();
  if (base <= 0.0) return 0.0;
  return (base - candidate.mean_energy_per_qos()) / base;
}

double mean_improvement_vs_baselines(
    const PolicySummary& candidate,
    const std::vector<PolicySummary>& baselines) {
  if (baselines.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& baseline : baselines) {
    sum += energy_per_qos_improvement(candidate, baseline);
  }
  return sum / static_cast<double>(baselines.size());
}

double improvement_vs_mean_baseline(
    const PolicySummary& candidate,
    const std::vector<PolicySummary>& baselines) {
  if (baselines.empty()) return 0.0;
  double mean_base = 0.0;
  for (const auto& baseline : baselines) {
    mean_base += baseline.mean_energy_per_qos();
  }
  mean_base /= static_cast<double>(baselines.size());
  if (mean_base <= 0.0) return 0.0;
  return (mean_base - candidate.mean_energy_per_qos()) / mean_base;
}

const RunResult& run_for_scenario(const PolicySummary& summary,
                                  const std::string& scenario) {
  for (const auto& run : summary.runs) {
    if (run.scenario == scenario) return run;
  }
  throw std::invalid_argument("no run for scenario " + scenario);
}

}  // namespace pmrl::core
