#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"

namespace pmrl::core {

namespace {

/// WorkloadHost implementation bridging a scenario to the SoC + QoS tracker.
class EngineHost : public workload::WorkloadHost {
 public:
  EngineHost(soc::Soc& soc, workload::QosTracker& qos)
      : soc_(soc), qos_(qos) {}

  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override {
    return soc_.create_task(std::move(name), affinity, weight);
  }

  void submit(soc::TaskId task, double work_cycles,
              double deadline_s) override {
    soc::Job job;
    job.id = next_job_id_++;
    job.work_cycles = work_cycles;
    job.deadline_s = deadline_s;
    job.release_s = soc_.now_s();
    soc_.submit(task, job);
    qos_.on_release(job);
    if (job.has_deadline()) ++epoch_releases_;
  }

  std::size_t take_epoch_releases() {
    const std::size_t n = epoch_releases_;
    epoch_releases_ = 0;
    return n;
  }

 private:
  soc::Soc& soc_;
  workload::QosTracker& qos_;
  soc::JobId next_job_id_ = 1;
  std::size_t epoch_releases_ = 0;
};

}  // namespace

SimEngine::SimEngine(soc::SocConfig soc_config, EngineConfig engine_config)
    : soc_config_(std::move(soc_config)), engine_config_(engine_config) {
  if (engine_config_.tick_s <= 0.0 ||
      engine_config_.decision_period_s < engine_config_.tick_s ||
      engine_config_.duration_s <= 0.0) {
    throw std::invalid_argument("invalid engine timing configuration");
  }
}

void SimEngine::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  runs_counter_ = metrics ? &metrics->counter("engine.runs") : nullptr;
  epochs_counter_ = metrics ? &metrics->counter("engine.epochs") : nullptr;
  ticks_counter_ = metrics ? &metrics->counter("engine.ticks") : nullptr;
}

void SimEngine::set_profiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  tick_timer_ = profiler ? &profiler->timer("engine.ticks") : nullptr;
  decision_timer_ = profiler ? &profiler->timer("engine.decisions") : nullptr;
}

RunResult SimEngine::run(workload::Scenario& scenario,
                         governors::Governor& governor,
                         const EpochCallback& on_epoch) {
  soc::Soc soc(soc_config_);
  workload::QosTracker qos(engine_config_.qos_best_effort_credit);
  EngineHost host(soc, qos);
  scenario.setup(host);

  const double dt = engine_config_.tick_s;
  const auto total_ticks = static_cast<std::int64_t>(
      engine_config_.duration_s / dt + 0.5);
  const auto ticks_per_epoch = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(engine_config_.decision_period_s / dt +
                                   0.5));

  // Per-epoch deltas for the observation/reward. "Domains" = CPU clusters
  // plus the optional memory domain; telemetry exposes one entry per
  // domain and the QoS tracker returns zeros for domains that never
  // complete jobs.
  const std::size_t n_clusters = soc.domain_count();
  double epoch_start_energy = 0.0;
  double epoch_start_quality = 0.0;
  std::size_t epoch_start_violations = 0;
  std::vector<double> cl_start_energy(n_clusters, 0.0);
  std::vector<double> cl_start_quality(n_clusters, 0.0);
  std::vector<std::size_t> cl_start_completed(n_clusters, 0);
  std::vector<std::size_t> cl_start_violations(n_clusters, 0);

  // The observation buffer persists across epochs; fill_observation rewrites
  // every field in place (telemetry_into reuses the cluster vector), so the
  // steady-state epoch path allocates nothing. `cl_true_energy` keeps the
  // unperturbed per-cluster energies so mark_epoch_start does not need a
  // second telemetry pass (fault injection may skew the observation copy).
  governors::PolicyObservation obs;
  std::vector<double> cl_true_energy(n_clusters, 0.0);
  auto fill_observation = [&](double epoch_s) {
    soc.telemetry_into(obs.soc);
    obs.epoch_duration_s = epoch_s;
    obs.epoch_energy_j = soc.total_energy_j() - epoch_start_energy;
    obs.epoch_quality = qos.total_quality() - epoch_start_quality;
    obs.epoch_violations = qos.violations() - epoch_start_violations;
    obs.epoch_releases = host.take_epoch_releases();
    obs.cluster_feedback.resize(n_clusters);
    for (std::size_t c = 0; c < n_clusters; ++c) {
      auto& fb = obs.cluster_feedback[c];
      cl_true_energy[c] = obs.soc.clusters[c].energy_j;
      fb.epoch_energy_j = obs.soc.clusters[c].energy_j - cl_start_energy[c];
      fb.epoch_deadline_quality =
          qos.cluster_deadline_quality(c) - cl_start_quality[c];
      fb.epoch_deadline_completed =
          qos.cluster_deadline_completed(c) - cl_start_completed[c];
      fb.epoch_violations = qos.cluster_violations(c) - cl_start_violations[c];
    }
  };
  // No SoC tick happens between fill_observation and mark_epoch_start (only
  // the governor decision and OPP requests), so the captured energies are
  // still current here.
  auto mark_epoch_start = [&] {
    epoch_start_energy = soc.total_energy_j();
    epoch_start_quality = qos.total_quality();
    epoch_start_violations = qos.violations();
    for (std::size_t c = 0; c < n_clusters; ++c) {
      cl_start_energy[c] = cl_true_energy[c];
      cl_start_quality[c] = qos.cluster_deadline_quality(c);
      cl_start_completed[c] = qos.cluster_deadline_completed(c);
      cl_start_violations[c] = qos.cluster_violations(c);
    }
  };

  // Trace emission: a local event buffer reused per epoch (only touched
  // when a sink is installed — the disabled path costs one pointer check
  // per epoch).
  obs::TraceEvent trace_event;
  auto fill_cluster_samples = [&](obs::TraceEvent& event) {
    event.clusters.clear();
    for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
      const auto& ct = obs.soc.clusters[c];
      obs::ClusterSample sample;
      sample.opp_index = static_cast<std::uint32_t>(ct.opp_index);
      sample.freq_hz = ct.freq_hz;
      sample.util_avg = ct.util_avg;
      sample.energy_j = c < obs.cluster_feedback.size()
                            ? obs.cluster_feedback[c].epoch_energy_j
                            : 0.0;
      sample.temp_c = ct.temp_c;
      event.clusters.push_back(sample);
    }
  };

  governors::OppRequest request(soc.domain_count());
  fill_observation(0.0);
  if (fault_) fault_->perturb_observation(obs);
  if (trace_) {
    trace_event = obs::TraceEvent{};
    trace_event.kind = obs::EventKind::RunBegin;
    trace_event.time_s = obs.soc.time_s;
    trace_event.detail = scenario.name() + "/" + governor.name();
    fill_cluster_samples(trace_event);
    trace_->record(trace_event);
  }
  governor.reset(obs);
  governor.decide(obs, request);
  for (std::size_t c = 0; c < request.size(); ++c) {
    soc.set_cluster_opp(c, request[c]);
  }
  mark_epoch_start();
  host.take_epoch_releases();

  // Accumulators for the result.
  std::vector<double> freq_time_product(soc.domain_count(), 0.0);
  std::vector<double> peak_temp(soc.domain_count(), 0.0);
  std::size_t epochs = 0;

  // Profiling is charged at epoch granularity: with a profiler attached,
  // clock reads happen only at epoch boundaries; elapsed nanoseconds are
  // accumulated locally and folded into the TimerStats once per run.
  using ProfClock = std::chrono::steady_clock;
  std::int64_t prof_tick_ns = 0;
  std::int64_t prof_decision_ns = 0;
  ProfClock::time_point prof_segment_start;
  if (profiler_) prof_segment_start = ProfClock::now();

  std::vector<soc::CompletedJob> completed;
  EpochRecord record;  // reused per epoch; vectors keep their capacity
  for (std::int64_t tick = 0; tick < total_ticks; ++tick) {
    scenario.tick(host, soc.now_s(), dt);
    completed.clear();
    soc.step(dt, completed);
    for (const auto& job : completed) qos.on_complete(job);

    for (std::size_t c = 0; c < soc.domain_count(); ++c) {
      freq_time_product[c] += soc.domain_freq_hz(c) * dt;
    }

    if ((tick + 1) % ticks_per_epoch == 0) {
      ProfClock::time_point prof_decision_start;
      if (profiler_) {
        prof_decision_start = ProfClock::now();
        prof_tick_ns +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                prof_decision_start - prof_segment_start)
                .count();
      }
      const double epoch_s = ticks_per_epoch * dt;
      // Thermal emergencies land before the observation is taken so the
      // governor sees (and the throttle reacts to) the spiked state.
      if (fault_) fault_->inject_epoch_faults(soc, soc.now_s());
      fill_observation(epoch_s);
      if (fault_) fault_->perturb_observation(obs);
      for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
        peak_temp[c] = std::max(peak_temp[c], obs.soc.clusters[c].temp_c);
      }
      if (trace_) {
        trace_event = obs::TraceEvent{};
        trace_event.kind = obs::EventKind::Epoch;
        trace_event.epoch = epochs;
        trace_event.time_s = obs.soc.time_s;
        trace_event.energy_j = obs.epoch_energy_j;
        trace_event.total_energy_j = obs.soc.total_energy_j;
        trace_event.quality = obs.epoch_quality;
        trace_event.violations = obs.epoch_violations;
        trace_event.releases = obs.epoch_releases;
        trace_event.power_w = obs.soc.total_power_w;
        fill_cluster_samples(trace_event);
        trace_->record(trace_event);
      }
      if (on_epoch) {
        record.time_s = obs.soc.time_s;
        record.epoch_energy_j = obs.epoch_energy_j;
        record.epoch_quality = obs.epoch_quality;
        record.epoch_violations = obs.epoch_violations;
        record.total_power_w = obs.soc.total_power_w;
        record.opp_index.clear();
        record.util_avg.clear();
        for (const auto& c : obs.soc.clusters) {
          record.opp_index.push_back(c.opp_index);
          record.util_avg.push_back(c.util_avg);
        }
        on_epoch(record);
      }
      governor.decide(obs, request);
      for (std::size_t c = 0; c < request.size(); ++c) {
        soc.set_cluster_opp(c, request[c]);
      }
      mark_epoch_start();
      ++epochs;
      if (profiler_) {
        prof_segment_start = ProfClock::now();
        prof_decision_ns +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                prof_segment_start - prof_decision_start)
                .count();
      }
    }
  }

  qos.finalize(soc.now_s());

  RunResult result;
  result.scenario = scenario.name();
  result.governor = governor.name();
  result.duration_s = soc.now_s();
  result.energy_j = soc.total_energy_j();
  result.quality = qos.total_quality();
  result.energy_per_qos =
      qos.total_quality() > 0.0
          ? result.energy_j / qos.total_quality()
          : std::numeric_limits<double>::infinity();
  result.avg_power_w = result.energy_j / result.duration_s;
  result.released = qos.released();
  result.released_deadline = qos.released_with_deadline();
  result.completed = qos.completed();
  result.violations = qos.violations();
  result.violation_rate = qos.violation_rate();
  result.mean_quality = qos.mean_quality();
  std::size_t transitions = 0;
  for (std::size_t c = 0; c < soc.domain_count(); ++c) {
    transitions += soc.domain_dvfs_transitions(c);
    result.mean_freq_hz.push_back(freq_time_product[c] / result.duration_s);
    result.throttled_s.push_back(c < soc.cluster_count()
                                     ? soc.throttled_s(c)
                                     : 0.0);
  }
  result.dvfs_transitions = transitions;
  result.peak_temp_c = peak_temp;
  for (std::size_t c = 0; c < soc.cluster_count(); ++c) {
    const auto& cluster = soc.cluster(c);
    if (cluster.idle_states().empty()) continue;
    auto residency = cluster.idle_residency_s();
    const double active = cluster.active_core_s();
    double total = active;
    for (double r : residency) total += r;
    std::vector<double> fractions;
    fractions.reserve(residency.size() + 1);
    for (double r : residency) {
      fractions.push_back(total > 0.0 ? r / total : 0.0);
    }
    fractions.push_back(total > 0.0 ? active / total : 0.0);
    result.idle_residency_fraction.push_back(std::move(fractions));
  }

  if (trace_) {
    trace_event = obs::TraceEvent{};
    trace_event.kind = obs::EventKind::RunEnd;
    trace_event.epoch = epochs;
    trace_event.time_s = result.duration_s;
    trace_event.energy_j = result.energy_j;
    trace_event.total_energy_j = result.energy_j;
    trace_event.quality = result.quality;
    trace_event.violations = result.violations;
    trace_event.releases = result.released;
    trace_event.power_w = result.avg_power_w;
    trace_event.value = result.violation_rate;
    trace_event.detail = scenario.name() + "/" + governor.name();
    trace_->record(trace_event);
    trace_->flush();
  }
  if (runs_counter_) {
    runs_counter_->inc();
    epochs_counter_->inc(epochs);
    ticks_counter_->inc(static_cast<std::uint64_t>(total_ticks));
  }
  if (tick_timer_) {
    tick_timer_->add(static_cast<std::uint64_t>(prof_tick_ns), epochs);
    decision_timer_->add(static_cast<std::uint64_t>(prof_decision_ns),
                         epochs);
  }
  return result;
}

}  // namespace pmrl::core
