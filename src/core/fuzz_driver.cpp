#include "core/fuzz_driver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "core/runfarm/progress.hpp"
#include "core/runfarm/runfarm.hpp"
#include "core/runfarm/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "fleet/fleet_engine.hpp"
#include "governors/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "rl/rl_governor.hpp"
#include "rl/watchdog.hpp"

namespace pmrl::core {

namespace {

/// Keeps fault sampling unrelated to the workload's job-sampling stream.
constexpr std::uint64_t kFaultSeedSalt = 0x9A7D3F1C55E2B604ULL;

fault::FaultConfig stress_to_faults(const workload::FuzzStress& stress,
                                    std::uint64_t seed) {
  fault::FaultConfig config;
  config.seed = seed ^ kFaultSeedSalt;
  config.telemetry.util_noise_sigma = stress.telemetry_noise_sigma;
  config.telemetry.dropout_rate = stress.telemetry_dropout_rate;
  config.telemetry.stuck_rate = stress.telemetry_stuck_rate;
  config.thermal.event_rate = stress.thermal_event_rate;
  config.thermal.min_delta_c =
      std::min(8.0, stress.thermal_max_delta_c);
  config.thermal.max_delta_c = stress.thermal_max_delta_c;
  return config;
}

void add_violation(std::vector<FuzzViolation>& violations,
                   const char* invariant, const std::string& detail) {
  violations.push_back({invariant, detail});
}

std::string num(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

// The canonical budgeted fleet the capsched knobs replay: small enough to
// stay cheap per spec, large enough that the group apportionment and the
// mask-then-argmax cap enforcement are exercised for real. The knobs are
// per-device watts; the driver scales them by the fleet size.
constexpr std::size_t kBudgetFleetDevices = 256;
constexpr std::size_t kBudgetFleetGroups = 4;
constexpr double kBudgetFleetDuration_s = 5.0;
// Settle bound: the governor descends one OPP per epoch, so OPP-table
// depth plus generous slack — matching the tests/budget battery.
constexpr long kBudgetMaxSettleEpochs = 30;

fleet::FleetConfig budget_fleet_config(const workload::FuzzSpec& spec) {
  fleet::FleetConfig config;
  config.devices = kBudgetFleetDevices;
  config.seed = spec.seed;
  config.archetypes = 8;
  config.duration_s = kBudgetFleetDuration_s;
  config.block_size = 64;
  config.jobs = 1;
  const double n = static_cast<double>(kBudgetFleetDevices);
  config.budget.global_cap_w = spec.stress.budget_cap_w * n;
  config.budget.policy = "demand";
  config.budget.groups = kBudgetFleetGroups;
  config.budget.seed = spec.seed;
  if (spec.stress.budget_step_cap_w > 0.0) {
    config.budget.schedule = {
        {spec.stress.budget_step_frac * kBudgetFleetDuration_s,
         spec.stress.budget_step_cap_w * n}};
  }
  return config;
}

}  // namespace

FuzzDriverConfig::FuzzDriverConfig()
    : soc_config(soc::default_mobile_soc_config()) {}

FuzzDriver::FuzzDriver(FuzzDriverConfig config)
    : config_(std::move(config)) {}

FuzzOutcome FuzzDriver::run_spec(const workload::FuzzSpec& spec) const {
  FuzzOutcome outcome;
  outcome.spec = spec;

  EngineConfig engine_config = config_.engine_config;
  engine_config.duration_s =
      std::max(spec.total_duration_s(), engine_config.decision_period_s);

  SimEngine engine(config_.soc_config, engine_config);
  obs::VectorTraceSink sink;
  engine.set_trace_sink(&sink);

  std::optional<fault::FaultInjector> injector;
  if (spec.stress.any()) {
    injector.emplace(stress_to_faults(spec.stress, spec.seed));
    engine.set_fault_injector(&*injector);
  }

  // Per-run governor: everything constructed locally so a batch task owns
  // all of its mutable state (RNG-stream isolation rule, DESIGN.md §7).
  std::optional<rl::RlGovernor> rl_policy;
  std::optional<rl::PolicyWatchdog> watchdog;
  governors::GovernorPtr baseline;
  governors::Governor* policy = nullptr;
  if (config_.governor == "rl") {
    rl_policy.emplace(rl::RlGovernorConfig{},
                      config_.soc_config.clusters.size());
    if (config_.use_watchdog) {
      watchdog.emplace(*rl_policy,
                       governors::make_governor("conservative"));
      policy = &*watchdog;
    } else {
      policy = &*rl_policy;
    }
  } else {
    baseline = governors::make_governor(config_.governor);
    policy = baseline.get();
  }

  workload::FuzzScenario scenario(spec);
  try {
    outcome.result = engine.run(scenario, *policy);
  } catch (const std::exception& e) {
    add_violation(outcome.violations, "unhandled-exception", e.what());
    return outcome;
  }
  if (watchdog) {
    outcome.watchdog_engagements = watchdog->engagements();
    outcome.watchdog_fallback_epochs = watchdog->fallback_epochs();
    outcome.watchdog_total_epochs = watchdog->total_epochs();
  }

  const RunResult& r = outcome.result;

  // finite-metrics: a NaN anywhere in the aggregate chain means an
  // accounting bug upstream, not a policy property.
  const bool finite =
      std::isfinite(r.energy_j) && std::isfinite(r.quality) &&
      std::isfinite(r.avg_power_w) && std::isfinite(r.violation_rate) &&
      r.energy_j >= 0.0 && r.quality >= 0.0 && r.violation_rate >= 0.0 &&
      r.violation_rate <= 1.0;
  if (!finite) {
    add_violation(outcome.violations, "finite-metrics",
                  "energy=" + num(r.energy_j) + " quality=" +
                      num(r.quality) + " viol_rate=" +
                      num(r.violation_rate));
  }
  for (std::size_t c = 0; c < r.mean_freq_hz.size(); ++c) {
    const double f = r.mean_freq_hz[c];
    if (!std::isfinite(f) || f < 0.0) {
      add_violation(outcome.violations, "finite-metrics",
                    "mean_freq[" + std::to_string(c) + "]=" + num(f));
      break;
    }
    if (c < config_.soc_config.clusters.size()) {
      const auto& opps = config_.soc_config.clusters[c].opps;
      if (f < opps.lowest().freq_hz * (1.0 - 1e-9) ||
          f > opps.highest().freq_hz * (1.0 + 1e-9)) {
        add_violation(outcome.violations, "finite-metrics",
                      "mean_freq[" + std::to_string(c) +
                          "] outside OPP range: " + num(f));
        break;
      }
    }
  }

  // qos-accounting
  if (r.violations > r.released_deadline || r.completed > r.released) {
    add_violation(outcome.violations, "qos-accounting",
                  "violations=" + std::to_string(r.violations) +
                      "/released_deadline=" +
                      std::to_string(r.released_deadline) + " completed=" +
                      std::to_string(r.completed) + "/released=" +
                      std::to_string(r.released));
  }

  // energy-conservation over the structured trace: cumulative energy must
  // be monotone, epoch deltas non-negative, and the final total must match
  // the run's aggregate.
  double prev_total = 0.0;
  for (const auto& event : sink.events()) {
    if (event.kind != obs::EventKind::Epoch &&
        event.kind != obs::EventKind::RunEnd) {
      continue;
    }
    if (event.energy_j < -1e-9 || event.total_energy_j < prev_total - 1e-9) {
      add_violation(outcome.violations, "energy-conservation",
                    "epoch " + std::to_string(event.epoch) + ": delta=" +
                        num(event.energy_j) + " total=" +
                        num(event.total_energy_j) + " prev=" +
                        num(prev_total));
      break;
    }
    prev_total = event.total_energy_j;
    if (event.kind == obs::EventKind::RunEnd) {
      const double tolerance = 1e-6 * std::max(1.0, r.energy_j);
      if (std::abs(event.total_energy_j - r.energy_j) > tolerance) {
        add_violation(outcome.violations, "energy-conservation",
                      "run-end total " + num(event.total_energy_j) +
                          " != aggregate " + num(r.energy_j));
      }
    }
  }

  // watchdog-hysteresis: every engagement except possibly the last (which
  // the run end may truncate) must hold the fallback >= hold_epochs.
  if (watchdog) {
    const auto& wd = watchdog->config();
    if (outcome.watchdog_fallback_epochs > outcome.watchdog_total_epochs) {
      add_violation(outcome.violations, "watchdog-hysteresis",
                    "fallback epochs exceed total epochs");
    } else if (outcome.watchdog_engagements > 1 &&
               outcome.watchdog_fallback_epochs <
                   (outcome.watchdog_engagements - 1) * wd.hold_epochs) {
      add_violation(
          outcome.violations, "watchdog-hysteresis",
          std::to_string(outcome.watchdog_engagements) +
              " engagements but only " +
              std::to_string(outcome.watchdog_fallback_epochs) +
              " fallback epochs (hold=" + std::to_string(wd.hold_epochs) +
              ")");
    }
  }

  // Tunable bounds (planting hooks + blind-spot hunts).
  if (r.violation_rate > config_.invariants.max_violation_rate) {
    add_violation(outcome.violations, "qos-floor",
                  "violation_rate " + num(r.violation_rate) + " > " +
                      num(config_.invariants.max_violation_rate));
  }
  if (r.energy_j > config_.invariants.max_energy_j) {
    add_violation(outcome.violations, "energy-budget",
                  "energy " + num(r.energy_j) + " J > " +
                      num(config_.invariants.max_energy_j) + " J");
  }
  for (std::size_t c = 0; c < r.peak_temp_c.size(); ++c) {
    if (r.peak_temp_c[c] > config_.invariants.max_peak_temp_c) {
      add_violation(outcome.violations, "thermal-bound",
                    "peak_temp[" + std::to_string(c) + "]=" +
                        num(r.peak_temp_c[c]) + " C > " +
                        num(config_.invariants.max_peak_temp_c) + " C");
      break;
    }
  }

  // budget-audit / budget-settle: a capsched spec additionally replays its
  // cap step-change schedule through the canonical budgeted fleet. The
  // tree's own audit must stay clean and the fleet must get back under the
  // (possibly stepped) cap within the bounded epoch count.
  if (spec.stress.budget_cap_w > 0.0) {
    try {
      const fleet::FleetResult fr =
          fleet::FleetEngine(budget_fleet_config(spec)).run();
      outcome.budget_settle_epochs = fr.budget.settle_epochs;
      if (!fr.budget.audit_error.empty()) {
        add_violation(outcome.violations, "budget-audit",
                      fr.budget.audit_error);
      }
      if (fr.budget.settle_epochs < 0 ||
          fr.budget.settle_epochs > kBudgetMaxSettleEpochs) {
        add_violation(
            outcome.violations, "budget-settle",
            "settle_epochs=" + std::to_string(fr.budget.settle_epochs) +
                " (bound " + std::to_string(kBudgetMaxSettleEpochs) +
                ") cap=" + num(fr.budget.effective_cap_w) + " W after " +
                std::to_string(fr.budget.cap_steps) + " step(s)");
      }
    } catch (const std::exception& e) {
      add_violation(outcome.violations, "unhandled-exception",
                    std::string("budget fleet: ") + e.what());
    }
  }
  return outcome;
}

std::vector<FuzzOutcome> FuzzDriver::run_batch(std::uint64_t base_seed,
                                               std::size_t runs,
                                               bool show_progress) const {
  std::vector<std::function<FuzzOutcome()>> tasks;
  tasks.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = base_seed + i;
    tasks.push_back([this, seed] {
      return run_spec(workload::generate_fuzz_spec(seed));
    });
  }
  runfarm::ProgressReporter progress("fuzz", runs, show_progress);
  std::optional<runfarm::ThreadPool> pool;
  if (config_.jobs != 1) pool.emplace(config_.jobs);
  auto outcomes = runfarm::run_ordered<FuzzOutcome>(
      pool ? &*pool : nullptr, tasks, &progress);
  if (metrics_) {
    std::size_t failures = 0;
    for (const auto& outcome : outcomes) {
      if (!outcome.ok()) ++failures;
    }
    metrics_->counter("fuzz.runs").inc(outcomes.size());
    metrics_->counter("fuzz.failures").inc(failures);
  }
  return outcomes;
}

bool FuzzDriver::candidate_preserves(const workload::FuzzSpec& candidate,
                                     const std::string& invariant,
                                     std::size_t& attempts) const {
  ++attempts;
  const FuzzOutcome outcome = run_spec(candidate);
  for (const auto& violation : outcome.violations) {
    if (violation.invariant == invariant) return true;
  }
  return false;
}

FuzzDriver::ShrinkResult FuzzDriver::shrink(
    const FuzzOutcome& failing) const {
  ShrinkResult shrunk;
  shrunk.outcome = failing;
  if (failing.ok()) return shrunk;
  const std::string invariant = failing.violations.front().invariant;

  workload::FuzzSpec current = failing.spec;
  bool reduced = true;
  while (reduced && shrunk.attempts < config_.max_shrink_runs) {
    reduced = false;

    // Pass 1: drop whole phases (largest reduction first).
    for (std::size_t p = 0;
         current.phases.size() > 1 && p < current.phases.size();) {
      workload::FuzzSpec candidate = current;
      candidate.phases.erase(candidate.phases.begin() +
                             static_cast<std::ptrdiff_t>(p));
      if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
        current = std::move(candidate);
        ++shrunk.accepted;
        reduced = true;
      } else {
        ++p;
      }
      if (shrunk.attempts >= config_.max_shrink_runs) break;
    }

    // Pass 2: drop individual sources.
    for (std::size_t p = 0; p < current.phases.size(); ++p) {
      for (std::size_t s = 0; s < current.phases[p].sources.size();) {
        workload::FuzzSpec candidate = current;
        auto& sources = candidate.phases[p].sources;
        sources.erase(sources.begin() + static_cast<std::ptrdiff_t>(s));
        if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
          current = std::move(candidate);
          ++shrunk.accepted;
          reduced = true;
        } else {
          ++s;
        }
        if (shrunk.attempts >= config_.max_shrink_runs) break;
      }
      if (shrunk.attempts >= config_.max_shrink_runs) break;
    }

    // Pass 3: halve phase durations (down to the floor).
    for (std::size_t p = 0; p < current.phases.size(); ++p) {
      if (shrunk.attempts >= config_.max_shrink_runs) break;
      const double halved = current.phases[p].duration_s * 0.5;
      if (halved < config_.min_phase_duration_s) continue;
      workload::FuzzSpec candidate = current;
      candidate.phases[p].duration_s = halved;
      if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
        current = std::move(candidate);
        ++shrunk.accepted;
        reduced = true;
      }
    }

    // Pass 4: zero stress knobs one at a time.
    const auto try_stress = [&](auto mutate) {
      if (shrunk.attempts >= config_.max_shrink_runs) return;
      workload::FuzzSpec candidate = current;
      mutate(candidate.stress);
      if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
        current = std::move(candidate);
        ++shrunk.accepted;
        reduced = true;
      }
    };
    if (current.stress.telemetry_noise_sigma > 0.0) {
      try_stress([](workload::FuzzStress& stress) {
        stress.telemetry_noise_sigma = 0.0;
      });
    }
    if (current.stress.telemetry_dropout_rate > 0.0) {
      try_stress([](workload::FuzzStress& stress) {
        stress.telemetry_dropout_rate = 0.0;
      });
    }
    if (current.stress.telemetry_stuck_rate > 0.0) {
      try_stress([](workload::FuzzStress& stress) {
        stress.telemetry_stuck_rate = 0.0;
      });
    }
    if (current.stress.thermal_event_rate > 0.0) {
      try_stress([](workload::FuzzStress& stress) {
        stress.thermal_event_rate = 0.0;
      });
    }
    if (current.stress.budget_cap_w > 0.0) {
      // Try dropping the step first (keeps the budget arm but removes the
      // transient), then the whole arm.
      if (current.stress.budget_step_cap_w > 0.0) {
        try_stress([](workload::FuzzStress& stress) {
          stress.budget_step_cap_w = 0.0;
        });
      }
      try_stress([](workload::FuzzStress& stress) {
        stress.budget_cap_w = 0.0;
        stress.budget_step_cap_w = 0.0;
      });
    }

    // Pass 5: strip work-distribution frills (spikes, variance).
    for (std::size_t p = 0; p < current.phases.size(); ++p) {
      for (std::size_t s = 0; s < current.phases[p].sources.size(); ++s) {
        if (shrunk.attempts >= config_.max_shrink_runs) break;
        // Index into `current` directly: a cached reference would dangle
        // once an accepted candidate is move-assigned over `current`.
        if (current.phases[p].sources[s].spike_probability > 0.0) {
          workload::FuzzSpec candidate = current;
          candidate.phases[p].sources[s].spike_probability = 0.0;
          if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
            current = std::move(candidate);
            ++shrunk.accepted;
            reduced = true;
          }
        }
        if (shrunk.attempts >= config_.max_shrink_runs) break;
        if (current.phases[p].sources[s].work_cv > 0.0) {
          workload::FuzzSpec candidate = current;
          candidate.phases[p].sources[s].work_cv = 0.0;
          if (candidate_preserves(candidate, invariant, shrunk.attempts)) {
            current = std::move(candidate);
            ++shrunk.accepted;
            reduced = true;
          }
        }
      }
    }
  }

  current.name = failing.spec.name + "-min";
  shrunk.outcome = run_spec(current);
  ++shrunk.attempts;
  if (metrics_) {
    metrics_->counter("fuzz.shrink_attempts").inc(shrunk.attempts);
  }
  return shrunk;
}

}  // namespace pmrl::core
