#pragma once
// The run farm: a deterministic parallel executor for independent Engine
// runs. One farm run = one governor evaluated on one scenario — the unit
// every experiment table (E1-E7) and training sweep is made of.
//
// Determinism rule (RNG-stream isolation): a farm task owns ALL of its
// mutable state. Each task constructs its own SimEngine, its own Scenario
// (whose RNG stream is derived purely from (kind, seed)), and its own
// Governor instance from the spec's factory. Nothing stochastic is shared
// between tasks, so results are bit-identical to executing the same specs
// serially, regardless of thread count or scheduling order. Work whose
// state is inherently sequential (an online-learning governor carried
// across runs) must stay inside a single task.

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/runfarm/progress.hpp"
#include "core/runfarm/thread_pool.hpp"
#include "governors/registry.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
}  // namespace pmrl::obs

namespace pmrl::core::runfarm {

/// Ordered parallel map: executes every task (in any order, on the pool),
/// collects results in submission order, and — after ALL tasks have
/// finished — rethrows the lowest-index exception if any task threw.
/// `pool == nullptr` executes inline with identical semantics (the serial
/// path is the degenerate farm).
template <typename T>
std::vector<T> run_ordered(ThreadPool* pool,
                           const std::vector<std::function<T()>>& tasks,
                           ProgressReporter* progress = nullptr) {
  std::vector<T> results(tasks.size());
  std::vector<std::exception_ptr> errors(tasks.size());
  auto execute = [&](std::size_t i) {
    try {
      results[i] = tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (progress) progress->on_done();
  };
  if (pool) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pool->submit([&execute, i] { execute(i); });
    }
    pool->wait();
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) execute(i);
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

/// One unit of farm work: a governor evaluated on one scenario. The factory
/// runs on the worker thread and must hand back a fresh instance per call
/// (sharing one governor across specs would leak learning state between
/// runs and break bit-identity with the serial order).
struct RunSpec {
  workload::ScenarioKind kind = workload::ScenarioKind::VideoPlayback;
  std::uint64_t seed = 0;
  governors::GovernorFactory make_governor;
  /// Optional per-spec trace sink (non-owning). Exactly one task touches a
  /// spec's sink, so sinks need not be thread-safe — and because trace
  /// events carry only simulation-derived data, the sink's contents are
  /// byte-identical whether the spec ran serially or on any farm thread.
  obs::TraceSink* trace_sink = nullptr;
};

/// Timing of the last executed batch: wall-clock vs the serial-equivalent
/// sum of per-run times, i.e. the farm speedup actually realized.
struct BatchStats {
  std::size_t runs = 0;
  double wall_s = 0.0;
  double run_s_total = 0.0;
  double speedup() const { return wall_s > 0.0 ? run_s_total / wall_s : 1.0; }
};

/// Fans independent engine runs out across a work-stealing pool.
class RunFarm {
 public:
  /// jobs == 0 resolves via default_jobs() (PMRL_JOBS env, else hardware
  /// concurrency); jobs == 1 executes inline with no threads.
  RunFarm(soc::SocConfig soc_config, EngineConfig engine_config,
          std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }
  const EngineConfig& engine_config() const { return engine_config_; }
  const soc::SocConfig& soc_config() const { return soc_config_; }

  /// Executes all specs; results come back in spec order. `label` names
  /// the batch in progress output; progress printing is off by default.
  std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                                 const std::string& label = "farm",
                                 bool show_progress = false);

  /// Ordered parallel map over arbitrary closures on this farm's pool —
  /// for coarser units (a full training, a config's train+eval) that are
  /// independent of each other but sequential inside.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>>& tasks,
                     ProgressReporter* progress = nullptr) {
    return run_ordered<T>(pool_ ? &*pool_ : nullptr, tasks, progress);
  }

  /// Builds a fresh SimEngine from this farm's SoC/engine configuration —
  /// the per-task engine a training actor owns under the RNG-stream
  /// isolation rule (construct it inside the task, on the worker thread).
  SimEngine make_engine() const {
    return SimEngine(soc_config_, engine_config_);
  }

  /// Timing of the most recent run_all() batch.
  const BatchStats& last_stats() const { return stats_; }

  /// Attaches a metrics registry (nullptr detaches): every task's engine
  /// reports into it (atomic instruments aggregate across the worker
  /// threads), and the farm itself tracks batch/run counters, a jobs
  /// gauge, and a queue-depth histogram sampled at task completion.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  soc::SocConfig soc_config_;
  EngineConfig engine_config_;
  std::size_t jobs_;
  std::optional<ThreadPool> pool_;  // engaged when jobs_ > 1
  BatchStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pmrl::core::runfarm
