#include "core/runfarm/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace pmrl::core::runfarm {

std::size_t default_jobs() {
  if (const char* env = std::getenv("PMRL_JOBS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    } catch (const std::exception&) {
      // fall through to hardware_concurrency
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_jobs(std::size_t requested) {
  return requested == 0 ? default_jobs() : requested;
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = default_jobs();
  queues_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
    ++queued_;
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_front(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  auto pop_from = [&](WorkerQueue& queue, bool steal) {
    const std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) return false;
    if (steal) {
      // Thieves take the oldest task from the back ...
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      // ... the owner takes the newest from the front (stays cache-warm,
      // contention lands on opposite deque ends).
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    return true;
  };
  bool popped = pop_from(*queues_[self], /*steal=*/false);
  // Scan victims from the next worker around the ring so theft pressure
  // spreads evenly.
  for (std::size_t k = 1; !popped && k < queues_.size(); ++k) {
    popped = pop_from(*queues_[(self + k) % queues_.size()], /*steal=*/true);
  }
  if (popped) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    --queued_;
  }
  return popped;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      task = nullptr;  // release captures before signalling completion
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        --pending_;
      }
      idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stopping_) return;
    // queued_ can already be 0 here if another worker won the race for the
    // task that woke us; the predicate just sends us back to stealing
    // whenever unstarted work might exist.
    work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_) return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace pmrl::core::runfarm
