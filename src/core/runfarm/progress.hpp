#pragma once
// Thread-safe progress/ETA reporter for farm batches. Prints to stderr so
// bench tables on stdout stay machine-readable. The ETA extrapolates from
// the mean completion rate so far — accurate for the farm's homogeneous
// run batches, merely indicative for mixed batches.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace pmrl::core::runfarm {

/// Remaining-time estimate extrapolated from the mean completion rate:
/// elapsed * (total - done) / done. Returns 0 when done == 0 (no rate
/// yet), done >= total (nothing left), or elapsed <= 0.
double eta_seconds(std::size_t done, std::size_t total, double elapsed_s);

/// The line on_done() prints, sans trailing newline: in flight it reads
/// "[label] k/N, elapsed E.Es, eta T.Ts"; once k == N it reads
/// "[label] N/N done in E.Es".
std::string progress_line(const std::string& label, std::size_t done,
                          std::size_t total, double elapsed_s);

class ProgressReporter {
 public:
  /// `enabled == false` turns every call into a no-op, so call sites can
  /// pass the reporter unconditionally.
  ProgressReporter(std::string label, std::size_t total, bool enabled = true);

  /// Marks one task complete; prints "label: k/N, elapsed, eta" lines
  /// (throttled to at most one line per ~200 ms plus the final line).
  void on_done();

  std::size_t completed() const;
  /// Seconds since construction.
  double elapsed_s() const;

 private:
  using Clock = std::chrono::steady_clock;
  std::string label_;
  std::size_t total_;
  bool enabled_;
  Clock::time_point start_;
  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  Clock::time_point last_print_{};
};

}  // namespace pmrl::core::runfarm
