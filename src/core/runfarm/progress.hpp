#pragma once
// Thread-safe progress/ETA reporter for farm batches. Prints to stderr so
// bench tables on stdout stay machine-readable. The ETA extrapolates from
// the mean completion rate so far — accurate for the farm's homogeneous
// run batches, merely indicative for mixed batches.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace pmrl::core::runfarm {

/// Remaining-time estimate extrapolated from the mean completion rate:
/// elapsed * (total - done) / done. Returns 0 when done == 0 (no rate
/// yet), done >= total (nothing left), or elapsed is non-positive or
/// non-finite (a bad clock reading must not propagate NaN into the UI).
double eta_seconds(std::size_t done, std::size_t total, double elapsed_s);

/// Human-scale duration: "8.0s" under a minute, "4m05s" under an hour,
/// "3h07m" under a day, "2d14h" under 100 days, and ">99d" beyond that or
/// for non-finite input (huge ETAs early in a slow batch used to render as
/// a meaningless float like "8640000.0s").
std::string format_duration(double seconds);

/// The line on_done() prints, sans trailing newline: in flight it reads
/// "[label] k/N, elapsed E.Es, eta T.Ts"; once k == N it reads
/// "[label] N/N done in E.Es". Before the first completion there is no
/// rate to extrapolate from, so the eta renders as "--".
std::string progress_line(const std::string& label, std::size_t done,
                          std::size_t total, double elapsed_s);

class ProgressReporter {
 public:
  /// `enabled == false` turns every call into a no-op, so call sites can
  /// pass the reporter unconditionally.
  ProgressReporter(std::string label, std::size_t total, bool enabled = true);

  /// Marks one task complete; prints "label: k/N, elapsed, eta" lines
  /// (throttled to at most one line per ~200 ms plus the final line).
  void on_done();

  std::size_t completed() const;
  /// Seconds since construction.
  double elapsed_s() const;

 private:
  using Clock = std::chrono::steady_clock;
  std::string label_;
  std::size_t total_;
  bool enabled_;
  Clock::time_point start_;
  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  Clock::time_point last_print_{};
};

}  // namespace pmrl::core::runfarm
