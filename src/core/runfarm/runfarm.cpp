#include "core/runfarm/runfarm.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pmrl::core::runfarm {

RunFarm::RunFarm(soc::SocConfig soc_config, EngineConfig engine_config,
                 std::size_t jobs)
    : soc_config_(std::move(soc_config)),
      engine_config_(engine_config),
      jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ > 1) pool_.emplace(jobs_);
}

std::vector<RunResult> RunFarm::run_all(const std::vector<RunSpec>& specs,
                                        const std::string& label,
                                        bool show_progress) {
  using Clock = std::chrono::steady_clock;
  // Per-run times accumulate as atomic nanoseconds: doubles have no atomic
  // fetch_add everywhere, and the sum must not race.
  std::atomic<std::int64_t> run_ns_total{0};
  // Farm-level instruments resolved once per batch; queue depth is sampled
  // as each task finishes (the mutex-guarded read is per-run, not per-tick).
  obs::Histogram* queue_depth =
      metrics_ ? &metrics_->histogram(
                     "farm.queue_depth",
                     {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
               : nullptr;
  std::vector<std::function<RunResult()>> tasks;
  tasks.reserve(specs.size());
  for (const auto& spec : specs) {
    if (!spec.make_governor) {
      throw std::invalid_argument("RunSpec needs a governor factory");
    }
    tasks.push_back([this, &spec, &run_ns_total, queue_depth] {
      const auto start = Clock::now();
      // The task owns engine + scenario + governor: nothing mutable is
      // shared with any other task (see the determinism rule in the
      // header).
      SimEngine engine(soc_config_, engine_config_);
      if (spec.trace_sink) engine.set_trace_sink(spec.trace_sink);
      if (metrics_) engine.set_metrics(metrics_);
      auto scenario = workload::make_scenario(spec.kind, spec.seed);
      auto governor = spec.make_governor();
      RunResult result = engine.run(*scenario, *governor);
      run_ns_total.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count(),
          std::memory_order_relaxed);
      if (queue_depth) {
        queue_depth->observe(
            static_cast<double>(pool_ ? pool_->queued() : 0));
      }
      return result;
    });
  }
  if (metrics_) {
    metrics_->counter("farm.batches").inc();
    metrics_->counter("farm.runs").inc(specs.size());
    metrics_->gauge("farm.jobs").set(static_cast<double>(jobs_));
  }

  ProgressReporter progress(label, specs.size(), show_progress);
  const auto batch_start = Clock::now();
  auto results = run_ordered<RunResult>(pool_ ? &*pool_ : nullptr, tasks,
                                        &progress);
  stats_.runs = specs.size();
  stats_.wall_s =
      std::chrono::duration<double>(Clock::now() - batch_start).count();
  stats_.run_s_total =
      static_cast<double>(run_ns_total.load(std::memory_order_relaxed)) *
      1e-9;
  return results;
}

}  // namespace pmrl::core::runfarm
