#pragma once
// Work-stealing thread pool for the run farm. Tasks are distributed
// round-robin across per-worker deques; a worker drains its own deque from
// the front and, when empty, steals from the back of a sibling's deque
// (classic owner-LIFO / thief-FIFO split, so stolen work is the oldest and
// contention stays at opposite deque ends).
//
// The pool carries no result or exception machinery of its own — callers
// (see runfarm.hpp) wrap tasks so they never throw. Determinism of the farm
// does not depend on scheduling: every task owns all of its mutable state,
// so any interleaving produces the same per-task results.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pmrl::core::runfarm {

/// Number of worker threads to use by default: the PMRL_JOBS environment
/// variable when set to a positive integer, else hardware_concurrency
/// (never less than 1).
std::size_t default_jobs();

/// Canonical --jobs resolution shared by the farm, the fleet engine, and
/// the CLI: 0 means "use default_jobs()", anything else passes through.
/// Always >= 1.
std::size_t resolve_jobs(std::size_t requested);

class ThreadPool {
 public:
  /// thread_count == 0 means default_jobs().
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (wrap them; see run_ordered).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait();

  /// Tasks submitted but not yet started (an instantaneous sample; the
  /// value may be stale by the time the caller reads it).
  std::size_t queued() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return queued_;
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& task);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake + completion accounting.
  mutable std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // submitted but not yet finished
  std::size_t queued_ = 0;   // submitted but not yet started
  std::size_t next_queue_ = 0;
  bool stopping_ = false;
};

}  // namespace pmrl::core::runfarm
