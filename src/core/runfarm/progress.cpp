#include "core/runfarm/progress.hpp"

#include <cstdio>

namespace pmrl::core::runfarm {

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      start_(Clock::now()) {}

void ProgressReporter::on_done() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!enabled_) return;
  const auto now = Clock::now();
  const bool final = done_ == total_;
  if (!final && last_print_.time_since_epoch().count() != 0 &&
      now - last_print_ < std::chrono::milliseconds(200)) {
    return;
  }
  last_print_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  const double eta =
      done_ > 0 && !final
          ? elapsed * static_cast<double>(total_ - done_) /
                static_cast<double>(done_)
          : 0.0;
  if (final) {
    std::fprintf(stderr, "[%s] %zu/%zu done in %.1fs\n", label_.c_str(),
                 done_, total_, elapsed);
  } else {
    std::fprintf(stderr, "[%s] %zu/%zu, elapsed %.1fs, eta %.1fs\n",
                 label_.c_str(), done_, total_, elapsed, eta);
  }
}

std::size_t ProgressReporter::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

double ProgressReporter::elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace pmrl::core::runfarm
