#include "core/runfarm/progress.hpp"

#include <cstdio>

namespace pmrl::core::runfarm {

double eta_seconds(std::size_t done, std::size_t total, double elapsed_s) {
  if (done == 0 || done >= total || elapsed_s <= 0.0) return 0.0;
  return elapsed_s * static_cast<double>(total - done) /
         static_cast<double>(done);
}

std::string progress_line(const std::string& label, std::size_t done,
                          std::size_t total, double elapsed_s) {
  char buffer[256];
  if (done >= total) {
    std::snprintf(buffer, sizeof(buffer), "[%s] %zu/%zu done in %.1fs",
                  label.c_str(), done, total, elapsed_s);
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "[%s] %zu/%zu, elapsed %.1fs, eta %.1fs", label.c_str(),
                  done, total, elapsed_s,
                  eta_seconds(done, total, elapsed_s));
  }
  return buffer;
}

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      start_(Clock::now()) {}

void ProgressReporter::on_done() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!enabled_) return;
  const auto now = Clock::now();
  const bool final = done_ == total_;
  if (!final && last_print_.time_since_epoch().count() != 0 &&
      now - last_print_ < std::chrono::milliseconds(200)) {
    return;
  }
  last_print_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  std::fprintf(stderr, "%s\n",
               progress_line(label_, done_, total_, elapsed).c_str());
}

std::size_t ProgressReporter::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

double ProgressReporter::elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace pmrl::core::runfarm
