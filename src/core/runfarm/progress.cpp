#include "core/runfarm/progress.hpp"

#include <cmath>
#include <cstdio>

namespace pmrl::core::runfarm {

double eta_seconds(std::size_t done, std::size_t total, double elapsed_s) {
  if (done == 0 || done >= total || !std::isfinite(elapsed_s) ||
      elapsed_s <= 0.0) {
    return 0.0;
  }
  return elapsed_s * static_cast<double>(total - done) /
         static_cast<double>(done);
}

std::string format_duration(double seconds) {
  char buffer[32];
  if (!std::isfinite(seconds) || seconds >= 100.0 * 86400.0) return ">99d";
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    const unsigned whole = static_cast<unsigned>(seconds);
    std::snprintf(buffer, sizeof(buffer), "%um%02us", whole / 60,
                  whole % 60);
  } else if (seconds < 86400.0) {
    const unsigned minutes = static_cast<unsigned>(seconds / 60.0);
    std::snprintf(buffer, sizeof(buffer), "%uh%02um", minutes / 60,
                  minutes % 60);
  } else {
    const unsigned hours = static_cast<unsigned>(seconds / 3600.0);
    std::snprintf(buffer, sizeof(buffer), "%ud%02uh", hours / 24,
                  hours % 24);
  }
  return buffer;
}

std::string progress_line(const std::string& label, std::size_t done,
                          std::size_t total, double elapsed_s) {
  char buffer[256];
  if (done >= total) {
    std::snprintf(buffer, sizeof(buffer), "[%s] %zu/%zu done in %s",
                  label.c_str(), done, total,
                  format_duration(elapsed_s).c_str());
  } else if (done == 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "[%s] %zu/%zu, elapsed %s, eta --", label.c_str(), done,
                  total, format_duration(elapsed_s).c_str());
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "[%s] %zu/%zu, elapsed %s, eta %s", label.c_str(), done,
                  total, format_duration(elapsed_s).c_str(),
                  format_duration(eta_seconds(done, total, elapsed_s))
                      .c_str());
  }
  return buffer;
}

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      start_(Clock::now()) {}

void ProgressReporter::on_done() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!enabled_) return;
  const auto now = Clock::now();
  const bool final = done_ == total_;
  if (!final && last_print_.time_since_epoch().count() != 0 &&
      now - last_print_ < std::chrono::milliseconds(200)) {
    return;
  }
  last_print_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  std::fprintf(stderr, "%s\n",
               progress_line(label_, done_, total_, elapsed).c_str());
}

std::size_t ProgressReporter::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

double ProgressReporter::elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace pmrl::core::runfarm
