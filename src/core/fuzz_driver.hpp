#pragma once
// The fuzz driver: runs FuzzSpec scenarios through the engine under the
// RL policy + watchdog (or any registered governor), checks a battery of
// engine/watchdog/policy invariants after every run, fans seed batches out
// across a work-stealing pool with per-seed RNG-stream isolation (results
// are bit-identical at any job count), and delta-debugs any failing
// scenario down to a minimal reproducer fit for the checked-in regression
// corpus under tests/data/scenarios/.
//
// Invariants checked per run (names appear in FuzzViolation::invariant):
//   finite-metrics        every RunResult number is finite and in range
//   qos-accounting        violations <= released deadline jobs, etc.
//   energy-conservation   cumulative trace energy is monotone and matches
//                         the run total
//   watchdog-hysteresis   every non-final engagement held >= hold_epochs
//   qos-floor             violation_rate <= max_violation_rate (tunable)
//   energy-budget         energy_j <= max_energy_j (tunable)
//   thermal-bound         peak temp <= max_peak_temp_c (tunable)
//   budget-audit          the budget tree's internal conservation/floor
//                         audit stayed clean (capsched specs only)
//   budget-settle         the budgeted fleet got under the stepped cap
//                         within a bounded epoch count (capsched specs)
//   unhandled-exception   the run threw
//
// The tunable bounds default to always-true values; tests plant violations
// by tightening them, and CI fuzz sweeps can tighten qos-floor to hunt for
// policy blind spots.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "workload/fuzz.hpp"

namespace pmrl::obs {
class MetricsRegistry;
}  // namespace pmrl::obs

namespace pmrl::core {

/// Tunable invariant bounds. Defaults never fire on a healthy system.
struct FuzzInvariantConfig {
  double max_energy_j = std::numeric_limits<double>::infinity();
  double max_violation_rate = 1.0;
  double max_peak_temp_c = std::numeric_limits<double>::infinity();
};

/// One violated invariant.
struct FuzzViolation {
  std::string invariant;
  std::string detail;
};

/// Everything learned from one fuzz run.
struct FuzzOutcome {
  workload::FuzzSpec spec;
  RunResult result;
  std::size_t watchdog_engagements = 0;
  std::size_t watchdog_fallback_epochs = 0;
  std::size_t watchdog_total_epochs = 0;
  /// Settle epochs of the capsched budget check (-1 when the spec has no
  /// budget arm, or when the fleet never got back under the cap).
  long budget_settle_epochs = -1;
  std::vector<FuzzViolation> violations;

  bool ok() const { return violations.empty(); }
};

struct FuzzDriverConfig {
  soc::SocConfig soc_config;
  EngineConfig engine_config;  // duration_s is overridden per spec
  /// Registered governor evaluated on each scenario. "rl" (the default)
  /// runs a fresh online-learning RL policy wrapped in the PolicyWatchdog
  /// over a conservative fallback — the configuration the fuzzer is
  /// hunting blind spots in. Any other registered name runs bare.
  std::string governor = "rl";
  /// Wrap the RL policy in the watchdog (ignored for other governors).
  bool use_watchdog = true;
  FuzzInvariantConfig invariants;
  /// Worker threads for run_batch (0 = default_jobs(), 1 = serial).
  std::size_t jobs = 1;
  /// Shrinker budget: candidate re-runs before giving up.
  std::size_t max_shrink_runs = 400;
  /// Phase durations are never shrunk below this.
  double min_phase_duration_s = 0.25;

  FuzzDriverConfig();
};

class FuzzDriver {
 public:
  explicit FuzzDriver(FuzzDriverConfig config);

  const FuzzDriverConfig& config() const { return config_; }

  /// Runs one spec on a task-local engine/governor/injector and checks
  /// every invariant. Never throws for in-run failures — they surface as
  /// an "unhandled-exception" violation.
  FuzzOutcome run_spec(const workload::FuzzSpec& spec) const;

  /// Generates and runs specs for seeds [base_seed, base_seed + runs).
  /// Each seed is one isolated farm task (own engine, scenario, governor,
  /// injector, RNG streams), so the batch is bit-identical at any job
  /// count. Outcomes come back in seed order.
  std::vector<FuzzOutcome> run_batch(std::uint64_t base_seed,
                                     std::size_t runs,
                                     bool show_progress = false) const;

  struct ShrinkResult {
    FuzzOutcome outcome;      ///< minimized spec + its (failing) run
    std::size_t attempts = 0;  ///< candidate runs executed
    std::size_t accepted = 0;  ///< reductions that preserved the failure
  };

  /// Delta-debugging shrinker: greedily drops phases/sources, halves
  /// durations, zeroes stress knobs, and strips work-distribution frills
  /// while a violation of the SAME invariant as `failing`'s first
  /// violation persists. Deterministic for a given input.
  ShrinkResult shrink(const FuzzOutcome& failing) const;

  /// Attaches a metrics registry (nullptr detaches): fuzz.runs,
  /// fuzz.failures, and fuzz.shrink_attempts counters aggregate across
  /// batch worker threads.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  bool candidate_preserves(const workload::FuzzSpec& candidate,
                           const std::string& invariant,
                           std::size_t& attempts) const;

  FuzzDriverConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pmrl::core
