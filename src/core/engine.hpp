#pragma once
// The simulation engine: advances the SoC tick by tick, feeds the scenario's
// jobs in, scores QoS, and invokes the governor at every decision epoch with
// the observation + reward feedback. One `run` = one policy evaluated on one
// scenario for a fixed duration — the unit both the paper's comparison table
// and the RL training episodes are made of.

#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "governors/governor.hpp"
#include "soc/soc.hpp"
#include "workload/qos.hpp"
#include "workload/scenario.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Profiler;
class Counter;
class TimerStat;
}  // namespace pmrl::obs

namespace pmrl::core {

/// Engine timing parameters.
struct EngineConfig {
  /// Simulation tick (s). 1 ms matches the kernel-timer granularity mobile
  /// governors sample at.
  double tick_s = 0.001;
  /// Governor decision epoch (s). 20 ms sits in the range mobile governors
  /// sample at (10-100 ms) and lets step-based policies track frame-rate
  /// workload phases.
  double decision_period_s = 0.020;
  /// Simulated run length (s).
  double duration_s = 60.0;
  /// QoS credit granted per best-effort job (see workload::job_quality).
  double qos_best_effort_credit = 0.25;
};

/// Aggregate outcome of one run.
struct RunResult {
  std::string scenario;
  std::string governor;
  double duration_s = 0.0;
  double energy_j = 0.0;
  /// Total delivered QoS quality units.
  double quality = 0.0;
  /// The paper's headline metric: J per delivered quality unit.
  double energy_per_qos = 0.0;
  double avg_power_w = 0.0;
  std::size_t released = 0;
  std::size_t released_deadline = 0;
  std::size_t completed = 0;
  std::size_t violations = 0;
  double violation_rate = 0.0;
  double mean_quality = 0.0;
  std::size_t dvfs_transitions = 0;
  /// Time-weighted mean frequency per cluster (Hz).
  std::vector<double> mean_freq_hz;
  /// Peak die temperature seen per cluster (C).
  std::vector<double> peak_temp_c;
  /// Seconds each cluster spent thermally throttled.
  std::vector<double> throttled_s;
  /// Per-cluster idle-state residency as a fraction of total core-time
  /// (rows: clusters; columns: idle states in table order, then active
  /// time as the final column). Empty when cpuidle is disabled.
  std::vector<std::vector<double>> idle_residency_fraction;
};

/// One row of the optional per-epoch time series.
struct EpochRecord {
  double time_s = 0.0;
  double epoch_energy_j = 0.0;
  double epoch_quality = 0.0;
  std::size_t epoch_violations = 0;
  double total_power_w = 0.0;
  std::vector<std::size_t> opp_index;
  std::vector<double> util_avg;
};

using EpochCallback = std::function<void(const EpochRecord&)>;

/// Runs scenarios against governors on a freshly-built SoC per run.
class SimEngine {
 public:
  SimEngine(soc::SocConfig soc_config, EngineConfig engine_config);

  /// Runs `scenario` under `governor` for the configured duration on a
  /// fresh SoC. The governor's reset() is called first; its learned state
  /// (if any) persists across runs by design.
  RunResult run(workload::Scenario& scenario, governors::Governor& governor,
                const EpochCallback& on_epoch = nullptr);

  /// Installs a fault injector (nullptr disengages). While installed,
  /// every run perturbs the governor's observations and injects epoch
  /// faults into the SoC through it. The engine does not reset the
  /// injector between runs — callers that want a run replayed call
  /// FaultInjector::reset() themselves.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// Installs a trace sink (nullptr disengages). While installed, every
  /// run emits structured RunBegin/Epoch/RunEnd events. Events carry only
  /// simulation-derived values, so a run's trace is deterministic. The
  /// sink need not be thread-safe — the farm gives each task its own.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a metrics registry (nullptr detaches). Run/epoch/tick
  /// counters are bumped once per run (no per-tick cost); the registry's
  /// atomic instruments aggregate safely across farm threads.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches a profiler (nullptr detaches): the run loop charges tick vs
  /// decision time at epoch granularity (two clock reads per epoch).
  void set_profiler(obs::Profiler* profiler);
  obs::Profiler* profiler() const { return profiler_; }

  const EngineConfig& config() const { return engine_config_; }
  const soc::SocConfig& soc_config() const { return soc_config_; }

 private:
  soc::SocConfig soc_config_;
  EngineConfig engine_config_;
  fault::FaultInjector* fault_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  // Instruments resolved once at attach time (registry lookups lock).
  obs::Counter* runs_counter_ = nullptr;
  obs::Counter* epochs_counter_ = nullptr;
  obs::Counter* ticks_counter_ = nullptr;
  obs::TimerStat* tick_timer_ = nullptr;
  obs::TimerStat* decision_timer_ = nullptr;
};

}  // namespace pmrl::core
