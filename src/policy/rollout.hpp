#pragma once
// RolloutController: the canary evaluator of the policy lifecycle.
//
// While a candidate policy serves a slice of decisions next to the
// incumbent, clients report back the realized outcome of each decision
// (energy spent, QoS delivered). The controller accumulates per-arm sums,
// closes an evaluation window every `window_reports` reports (once both
// arms have delivered QoS to compare), and compares energy-per-QoS — the
// paper's headline metric, lower is better:
//
//   regressed window:  candidate epq > incumbent epq * (1 + threshold)
//
// Watchdog-style hysteresis turns windows into verdicts: `settle_windows`
// consecutive regressed windows trip Rollback, `settle_windows`
// consecutive healthy windows earn Promote. One noisy window resets the
// opposing streak instead of flapping the fleet.
//
// The controller is plain sequential logic (the server serializes calls);
// routing is a stateless hash so every shard computes the same arm for
// the same connection without coordination.

#include <cstddef>
#include <cstdint>

namespace pmrl::policy {

struct RolloutConfig {
  /// Percent of route keys served by the candidate (0..100).
  double canary_pct = 0.0;
  /// Fractional energy-per-QoS regression that marks a window regressed.
  double regression_threshold = 0.05;
  /// Reports (both arms combined) per evaluation window.
  std::size_t window_reports = 32;
  /// Consecutive regressed windows that trip rollback; consecutive
  /// healthy windows that promote.
  std::size_t settle_windows = 2;
  /// Salt folded into the route hash (vary to re-draw the cohort).
  std::uint64_t route_salt = 0;
};

/// Verdict returned when a report closes a window decisively.
enum class RolloutDecision : std::uint8_t {
  None = 0,
  Rollback,
  Promote,
};

/// Lifecycle state of the controller (mirrors the registry statuses).
enum class RolloutState : std::uint8_t {
  Idle = 0,     ///< no candidate staged
  Canary,       ///< candidate serving its slice, evaluation running
  Promoted,     ///< candidate won; it is the incumbent now
  RolledBack,   ///< candidate regressed; incumbent kept serving
};

const char* rollout_state_name(RolloutState state);

class RolloutController {
 public:
  explicit RolloutController(RolloutConfig config);

  const RolloutConfig& config() const { return config_; }

  /// Starts evaluating `candidate_version`; resets all sums and streaks.
  void start(std::uint64_t candidate_version);

  /// Records one decision outcome. `candidate_arm` says which policy made
  /// the decision. Returns a decisive verdict when this report closes a
  /// window that completes a settle streak; None otherwise (including any
  /// report outside the Canary state).
  RolloutDecision report(bool candidate_arm, double energy_j, double qos);

  RolloutState state() const { return state_; }
  std::uint64_t candidate_version() const { return candidate_version_; }

  /// Lifetime per-arm aggregates (across all windows since start()).
  double arm_energy_j(bool candidate_arm) const;
  double arm_qos(bool candidate_arm) const;
  std::uint64_t arm_reports(bool candidate_arm) const;
  /// Lifetime energy-per-QoS of an arm; 0 when the arm has no QoS yet.
  double arm_energy_per_qos(bool candidate_arm) const;

  std::size_t windows_evaluated() const { return windows_; }
  std::size_t regressed_streak() const { return regressed_streak_; }
  std::size_t healthy_streak() const { return healthy_streak_; }

  /// Deterministic arm routing: does `route_key` belong to the canary
  /// cohort at `canary_pct` percent? Stateless SplitMix64 hash — every
  /// caller agrees on the arm of a key without coordination.
  static bool routes_to_candidate(std::uint64_t route_key, double canary_pct,
                                  std::uint64_t salt);

 private:
  struct ArmSums {
    double energy_j = 0.0;
    double qos = 0.0;
    std::uint64_t reports = 0;
  };

  RolloutConfig config_;
  RolloutState state_ = RolloutState::Idle;
  std::uint64_t candidate_version_ = 0;
  ArmSums total_[2];   // [0]=incumbent, [1]=candidate
  ArmSums window_[2];
  std::size_t window_count_ = 0;
  std::size_t windows_ = 0;
  std::size_t regressed_streak_ = 0;
  std::size_t healthy_streak_ = 0;
};

}  // namespace pmrl::policy
