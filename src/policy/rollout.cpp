#include "policy/rollout.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmrl::policy {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* rollout_state_name(RolloutState state) {
  switch (state) {
    case RolloutState::Idle: return "idle";
    case RolloutState::Canary: return "canary";
    case RolloutState::Promoted: return "promoted";
    case RolloutState::RolledBack: return "rolled_back";
  }
  return "unknown";
}

RolloutController::RolloutController(RolloutConfig config)
    : config_(config) {
  if (config_.canary_pct < 0.0 || config_.canary_pct > 100.0) {
    throw std::invalid_argument("rollout: canary_pct must be in [0, 100]");
  }
  if (config_.window_reports == 0) {
    throw std::invalid_argument("rollout: window_reports must be >= 1");
  }
  if (config_.settle_windows == 0) {
    throw std::invalid_argument("rollout: settle_windows must be >= 1");
  }
  if (config_.regression_threshold < 0.0) {
    throw std::invalid_argument(
        "rollout: regression_threshold must be >= 0");
  }
}

void RolloutController::start(std::uint64_t candidate_version) {
  state_ = RolloutState::Canary;
  candidate_version_ = candidate_version;
  total_[0] = total_[1] = ArmSums{};
  window_[0] = window_[1] = ArmSums{};
  window_count_ = 0;
  windows_ = 0;
  regressed_streak_ = 0;
  healthy_streak_ = 0;
}

RolloutDecision RolloutController::report(bool candidate_arm,
                                          double energy_j, double qos) {
  if (state_ != RolloutState::Canary) return RolloutDecision::None;
  ArmSums& total = total_[candidate_arm ? 1 : 0];
  ArmSums& window = window_[candidate_arm ? 1 : 0];
  total.energy_j += energy_j;
  total.qos += qos;
  ++total.reports;
  window.energy_j += energy_j;
  window.qos += qos;
  ++window.reports;
  ++window_count_;

  // A window closes once it holds enough reports AND both arms delivered
  // comparable QoS; otherwise it keeps filling (a window with a silent
  // arm has nothing to compare).
  if (window_count_ < config_.window_reports) return RolloutDecision::None;
  if (window_[0].qos <= 0.0 || window_[1].qos <= 0.0) {
    return RolloutDecision::None;
  }
  const double incumbent_epq = window_[0].energy_j / window_[0].qos;
  const double candidate_epq = window_[1].energy_j / window_[1].qos;
  const bool regressed =
      candidate_epq >
      incumbent_epq * (1.0 + config_.regression_threshold);
  window_[0] = window_[1] = ArmSums{};
  window_count_ = 0;
  ++windows_;
  if (regressed) {
    ++regressed_streak_;
    healthy_streak_ = 0;
    if (regressed_streak_ >= config_.settle_windows) {
      state_ = RolloutState::RolledBack;
      return RolloutDecision::Rollback;
    }
  } else {
    ++healthy_streak_;
    regressed_streak_ = 0;
    if (healthy_streak_ >= config_.settle_windows) {
      state_ = RolloutState::Promoted;
      return RolloutDecision::Promote;
    }
  }
  return RolloutDecision::None;
}

double RolloutController::arm_energy_j(bool candidate_arm) const {
  return total_[candidate_arm ? 1 : 0].energy_j;
}

double RolloutController::arm_qos(bool candidate_arm) const {
  return total_[candidate_arm ? 1 : 0].qos;
}

std::uint64_t RolloutController::arm_reports(bool candidate_arm) const {
  return total_[candidate_arm ? 1 : 0].reports;
}

double RolloutController::arm_energy_per_qos(bool candidate_arm) const {
  const ArmSums& sums = total_[candidate_arm ? 1 : 0];
  return sums.qos > 0.0 ? sums.energy_j / sums.qos : 0.0;
}

bool RolloutController::routes_to_candidate(std::uint64_t route_key,
                                            double canary_pct,
                                            std::uint64_t salt) {
  const double pct = std::clamp(canary_pct, 0.0, 100.0);
  if (pct <= 0.0) return false;
  if (pct >= 100.0) return true;
  const std::uint64_t hash =
      splitmix64(route_key ^ (salt * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(hash % 10000) < pct * 100.0;
}

}  // namespace pmrl::policy
