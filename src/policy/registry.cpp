#include "policy/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "rl/policy_io.hpp"
#include "util/crc32.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"

namespace pmrl::policy {

namespace {

constexpr std::string_view kMetaMagic = "pmrl-policy-meta";
constexpr int kMetaVersion = 1;
constexpr std::string_view kCurrentName = "CURRENT";

std::string version_stem(std::uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%06llu",
                static_cast<unsigned long long>(version));
  return buf;
}

bool parse_u64(std::string_view text, std::uint64_t& value) {
  if (text.empty()) return false;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, value, 10);
  return result.ec == std::errc() && result.ptr == end;
}

/// Writes `content` to `path` atomically (tmp + rename). Throws
/// std::runtime_error on any I/O failure.
void atomic_write(const std::filesystem::path& path,
                  const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("registry: cannot open " + tmp.string());
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("registry: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("registry: rename " + tmp.string() + " -> " +
                             path.string() + ": " + ec.message());
  }
}

/// Reads a CRC-footered text file. Returns the payload (everything above
/// the footer, newlines preserved) or nullopt on open/CRC/format failure.
std::optional<std::string> read_checked(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // The footer is the final line; locate the newline before it.
  if (!text.empty() && text.back() == '\n') text.pop_back();
  const std::size_t nl = text.rfind('\n');
  const std::string footer =
      nl == std::string::npos ? text : text.substr(nl + 1);
  std::uint32_t stored = 0;
  if (!util::parse_crc32_footer_line(footer, stored)) return std::nullopt;
  const std::string payload =
      nl == std::string::npos ? std::string() : text.substr(0, nl + 1);
  if (pmrl::crc32(payload) != stored) {
    return std::nullopt;
  }
  return payload;
}

std::string with_footer(const std::string& payload) {
  return payload +
         util::crc32_footer_line(pmrl::crc32(payload));
}

}  // namespace

const char* policy_status_name(PolicyStatus status) {
  switch (status) {
    case PolicyStatus::Candidate: return "candidate";
    case PolicyStatus::Canary: return "canary";
    case PolicyStatus::Promoted: return "promoted";
    case PolicyStatus::RolledBack: return "rolled_back";
  }
  return "unknown";
}

std::optional<PolicyStatus> policy_status_from_name(std::string_view name) {
  for (const auto status :
       {PolicyStatus::Candidate, PolicyStatus::Canary, PolicyStatus::Promoted,
        PolicyStatus::RolledBack}) {
    if (name == policy_status_name(status)) return status;
  }
  return std::nullopt;
}

PolicyRegistry::PolicyRegistry(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  if (std::filesystem::exists(dir_, ec)) {
    if (!std::filesystem::is_directory(dir_, ec)) {
      throw std::runtime_error("registry: " + dir_.string() +
                               " is not a directory");
    }
  } else {
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw std::runtime_error("registry: cannot create " + dir_.string() +
                               ": " + ec.message());
    }
  }
}

std::filesystem::path PolicyRegistry::policy_path(
    std::uint64_t version) const {
  return dir_ / (version_stem(version) + ".policy");
}

std::filesystem::path PolicyRegistry::meta_path(std::uint64_t version) const {
  return dir_ / (version_stem(version) + ".meta");
}

void PolicyRegistry::write_meta(const PolicyMeta& meta) const {
  std::ostringstream out;
  out << kMetaMagic << ',' << kMetaVersion << '\n';
  out << "version," << meta.version << '\n';
  out << "status," << policy_status_name(meta.status) << '\n';
  out << "parent," << meta.parent_version << '\n';
  out << "train_seed," << meta.train_seed << '\n';
  out << "merge_seed," << meta.merge_seed << '\n';
  out << "episodes," << meta.episodes << '\n';
  out << "actors," << meta.actors << '\n';
  if (!meta.note.empty()) out << "note," << meta.note << '\n';
  atomic_write(meta_path(meta.version), with_footer(out.str()));
}

std::uint64_t PolicyRegistry::add(const rl::RlGovernor& governor,
                                  PolicyMeta meta) {
  std::uint64_t next = 1;
  for (const PolicyMeta& existing : list()) {
    if (existing.version >= next) next = existing.version + 1;
  }
  meta.version = next;
  std::ostringstream checkpoint;
  rl::save_policy(governor, checkpoint);
  atomic_write(policy_path(next), checkpoint.str());
  write_meta(meta);
  return next;
}

std::optional<PolicyMeta> PolicyRegistry::meta(std::uint64_t version) const {
  const auto payload = read_checked(meta_path(version));
  if (!payload) return std::nullopt;
  PolicyMeta meta;
  bool saw_magic = false;
  std::istringstream in(*payload);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) return std::nullopt;
    const std::string_view key = std::string_view(line).substr(0, comma);
    const std::string_view value =
        std::string_view(line).substr(comma + 1);
    if (key == kMetaMagic) {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) ||
          v != static_cast<std::uint64_t>(kMetaVersion)) {
        return std::nullopt;
      }
      saw_magic = true;
    } else if (key == "version") {
      if (!parse_u64(value, meta.version)) return std::nullopt;
    } else if (key == "status") {
      const auto status = policy_status_from_name(value);
      if (!status) return std::nullopt;
      meta.status = *status;
    } else if (key == "parent") {
      if (!parse_u64(value, meta.parent_version)) return std::nullopt;
    } else if (key == "train_seed") {
      if (!parse_u64(value, meta.train_seed)) return std::nullopt;
    } else if (key == "merge_seed") {
      if (!parse_u64(value, meta.merge_seed)) return std::nullopt;
    } else if (key == "episodes") {
      if (!parse_u64(value, meta.episodes)) return std::nullopt;
    } else if (key == "actors") {
      if (!parse_u64(value, meta.actors)) return std::nullopt;
    } else if (key == "note") {
      meta.note = std::string(value);
    }
    // Unknown keys are ignored: newer builds may add fields.
  }
  if (!saw_magic || meta.version != version) return std::nullopt;
  return meta;
}

std::vector<PolicyMeta> PolicyRegistry::list() const {
  std::vector<PolicyMeta> entries;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 6 || name.front() != 'v' ||
        entry.path().extension() != ".meta") {
      continue;
    }
    std::uint64_t version = 0;
    if (!parse_u64(entry.path().stem().string().substr(1), version)) {
      continue;
    }
    const auto parsed = meta(version);
    if (!parsed) {
      PMRL_WARN("registry") << "skipping unreadable meta " << name;
      continue;
    }
    entries.push_back(*parsed);
  }
  std::sort(entries.begin(), entries.end(),
            [](const PolicyMeta& a, const PolicyMeta& b) {
              return a.version < b.version;
            });
  return entries;
}

void PolicyRegistry::load(std::uint64_t version,
                          rl::RlGovernor& governor) const {
  std::ifstream in(policy_path(version));
  if (!in) {
    throw std::runtime_error("registry: cannot open " +
                             policy_path(version).string());
  }
  rl::load_policy(governor, in);
}

void PolicyRegistry::set_status(std::uint64_t version, PolicyStatus status) {
  auto existing = meta(version);
  if (!existing) {
    throw std::runtime_error("registry: no such version " +
                             std::to_string(version));
  }
  existing->status = status;
  write_meta(*existing);
}

std::optional<std::uint64_t> PolicyRegistry::current() const {
  const auto payload = read_checked(dir_ / kCurrentName);
  if (!payload) return std::nullopt;
  std::string text = *payload;
  if (!text.empty() && text.back() == '\n') text.pop_back();
  std::uint64_t version = 0;
  if (!parse_u64(text, version)) return std::nullopt;
  return version;
}

void PolicyRegistry::promote(std::uint64_t version) {
  set_status(version, PolicyStatus::Promoted);
  const std::string payload = std::to_string(version) + "\n";
  atomic_write(dir_ / kCurrentName, with_footer(payload));
}

void PolicyRegistry::rollback(std::uint64_t version) {
  set_status(version, PolicyStatus::RolledBack);
}

std::optional<std::uint64_t> PolicyRegistry::latest_candidate() const {
  std::optional<std::uint64_t> best;
  for (const PolicyMeta& entry : list()) {
    if (entry.status == PolicyStatus::Candidate) best = entry.version;
  }
  return best;
}

}  // namespace pmrl::policy
