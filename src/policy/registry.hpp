#pragma once
// PolicyRegistry: versioned on-disk storage for trained policies — the
// artifact store between "training produced a Q-table" and "the fleet is
// serving it". One directory holds:
//
//   v000001.policy   rl/policy_io checkpoint (v2, CRC-32 footer)
//   v000001.meta     lineage metadata, CRC-32 footer (format below)
//   CURRENT          the promoted version number, CRC-32 footer
//
// Meta format (line-oriented, key,value):
//
//   pmrl-policy-meta,1
//   version,3
//   status,canary
//   parent,2
//   train_seed,42
//   merge_seed,7
//   episodes,60
//   actors,4
//   note,<free text, optional>
//   crc32,<8 lowercase hex digits>
//
// Version ids are monotonic (max existing + 1). Every write is
// tmp-file + rename, so a crashed writer never leaves a torn entry, and
// every read validates the CRC footer, so a flipped bit is a load error
// instead of a silently wrong policy. Lifecycle statuses follow the
// rollout state machine: candidate -> canary -> promoted | rolled_back.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rl/rl_governor.hpp"

namespace pmrl::policy {

/// Lifecycle status of a registry entry.
enum class PolicyStatus : std::uint8_t {
  Candidate,   ///< registered, not yet serving
  Canary,      ///< serving a slice of decisions next to the incumbent
  Promoted,    ///< the incumbent (CURRENT points here)
  RolledBack,  ///< canary regressed; never serve again
};

const char* policy_status_name(PolicyStatus status);
std::optional<PolicyStatus> policy_status_from_name(std::string_view name);

/// Lineage metadata of one registry entry.
struct PolicyMeta {
  std::uint64_t version = 0;
  PolicyStatus status = PolicyStatus::Candidate;
  /// Version this policy was trained from (0 = none/fresh).
  std::uint64_t parent_version = 0;
  std::uint64_t train_seed = 0;
  std::uint64_t merge_seed = 0;
  std::uint64_t episodes = 0;
  std::uint64_t actors = 0;
  std::string note;

  bool operator==(const PolicyMeta&) const = default;
};

class PolicyRegistry {
 public:
  /// Opens (creating if needed) the registry directory. Throws
  /// std::runtime_error when the path exists but is not a directory.
  explicit PolicyRegistry(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  /// Registers a new entry: assigns the next version id, writes the
  /// policy checkpoint and the meta file atomically, and returns the
  /// version. `meta.version` is overwritten with the assignment.
  std::uint64_t add(const rl::RlGovernor& governor, PolicyMeta meta);

  /// All entries, sorted by version. Entries with unreadable/corrupt meta
  /// files are skipped (a warning is logged).
  std::vector<PolicyMeta> list() const;

  /// Metadata of one version; nullopt when absent or corrupt.
  std::optional<PolicyMeta> meta(std::uint64_t version) const;

  /// Loads a version's checkpoint into `governor` (matching shape);
  /// throws rl::PolicyLoadError / std::runtime_error on failure.
  void load(std::uint64_t version, rl::RlGovernor& governor) const;

  /// Rewrites one entry's status (atomic meta rewrite). Throws when the
  /// version does not exist.
  void set_status(std::uint64_t version, PolicyStatus status);

  /// The promoted version (CURRENT); nullopt when nothing was promoted
  /// yet or the pointer file is corrupt.
  std::optional<std::uint64_t> current() const;

  /// Marks `version` promoted and points CURRENT at it. Previously
  /// promoted entries keep their status as history; CURRENT alone names
  /// the incumbent.
  void promote(std::uint64_t version);

  /// Marks `version` rolled back. CURRENT is untouched (the incumbent
  /// keeps serving).
  void rollback(std::uint64_t version);

  /// Latest version with status Candidate; nullopt when none.
  std::optional<std::uint64_t> latest_candidate() const;

  std::filesystem::path policy_path(std::uint64_t version) const;
  std::filesystem::path meta_path(std::uint64_t version) const;

 private:
  void write_meta(const PolicyMeta& meta) const;

  std::filesystem::path dir_;
};

}  // namespace pmrl::policy
