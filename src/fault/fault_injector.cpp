#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace pmrl::fault {

namespace {
double clamp01ish(double v) {
  // Utilization signals are 0..1 by construction but transient overshoot
  // (PELT decay) can read slightly above 1; preserve that headroom.
  return std::clamp(v, 0.0, 1.25);
}

double scale_prob(double p, double intensity) {
  return std::clamp(p * intensity, 0.0, 1.0);
}
}  // namespace

FaultConfig FaultConfig::scaled(double intensity) const {
  FaultConfig out = *this;
  if (intensity < 0.0) intensity = 0.0;
  out.telemetry.util_noise_sigma = telemetry.util_noise_sigma * intensity;
  out.telemetry.util_quant_step = telemetry.util_quant_step;  // resolution
  out.telemetry.dropout_rate = scale_prob(telemetry.dropout_rate, intensity);
  out.telemetry.stuck_rate = scale_prob(telemetry.stuck_rate, intensity);
  if (intensity == 0.0) out.telemetry.util_quant_step = 0.0;
  out.thermal.event_rate = scale_prob(thermal.event_rate, intensity);
  out.bus.error_rate = scale_prob(bus.error_rate, intensity);
  out.bus.timeout_rate = scale_prob(bus.timeout_rate, intensity);
  out.policy.flip_rate = scale_prob(policy.flip_rate, intensity);
  return out;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {}

void FaultInjector::set_metrics(pmrl::obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  perturbed_counter_ =
      metrics ? &metrics->counter("fault.perturbed_epochs") : nullptr;
  dropout_counter_ =
      metrics ? &metrics->counter("fault.dropout_samples") : nullptr;
  stuck_counter_ =
      metrics ? &metrics->counter("fault.stuck_episodes") : nullptr;
  thermal_counter_ =
      metrics ? &metrics->counter("fault.thermal_events") : nullptr;
  corrupt_counter_ =
      metrics ? &metrics->counter("fault.corrupted_bytes") : nullptr;
}

void FaultInjector::emit(double time_s, std::size_t index, double value,
                         const char* detail) {
  if (!trace_) return;
  pmrl::obs::TraceEvent event;
  event.kind = pmrl::obs::EventKind::Fault;
  event.epoch = stats_.perturbed_epochs;
  event.time_s = time_s;
  event.index = static_cast<std::uint32_t>(index);
  event.value = value;
  event.detail = detail;
  trace_->record(event);
}

void FaultInjector::reset() {
  rng_ = Rng(config_.seed);
  stats_ = FaultStats{};
  clusters_.clear();
}

double FaultInjector::degrade_util(double value) {
  const auto& t = config_.telemetry;
  if (t.util_noise_sigma > 0.0) {
    value += rng_.normal(0.0, t.util_noise_sigma);
  }
  if (t.util_quant_step > 0.0) {
    value = std::round(value / t.util_quant_step) * t.util_quant_step;
  }
  return clamp01ish(value);
}

void FaultInjector::perturb_observation(governors::PolicyObservation& obs) {
  const auto& t = config_.telemetry;
  if (!t.enabled()) return;
  ++stats_.perturbed_epochs;
  if (perturbed_counter_) perturbed_counter_->inc();
  if (clusters_.size() < obs.soc.clusters.size()) {
    clusters_.resize(obs.soc.clusters.size());
  }
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    auto& ct = obs.soc.clusters[c];
    auto& fs = clusters_[c];

    if (fs.stuck_remaining > 0) {
      // Frozen sensor: replay the captured sample.
      --fs.stuck_remaining;
      ct.util_avg = fs.stuck_util_avg;
      ct.util_max = fs.stuck_util_max;
      ct.busy_avg = fs.stuck_busy_avg;
    } else if (t.stuck_rate > 0.0 && rng_.bernoulli(t.stuck_rate)) {
      ++stats_.stuck_episodes;
      if (stuck_counter_) stuck_counter_->inc();
      emit(obs.soc.time_s, c, static_cast<double>(t.stuck_epochs), "stuck");
      fs.stuck_remaining = t.stuck_epochs;
      fs.stuck_util_avg = ct.util_avg;
      fs.stuck_util_max = ct.util_max;
      fs.stuck_busy_avg = ct.busy_avg;
    }

    if (t.dropout_rate > 0.0 && rng_.bernoulli(t.dropout_rate)) {
      // Lost sample: the driver reads back zeros for this epoch.
      ++stats_.dropout_samples;
      if (dropout_counter_) dropout_counter_->inc();
      emit(obs.soc.time_s, c, 0.0, "dropout");
      ct.util_avg = 0.0;
      ct.util_max = 0.0;
      ct.busy_avg = 0.0;
    } else {
      ct.util_avg = degrade_util(ct.util_avg);
      ct.util_max = std::max(degrade_util(ct.util_max), ct.util_avg);
      ct.busy_avg = degrade_util(ct.busy_avg);
    }
    // Derived signal stays consistent with the degraded primaries.
    ct.util_invariant =
        ct.max_freq_hz > 0.0 ? ct.util_avg * ct.freq_hz / ct.max_freq_hz
                             : ct.util_avg;
  }
}

void FaultInjector::inject_epoch_faults(soc::Soc& soc, double time_s) {
  const auto& th = config_.thermal;
  if (!th.enabled()) return;
  for (std::size_t c = 0; c < soc.cluster_count(); ++c) {
    if (rng_.bernoulli(th.event_rate)) {
      ++stats_.thermal_events;
      if (thermal_counter_) thermal_counter_->inc();
      const double delta = rng_.uniform(th.min_delta_c, th.max_delta_c);
      emit(time_s, c, delta, "thermal");
      soc.inject_thermal_event(c, delta);
    }
  }
}

std::size_t FaultInjector::corrupt_text(std::string& text) {
  const auto& p = config_.policy;
  if (!p.enabled()) return 0;
  std::size_t flipped = 0;
  for (char& ch : text) {
    if (rng_.bernoulli(p.flip_rate)) {
      ch = static_cast<char>(
          ch ^ static_cast<char>(1 << rng_.uniform_int(0, 6)));
      ++flipped;
    }
  }
  stats_.corrupted_bytes += flipped;
  if (flipped > 0) {
    if (corrupt_counter_) corrupt_counter_->inc(flipped);
    emit(0.0, 0, static_cast<double>(flipped), "corrupt-text");
  }
  return flipped;
}

}  // namespace pmrl::fault
