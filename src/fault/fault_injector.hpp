#pragma once
// The fault injector: applies a FaultConfig to the simulation's seams.
// Deterministic — all sampling comes from one seeded pmrl::Rng, so a
// given (config, call sequence) replays an identical fault stream; call
// reset() to rewind and reproduce a run exactly.
//
// Seams covered here:
//   perturb_observation  telemetry noise / quantization / stuck-at /
//                        dropout on the signals feeding rl::State (and
//                        the baseline governors, which read the same
//                        counters)
//   inject_epoch_faults  thermal-emergency events through soc::Thermal
//   corrupt_text         bit flips in persisted policy checkpoints
//
// AXI transaction faults live in hw::AxiLiteModel (the hw library sits
// above this one); FaultConfig::bus carries their parameters.

#include <cstddef>
#include <string>
#include <vector>

#include "fault/fault_config.hpp"
#include "governors/governor.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"

namespace pmrl::obs {
class TraceSink;
class MetricsRegistry;
class Counter;
}  // namespace pmrl::obs

namespace pmrl::fault {

/// Running totals of what the injector actually did.
struct FaultStats {
  std::size_t perturbed_epochs = 0;
  std::size_t dropout_samples = 0;
  std::size_t stuck_episodes = 0;
  std::size_t thermal_events = 0;
  std::size_t corrupted_bytes = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Rewinds the RNG and all per-cluster fault state to the constructed
  /// state, so the next run sees the identical fault sequence.
  void reset();

  /// Applies telemetry faults to one decision epoch's observation, in
  /// place. Stuck-at state is tracked per cluster across calls.
  void perturb_observation(governors::PolicyObservation& obs);

  /// Samples and applies this epoch's thermal-emergency events. `time_s`
  /// stamps emitted trace events (simulation time; 0 when unknown).
  void inject_epoch_faults(soc::Soc& soc, double time_s = 0.0);

  /// Flips random bits in a persisted checkpoint image (policy-file
  /// corruption seam); returns the number of corrupted bytes.
  std::size_t corrupt_text(std::string& text);

  /// Installs a trace sink (nullptr disengages): Fault events are emitted
  /// for stuck-sensor onsets, dropout samples, thermal emergencies, and
  /// checkpoint corruption, with detail naming the fault kind.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a metrics registry (nullptr detaches): mirrors FaultStats
  /// into named counters so farm-wide totals aggregate.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  /// Stuck-at bookkeeping for one cluster's telemetry.
  struct ClusterFaultState {
    std::size_t stuck_remaining = 0;
    double stuck_util_avg = 0.0;
    double stuck_util_max = 0.0;
    double stuck_busy_avg = 0.0;
  };

  double degrade_util(double value);
  void emit(double time_s, std::size_t index, double value,
            const char* detail);

  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
  std::vector<ClusterFaultState> clusters_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* perturbed_counter_ = nullptr;
  obs::Counter* dropout_counter_ = nullptr;
  obs::Counter* stuck_counter_ = nullptr;
  obs::Counter* thermal_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;
};

}  // namespace pmrl::fault
