#pragma once
// Per-scenario fault specifications: each mobile scenario stresses a
// different part of the fault surface (a hot gaming session sees thermal
// emergencies; bursty browsing sees telemetry dropouts between wake-ups;
// long video sessions accumulate sensor drift). The profile is the
// *authored* worst case for that scenario; callers scale it down with
// FaultConfig::scaled(intensity).

#include <cstdint>

#include "fault/fault_config.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::fault {

/// The authored fault profile for one scenario at intensity 1.0, scaled
/// by `intensity` and seeded by `seed` (derive distinct seeds per run for
/// independent streams; identical seeds replay identical faults).
FaultConfig scenario_fault_profile(workload::ScenarioKind kind,
                                   double intensity, std::uint64_t seed);

/// A scenario-agnostic profile exercising every seam at once (used by the
/// resilience bench's uniform sweep and by integration tests).
FaultConfig uniform_fault_profile(double intensity, std::uint64_t seed);

}  // namespace pmrl::fault
