#pragma once
// Fault-model configuration: what can go wrong, how often, and how hard.
// One FaultConfig describes a complete adverse environment for a run —
// degraded telemetry feeding the policy's state encoder, thermal
// emergencies hitting the SoC between decision epochs, transaction faults
// on the CPU<->accelerator bus, and bit-corruption of persisted policy
// checkpoints. Everything is driven by one seed so a fault scenario
// replays bit-identically.

#include <cstdint>

namespace pmrl::fault {

/// Degradation of the utilization telemetry a governor observes. Models a
/// real sensor/counter path: additive read noise, coarse counter
/// quantization, sensors stuck at a stale value, and whole-sample
/// dropouts (the read returns nothing and the driver substitutes zero).
struct TelemetryFaultParams {
  /// Gaussian noise stddev added to the utilization signals (0..1 scale).
  double util_noise_sigma = 0.0;
  /// Quantization step applied to utilization after noise (0 disables).
  /// 1/16 models a 4-bit activity counter readout.
  double util_quant_step = 0.0;
  /// Per-cluster per-epoch probability the utilization sample is lost;
  /// the policy then reads zeros for that cluster this epoch.
  double dropout_rate = 0.0;
  /// Per-cluster per-epoch probability the telemetry freezes (stuck-at):
  /// the last good sample is replayed for `stuck_epochs` epochs.
  double stuck_rate = 0.0;
  /// Length of a stuck-at episode, in decision epochs.
  std::size_t stuck_epochs = 5;

  bool enabled() const {
    return util_noise_sigma > 0.0 || util_quant_step > 0.0 ||
           dropout_rate > 0.0 || stuck_rate > 0.0;
  }
};

/// Thermal-emergency events: sudden die-temperature jumps (hot-spot
/// migration, ambient spikes, charger heat) injected between epochs.
struct ThermalFaultParams {
  /// Per-cluster per-epoch probability of an emergency event.
  double event_rate = 0.0;
  /// Uniform range of the injected temperature jump (degrees C).
  double min_delta_c = 8.0;
  double max_delta_c = 25.0;

  bool enabled() const { return event_rate > 0.0; }
};

/// CPU<->accelerator interface faults, mirrored into hw::AxiFaultParams by
/// whoever owns the HwPolicyEngine (src/fault cannot depend on src/hw —
/// the hw library sits above it in the link order).
struct BusFaultParams {
  /// Per-attempt probability of an error response (SLVERR/DECERR).
  double error_rate = 0.0;
  /// Per-attempt probability the response is lost (driver timeout).
  double timeout_rate = 0.0;
  /// Driver completion-timeout budget per attempt (seconds).
  double timeout_s = 5e-6;
  /// Attempts per invocation before the driver reports failure.
  unsigned max_attempts = 3;

  bool enabled() const { return error_rate > 0.0 || timeout_rate > 0.0; }
};

/// Bit-corruption of persisted policy checkpoints.
struct PolicyCorruptionParams {
  /// Per-byte probability of a bit flip when corrupt_text() is applied.
  double flip_rate = 0.0;

  bool enabled() const { return flip_rate > 0.0; }
};

/// A complete fault scenario.
struct FaultConfig {
  std::uint64_t seed = 0x5EED5EEDULL;
  TelemetryFaultParams telemetry;
  ThermalFaultParams thermal;
  BusFaultParams bus;
  PolicyCorruptionParams policy;

  bool enabled() const {
    return telemetry.enabled() || thermal.enabled() || bus.enabled() ||
           policy.enabled();
  }

  /// Returns a copy with every rate/magnitude scaled by `intensity`
  /// (clamped to [0, 1] where the field is a probability). intensity 0
  /// disables everything; 1 keeps the config as authored.
  FaultConfig scaled(double intensity) const;
};

}  // namespace pmrl::fault
