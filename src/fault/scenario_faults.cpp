#include "fault/scenario_faults.hpp"

namespace pmrl::fault {

namespace {
FaultConfig base(std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  // Bus faults are interface properties, not workload properties: the
  // same moderate rates everywhere.
  config.bus.error_rate = 0.02;
  config.bus.timeout_rate = 0.01;
  return config;
}
}  // namespace

FaultConfig scenario_fault_profile(workload::ScenarioKind kind,
                                   double intensity, std::uint64_t seed) {
  FaultConfig config = base(seed);
  switch (kind) {
    case workload::ScenarioKind::VideoPlayback:
      // Long sessions: sensor drift (noise) plus occasional stale reads.
      config.telemetry.util_noise_sigma = 0.10;
      config.telemetry.stuck_rate = 0.01;
      break;
    case workload::ScenarioKind::WebBrowsing:
      // Wake-up races around bursts lose samples.
      config.telemetry.dropout_rate = 0.05;
      config.telemetry.util_noise_sigma = 0.05;
      break;
    case workload::ScenarioKind::Gaming:
      // Sustained load on a hot device: thermal emergencies dominate.
      config.thermal.event_rate = 0.02;
      config.thermal.min_delta_c = 10.0;
      config.thermal.max_delta_c = 30.0;
      config.telemetry.util_noise_sigma = 0.05;
      break;
    case workload::ScenarioKind::AppLaunch:
      // Cold-start storms freeze the counter path.
      config.telemetry.stuck_rate = 0.02;
      config.telemetry.stuck_epochs = 8;
      break;
    case workload::ScenarioKind::AudioIdle:
      // Near-idle: only coarse (quantized) activity counters are awake.
      config.telemetry.util_quant_step = 1.0 / 16.0;
      config.telemetry.dropout_rate = 0.02;
      break;
    case workload::ScenarioKind::Mixed:
      // Everything, moderately.
      config.telemetry.util_noise_sigma = 0.07;
      config.telemetry.dropout_rate = 0.03;
      config.telemetry.stuck_rate = 0.01;
      config.thermal.event_rate = 0.01;
      break;
  }
  return config.scaled(intensity);
}

FaultConfig uniform_fault_profile(double intensity, std::uint64_t seed) {
  FaultConfig config = base(seed);
  config.telemetry.util_noise_sigma = 0.08;
  config.telemetry.util_quant_step = 1.0 / 32.0;
  config.telemetry.dropout_rate = 0.04;
  config.telemetry.stuck_rate = 0.015;
  config.thermal.event_rate = 0.01;
  config.policy.flip_rate = 2e-4;
  return config.scaled(intensity);
}

}  // namespace pmrl::fault
