#pragma once
// Reusable job-release machinery the concrete scenarios are assembled from:
// periodic frame sources (display/audio pipelines), burst sources
// (page loads, app launches), and a Markov phase machine (scene changes in
// games, browse/idle alternation).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace pmrl::workload {

/// Per-job work distribution: lognormal around a mean with an optional
/// heavy-spike mixture (e.g. video I-frames).
struct WorkDistribution {
  double mean_cycles = 1e6;
  /// Coefficient of variation of the lognormal body.
  double cv = 0.2;
  /// Probability that a job is a spike.
  double spike_probability = 0.0;
  /// Spike multiplier applied to mean_cycles.
  double spike_factor = 2.5;

  double sample(Rng& rng) const;
};

/// Releases one job every `period_s` with `deadline = release + period *
/// deadline_factor`. Models a display/audio frame pipeline.
class PeriodicSource {
 public:
  PeriodicSource(soc::TaskId task, double period_s, WorkDistribution work,
                 double deadline_factor = 1.0, double phase_s = 0.0);

  /// Releases all jobs due in [now, now+dt).
  void tick(WorkloadHost& host, double now_s, double dt_s, Rng& rng);

  /// Enables/disables releases (used by phase machines).
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  double period_s() const { return period_s_; }
  soc::TaskId task() const { return task_; }
  /// Overrides the per-job work distribution (phase-dependent intensity).
  void set_work(WorkDistribution work) { work_ = work; }

 private:
  /// Scheduled time of release `index` (computed multiplicatively so that
  /// thousands of periods accumulate no floating-point drift).
  double release_time(std::uint64_t index) const {
    return phase_s_ + period_s_ * static_cast<double>(index);
  }

  soc::TaskId task_;
  double period_s_;
  WorkDistribution work_;
  double deadline_factor_;
  double phase_s_;
  std::uint64_t release_index_ = 0;
  /// Cached release_time(release_index_): the per-tick scan reduces to one
  /// comparison against this in the (common) no-release case. Always kept
  /// exactly equal to the recomputed value, so behaviour is bit-identical.
  double next_release_s_ = 0.0;
  bool active_ = true;
};

/// Releases bursts of work: at each trigger, `job_count` jobs (spread across
/// the given tasks round-robin) with a common absolute deadline
/// `now + deadline_s`. Triggers are external (call `fire`).
class BurstSource {
 public:
  BurstSource(std::vector<soc::TaskId> tasks, WorkDistribution work,
              std::size_t job_count, double deadline_s);

  /// Releases one burst now.
  void fire(WorkloadHost& host, double now_s, Rng& rng);

  std::size_t job_count() const { return job_count_; }
  double deadline_s() const { return deadline_s_; }

 private:
  std::vector<soc::TaskId> tasks_;
  WorkDistribution work_;
  std::size_t job_count_;
  double deadline_s_;
};

/// Discrete-time Markov phase machine with mean dwell times per phase.
/// Phase transitions are sampled when the dwell expires; the row of the
/// transition matrix gives the next-phase distribution.
class PhaseMachine {
 public:
  struct Phase {
    std::string name;
    double mean_dwell_s = 1.0;
  };

  /// `transition[i][j]` = probability of moving to phase j when leaving
  /// phase i (rows need not be normalized; they are treated as weights).
  PhaseMachine(std::vector<Phase> phases,
               std::vector<std::vector<double>> transition, Rng rng,
               std::size_t initial_phase = 0);

  /// Advances time; returns true if the phase changed during this window.
  bool tick(double now_s, double dt_s);

  std::size_t phase() const { return current_; }
  const std::string& phase_name() const { return phases_[current_].name; }
  std::size_t phase_count() const { return phases_.size(); }

 private:
  void schedule_next(double now_s);
  std::vector<Phase> phases_;
  std::vector<std::vector<double>> transition_;
  Rng rng_;
  std::size_t current_;
  double next_change_s_ = 0.0;
  bool scheduled_ = false;
};

}  // namespace pmrl::workload
