#include "workload/scenarios.hpp"

#include <stdexcept>

namespace pmrl::workload {

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::VideoPlayback: return "video";
    case ScenarioKind::WebBrowsing: return "web";
    case ScenarioKind::Gaming: return "game";
    case ScenarioKind::AppLaunch: return "applaunch";
    case ScenarioKind::AudioIdle: return "audioidle";
    case ScenarioKind::Mixed: return "mixed";
  }
  return "?";
}

std::vector<ScenarioKind> all_scenario_kinds() {
  return {ScenarioKind::VideoPlayback, ScenarioKind::WebBrowsing,
          ScenarioKind::Gaming,        ScenarioKind::AppLaunch,
          ScenarioKind::AudioIdle,     ScenarioKind::Mixed};
}

std::unique_ptr<Scenario> make_scenario(ScenarioKind kind,
                                        std::uint64_t seed) {
  switch (kind) {
    case ScenarioKind::VideoPlayback:
      return std::make_unique<VideoPlaybackScenario>(seed);
    case ScenarioKind::WebBrowsing:
      return std::make_unique<WebBrowsingScenario>(seed);
    case ScenarioKind::Gaming:
      return std::make_unique<GamingScenario>(seed);
    case ScenarioKind::AppLaunch:
      return std::make_unique<AppLaunchScenario>(seed);
    case ScenarioKind::AudioIdle:
      return std::make_unique<AudioIdleScenario>(seed);
    case ScenarioKind::Mixed:
      return std::make_unique<MixedScenario>(seed);
  }
  throw std::invalid_argument("unknown scenario kind");
}

// ---- Video playback --------------------------------------------------------

VideoPlaybackScenario::VideoPlaybackScenario(std::uint64_t seed)
    : rng_(seed ^ 0x76696465ULL) {}

void VideoPlaybackScenario::setup(WorkloadHost& host) {
  const soc::TaskId decode =
      host.create_task("video.decode", soc::Affinity::Any, 1.0);
  const soc::TaskId audio =
      host.create_task("video.audio", soc::Affinity::PreferLittle, 1.0);
  // 30 fps decode: ~8 Mcycles mean per frame, 25% CV, 8% I-frame spikes.
  WorkDistribution decode_work{8e6, 0.25, 0.08, 2.5};
  decode_.emplace(decode, 1.0 / 30.0, decode_work, /*deadline_factor=*/1.0);
  WorkDistribution audio_work{0.3e6, 0.10, 0.0, 1.0};
  audio_.emplace(audio, 0.010, audio_work, /*deadline_factor=*/1.0);
}

void VideoPlaybackScenario::tick(WorkloadHost& host, double now_s,
                                 double dt_s) {
  decode_->tick(host, now_s, dt_s, rng_);
  audio_->tick(host, now_s, dt_s, rng_);
}

// ---- Web browsing ----------------------------------------------------------

WebBrowsingScenario::WebBrowsingScenario(std::uint64_t seed)
    : rng_(seed ^ 0x77656221ULL) {}

void WebBrowsingScenario::setup(WorkloadHost& host) {
  std::vector<soc::TaskId> workers;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(host.create_task("web.worker" + std::to_string(i),
                                       soc::Affinity::Any, 1.0));
  }
  const soc::TaskId render =
      host.create_task("web.render", soc::Affinity::PreferBig, 2.0);

  // Page load: 24 jobs x ~10 Mcycles = ~240 Mcycles total, 1.2 s budget.
  WorkDistribution load_work{10e6, 0.4, 0.05, 2.0};
  page_load_.emplace(workers, load_work, 24, 1.2);

  // Scrolling: light 60 fps frames.
  WorkDistribution scroll_work{4e6, 0.2, 0.0, 1.0};
  scroll_frames_.emplace(render, 1.0 / 60.0, scroll_work, 1.0);
  scroll_frames_->set_active(false);

  phases_.emplace(
      std::vector<PhaseMachine::Phase>{{"idle", 2.5},
                                       {"load", 0.8},
                                       {"scroll", 3.0}},
      // idle -> load; load -> scroll; scroll -> idle or another load.
      std::vector<std::vector<double>>{{0.0, 1.0, 0.0},
                                       {0.0, 0.0, 1.0},
                                       {0.55, 0.45, 0.0}},
      rng_.split(), kIdle);
}

void WebBrowsingScenario::tick(WorkloadHost& host, double now_s,
                               double dt_s) {
  phases_->tick(now_s, dt_s);
  const std::size_t phase = phases_->phase();
  if (phase != last_phase_) {
    if (phase == kLoad) page_load_->fire(host, now_s, rng_);
    scroll_frames_->set_active(phase == kScroll);
    last_phase_ = phase;
  }
  scroll_frames_->tick(host, now_s, dt_s, rng_);
}

// ---- Gaming ----------------------------------------------------------------

GamingScenario::GamingScenario(std::uint64_t seed)
    : rng_(seed ^ 0x67616d65ULL) {}

void GamingScenario::setup(WorkloadHost& host) {
  const soc::TaskId render =
      host.create_task("game.render", soc::Affinity::PreferBig, 2.0);
  const soc::TaskId physics =
      host.create_task("game.physics", soc::Affinity::PreferBig, 1.0);
  const soc::TaskId audio =
      host.create_task("game.audio", soc::Affinity::PreferLittle, 1.0);

  WorkDistribution render_light{6e6, 0.2, 0.0, 1.0};
  render_.emplace(render, 1.0 / 60.0, render_light, 1.0);
  WorkDistribution physics_work{2e6, 0.15, 0.0, 1.0};
  physics_.emplace(physics, 1.0 / 120.0, physics_work, 1.0);
  WorkDistribution audio_work{0.3e6, 0.10, 0.0, 1.0};
  audio_.emplace(audio, 0.010, audio_work, 1.0);

  scenes_.emplace(
      std::vector<PhaseMachine::Phase>{{"light", 4.0},
                                       {"medium", 5.0},
                                       {"heavy", 4.0}},
      std::vector<std::vector<double>>{{0.0, 0.8, 0.2},
                                       {0.35, 0.0, 0.65},
                                       {0.2, 0.8, 0.0}},
      rng_.split(), 0);
}

void GamingScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  scenes_->tick(now_s, dt_s);
  if (scenes_->phase() != applied_scene_) {
    applied_scene_ = scenes_->phase();
    // Scene intensity changes the per-frame render cost.
    static constexpr double kMeans[] = {6e6, 12e6, 20e6};
    render_->set_work(WorkDistribution{kMeans[applied_scene_], 0.2, 0.03, 1.6});
  }
  render_->tick(host, now_s, dt_s, rng_);
  physics_->tick(host, now_s, dt_s, rng_);
  audio_->tick(host, now_s, dt_s, rng_);
}

// ---- App launch ------------------------------------------------------------

AppLaunchScenario::AppLaunchScenario(std::uint64_t seed)
    : rng_(seed ^ 0x6c61756eULL) {}

void AppLaunchScenario::setup(WorkloadHost& host) {
  std::vector<soc::TaskId> loaders;
  for (int i = 0; i < 4; ++i) {
    loaders.push_back(host.create_task("launch.loader" + std::to_string(i),
                                       soc::Affinity::PreferBig, 1.5));
  }
  const soc::TaskId ui =
      host.create_task("launch.ui", soc::Affinity::PreferBig, 2.0);

  // Cold launch: 16 jobs x ~25 Mcycles = ~400 Mcycles, 2 s budget.
  WorkDistribution launch_work{25e6, 0.35, 0.05, 1.8};
  launch_burst_.emplace(loaders, launch_work, 16, 2.0);

  WorkDistribution settle_work{3e6, 0.2, 0.0, 1.0};
  settle_frames_.emplace(ui, 1.0 / 60.0, settle_work, 1.0);
  settle_frames_->set_active(false);
}

void AppLaunchScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  const double window_end = now_s + dt_s;
  if (next_launch_s_ < window_end) {
    launch_burst_->fire(host, next_launch_s_ >= now_s ? next_launch_s_ : now_s,
                        rng_);
    settle_until_s_ = next_launch_s_ + 2.0 + 1.5;  // burst budget + animation
    settle_frames_->set_active(true);
    next_launch_s_ += rng_.uniform(5.0, 8.0);
  }
  if (settle_until_s_ >= 0.0 && now_s > settle_until_s_) {
    settle_frames_->set_active(false);
    settle_until_s_ = -1.0;
  }
  settle_frames_->tick(host, now_s, dt_s, rng_);
}

// ---- Audio + idle ----------------------------------------------------------

AudioIdleScenario::AudioIdleScenario(std::uint64_t seed)
    : rng_(seed ^ 0x6175696fULL) {}

void AudioIdleScenario::setup(WorkloadHost& host) {
  const soc::TaskId audio =
      host.create_task("idle.audio", soc::Affinity::PreferLittle, 1.0);
  sync_task_ = host.create_task("idle.sync", soc::Affinity::PreferLittle, 0.5);
  WorkDistribution audio_work{0.3e6, 0.10, 0.0, 1.0};
  audio_.emplace(audio, 0.010, audio_work, 1.0);
  next_sync_s_ = rng_.uniform(2.0, 10.0);
}

void AudioIdleScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  audio_->tick(host, now_s, dt_s, rng_);
  const double window_end = now_s + dt_s;
  while (next_sync_s_ < window_end) {
    // Best-effort background sync (no deadline).
    host.submit(sync_task_, rng_.uniform(10e6, 30e6), -1.0);
    next_sync_s_ += rng_.exponential(1.0 / 8.0);
  }
}

// ---- Mixed -----------------------------------------------------------------

namespace {
/// Host wrapper that forwards task creation but drops job submissions —
/// used to keep inactive children's release clocks advancing.
class DroppingHost : public WorkloadHost {
 public:
  explicit DroppingHost(WorkloadHost& inner) : inner_(inner) {}
  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override {
    return inner_.create_task(std::move(name), affinity, weight);
  }
  void submit(soc::TaskId, double, double) override {}

 private:
  WorkloadHost& inner_;
};
}  // namespace

MixedScenario::MixedScenario(std::uint64_t seed) : rng_(seed ^ 0x6d697865ULL) {
  children_.push_back(std::make_unique<VideoPlaybackScenario>(seed + 1));
  children_.push_back(std::make_unique<GamingScenario>(seed + 2));
  children_.push_back(std::make_unique<WebBrowsingScenario>(seed + 3));
  children_.push_back(std::make_unique<AudioIdleScenario>(seed + 4));
  children_.push_back(std::make_unique<AppLaunchScenario>(seed + 5));
}

void MixedScenario::setup(WorkloadHost& host) {
  for (auto& child : children_) child->setup(host);
  next_switch_s_ = rng_.uniform(6.0, 12.0);
}

void MixedScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  if (now_s >= next_switch_s_) {
    active_ = (active_ + 1) % children_.size();
    next_switch_s_ = now_s + rng_.uniform(6.0, 12.0);
  }
  DroppingHost dropper(host);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i == active_) {
      children_[i]->tick(host, now_s, dt_s);
    } else {
      children_[i]->tick(dropper, now_s, dt_s);
    }
  }
}

}  // namespace pmrl::workload
