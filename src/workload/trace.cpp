#include "workload/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace pmrl::workload {

namespace {
soc::Affinity affinity_from_name(const std::string& s) {
  if (s == "any") return soc::Affinity::Any;
  if (s == "little") return soc::Affinity::PreferLittle;
  if (s == "big") return soc::Affinity::PreferBig;
  throw std::runtime_error("trace: unknown affinity '" + s + "'");
}
}  // namespace

void Trace::save(std::ostream& out) const {
  CsvWriter writer(out);
  for (const auto& task : tasks) {
    writer.write_row({"task", task.name, soc::affinity_name(task.affinity),
                      std::to_string(task.weight)});
  }
  // %.17g round-trips doubles exactly, keeping replay bit-identical.
  char buf[64];
  for (const auto& job : jobs) {
    std::vector<std::string> row{"job"};
    std::snprintf(buf, sizeof buf, "%.17g", job.time_s);
    row.emplace_back(buf);
    row.push_back(std::to_string(job.task_index));
    std::snprintf(buf, sizeof buf, "%.17g", job.work_cycles);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.17g", job.deadline_s);
    row.emplace_back(buf);
    writer.write_row(row);
  }
}

Trace Trace::load(std::istream& in) {
  Trace trace;
  const auto rows = CsvReader::parse(in);
  for (const auto& row : rows) {
    if (row.empty()) continue;
    if (row[0] == "task") {
      if (row.size() != 4) throw std::runtime_error("trace: bad task row");
      trace.tasks.push_back(
          {row[1], affinity_from_name(row[2]), std::stod(row[3])});
    } else if (row[0] == "job") {
      if (row.size() != 5) throw std::runtime_error("trace: bad job row");
      TraceJob job;
      job.time_s = std::stod(row[1]);
      job.task_index = static_cast<std::size_t>(std::stoul(row[2]));
      job.work_cycles = std::stod(row[3]);
      job.deadline_s = std::stod(row[4]);
      if (job.task_index >= trace.tasks.size()) {
        throw std::runtime_error("trace: job references unknown task");
      }
      trace.jobs.push_back(job);
    } else {
      throw std::runtime_error("trace: unknown row tag '" + row[0] + "'");
    }
  }
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.time_s < b.time_s;
                   });
  return trace;
}

soc::TaskId TraceRecorder::create_task(std::string name,
                                       soc::Affinity affinity, double weight) {
  const soc::TaskId inner_id = inner_->create_task(name, affinity, weight);
  trace_.tasks.push_back({std::move(name), affinity, weight});
  inner_ids_.push_back(inner_id);
  return inner_id;
}

void TraceRecorder::submit(soc::TaskId task, double work_cycles,
                           double deadline_s) {
  inner_->submit(task, work_cycles, deadline_s);
  const auto it = std::find(inner_ids_.begin(), inner_ids_.end(), task);
  if (it == inner_ids_.end()) {
    throw std::runtime_error("trace: submission to task not created here");
  }
  trace_.jobs.push_back(
      {now_s_, static_cast<std::size_t>(it - inner_ids_.begin()), work_cycles,
       deadline_s});
}

TraceScenario::TraceScenario(Trace trace, std::string name)
    : trace_(std::move(trace)), name_(std::move(name)) {
  std::stable_sort(trace_.jobs.begin(), trace_.jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.time_s < b.time_s;
                   });
}

void TraceScenario::setup(WorkloadHost& host) {
  host_ids_.clear();
  host_ids_.reserve(trace_.tasks.size());
  for (const auto& task : trace_.tasks) {
    host_ids_.push_back(host.create_task(task.name, task.affinity,
                                         task.weight));
  }
  cursor_ = 0;
}

void TraceScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  const double window_end = now_s + dt_s;
  while (cursor_ < trace_.jobs.size() &&
         trace_.jobs[cursor_].time_s < window_end) {
    const TraceJob& job = trace_.jobs[cursor_];
    host.submit(host_ids_.at(job.task_index), job.work_cycles,
                job.deadline_s);
    ++cursor_;
  }
}

}  // namespace pmrl::workload
