#pragma once
// Adversarial scenario fuzzing: randomized-but-reproducible workload
// scenarios assembled from the same primitives the authored scenarios use
// (periodic frame pipelines, parallel bursts) plus stress knobs that the
// fuzz driver maps onto the fault subsystem (telemetry degradation,
// thermal emergencies). A FuzzSpec is a pure value: the same spec releases
// an identical job stream, serializes to a stable text format, and — once
// minimized by the shrinker — is checked into tests/data/scenarios/ as a
// permanent regression case.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/replay.hpp"  // TraceParseError
#include "workload/scenario.hpp"
#include "workload/sources.hpp"

namespace pmrl::workload {

/// One randomized job source inside a phase.
struct FuzzSource {
  enum class Kind { Periodic, Burst };

  Kind kind = Kind::Periodic;
  soc::Affinity affinity = soc::Affinity::Any;
  /// Periodic: release period. Burst: interval between bursts.
  double period_s = 0.016;
  double work_mean_cycles = 1e6;
  double work_cv = 0.2;
  double spike_probability = 0.0;
  double spike_factor = 2.5;
  /// Periodic deadline = release + period * deadline_factor.
  double deadline_factor = 1.0;
  /// Burst absolute deadline after the burst fires.
  double deadline_s = 0.5;
  /// Jobs per burst (>= 1; unused by periodic sources).
  std::size_t burst_jobs = 4;
};

/// One scenario phase: the listed sources are active for duration_s.
/// A phase with no sources is deliberate idle time (a regime transition
/// the policy must ride out).
struct FuzzPhase {
  double duration_s = 1.0;
  std::vector<FuzzSource> sources;
};

/// Environment stress riding on the scenario. The workload library cannot
/// depend on src/fault (link order), so these are raw knobs; the fuzz
/// driver maps them onto a fault::FaultConfig.
struct FuzzStress {
  double telemetry_noise_sigma = 0.0;
  double telemetry_dropout_rate = 0.0;
  double telemetry_stuck_rate = 0.0;
  double thermal_event_rate = 0.0;
  double thermal_max_delta_c = 25.0;

  /// Global-cap step-change schedule for the budgeted fleet check, in
  /// PER-DEVICE watts (the driver scales by its canonical fleet size).
  /// budget_cap_w = 0 disables the budget arm entirely. When enabled and
  /// budget_step_cap_w > 0, the cap steps to budget_step_cap_w at
  /// budget_step_frac of the scenario duration.
  double budget_cap_w = 0.0;
  double budget_step_cap_w = 0.0;
  double budget_step_frac = 0.5;

  /// True when any fault knob is live (budget knobs are not faults: they
  /// map onto the budget tree, not the fault injector).
  bool any() const {
    return telemetry_noise_sigma > 0.0 || telemetry_dropout_rate > 0.0 ||
           telemetry_stuck_rate > 0.0 || thermal_event_rate > 0.0;
  }
};

/// A complete fuzz scenario: phases + stress + the RNG stream seed for job
/// sampling. Value-semantic and serializable.
struct FuzzSpec {
  std::string name = "fuzz";
  std::uint64_t seed = 0;
  FuzzStress stress;
  std::vector<FuzzPhase> phases;

  double total_duration_s() const;
  std::size_t source_count() const;

  /// Serializes as the versioned line-oriented text format (see
  /// DESIGN.md §10). `comments` become '#'-prefixed provenance lines
  /// under the header.
  void save(std::ostream& out,
            const std::vector<std::string>& comments = {}) const;

  /// Parses a document produced by save(). Throws TraceParseError (with
  /// the offending 1-based line) on malformed input: bad header/tag,
  /// wrong field counts, NaN/Inf, non-positive durations/periods/work,
  /// probabilities outside [0, 1], or zero burst jobs.
  static FuzzSpec load(std::istream& in);
};

/// Samples a randomized spec from a seeded stream: 1-4 phases of 0.5-3 s,
/// 0-3 sources each (periodic pipelines and burst storms across the
/// affinity/period/work/deadline space), and stress knobs on roughly half
/// the specs. The same seed always yields the same spec.
FuzzSpec generate_fuzz_spec(std::uint64_t seed);

/// Scenario interpreting a FuzzSpec: phases play back-to-back; each
/// phase's sources release jobs only inside that phase's window. All
/// randomness (work sampling) comes from one stream seeded by spec.seed,
/// so a spec's job sequence is bit-identical on every replay.
class FuzzScenario : public Scenario {
 public:
  explicit FuzzScenario(FuzzSpec spec);

  std::string name() const override { return spec_.name; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

  const FuzzSpec& spec() const { return spec_; }

 private:
  struct ActiveSource {
    const FuzzSource* source = nullptr;
    soc::TaskId task = 0;
    double phase_start_s = 0.0;
    double phase_end_s = 0.0;
    /// Periodic: next release index (release = start + index * period).
    /// Burst: next fire time.
    std::uint64_t release_index = 0;
    double next_fire_s = 0.0;
  };

  FuzzSpec spec_;
  Rng rng_;
  std::vector<ActiveSource> sources_;
};

}  // namespace pmrl::workload
