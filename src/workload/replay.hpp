#pragma once
// Trace-replay workload sources. Two input families become first-class
// scenarios here:
//
//   * structured JSONL traces recorded by `pmrl_cli eval --trace ...
//     --trace-format jsonl` — the per-epoch utilization signal is lifted
//     out of the Epoch events and re-fed as demand, so a recorded run's
//     load shape can be replayed against any governor;
//   * external utilization traces (plain text, one `time util0 [util1
//     ...]` sample per line) captured on real devices or other
//     simulators.
//
// Both readers are hardened: malformed input raises a typed
// TraceParseError carrying the 1-based line number instead of UB or a
// crash. Rejected corruption classes: invalid JSON / unparseable fields,
// NaN/Inf values, truncated (half-written) lines, negative utilization,
// and out-of-order epochs or timestamps.

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace pmrl::workload {

/// Typed parse error for replay/fuzz scenario inputs. `line()` is the
/// 1-based input line the error was detected on (0 = whole stream).
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& message)
      : std::runtime_error(line > 0 ? "line " + std::to_string(line) + ": " +
                                          message
                                    : message),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One utilization sample: a point in simulated time plus the demand seen
/// on each DVFS domain (0..1 scale).
struct UtilSample {
  double time_s = 0.0;
  std::vector<double> util;
};

/// A utilization trace: samples at strictly increasing times, all with the
/// same domain count.
struct UtilTrace {
  std::vector<UtilSample> samples;

  std::size_t domain_count() const {
    return samples.empty() ? 0 : samples.front().util.size();
  }
  /// Timestamp of the last sample (the natural replay duration).
  double duration_s() const {
    return samples.empty() ? 0.0 : samples.back().time_s;
  }
};

/// Extracts the utilization trace from a structured JSONL run trace (the
/// `--trace-format jsonl` output): one sample per Epoch event, one column
/// per recorded cluster. Throws TraceParseError on malformed JSON,
/// truncated lines, NaN/Inf fields, inconsistent cluster counts, or
/// epochs whose index/time go backwards. Non-Epoch events are skipped.
UtilTrace util_trace_from_jsonl(std::istream& in);

/// Reads an external utilization trace: one `time_s util0 [util1 ...]`
/// sample per line, '#' comments and blank lines ignored. Values in
/// (1.5, 100] are treated as percentages and divided by 100 (the whole
/// trace is normalized if any sample exceeds 1.5). Throws TraceParseError
/// on unparseable fields, NaN/Inf, negative values, truncated rows,
/// inconsistent column counts, or non-increasing timestamps.
UtilTrace util_trace_from_text(std::istream& in);

/// How recorded utilization is turned back into jobs.
struct UtilReplayConfig {
  /// Job release period (s). One job per domain per period.
  double period_s = 0.020;
  /// Work cycles corresponding to utilization 1.0 for one second.
  double cycles_per_util_second = 2.0e9;
  /// Deadline = release + period * deadline_factor.
  double deadline_factor = 1.5;
  /// Samples below this utilization release no job (idle floor).
  double min_util = 1e-4;
};

/// Scenario re-creating the demand of a utilization trace: every period it
/// submits, per domain, one job sized to occupy that domain at the
/// recorded utilization (sample-and-hold between samples). Domain 0 maps
/// to PreferLittle, domain 1 to PreferBig, the rest to Any.
class UtilReplayScenario : public Scenario {
 public:
  explicit UtilReplayScenario(UtilTrace trace, UtilReplayConfig config = {},
                              std::string name = "replay");

  std::string name() const override { return name_; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

  const UtilTrace& trace() const { return trace_; }
  const UtilReplayConfig& config() const { return config_; }
  /// Jobs submitted so far.
  std::size_t submitted() const { return submitted_; }

 private:
  /// Utilization of `domain` at time t (sample-and-hold; 0 before the
  /// first sample and after the last).
  double util_at(double t, std::size_t domain) const;

  UtilTrace trace_;
  UtilReplayConfig config_;
  std::string name_;
  std::vector<soc::TaskId> tasks_;
  std::uint64_t release_index_ = 0;
  std::size_t cursor_ = 0;  // latest sample with time_s <= current release
  std::size_t submitted_ = 0;
};

}  // namespace pmrl::workload
