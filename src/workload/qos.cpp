#include "workload/qos.hpp"

#include <algorithm>

namespace pmrl::workload {

double job_quality(const soc::CompletedJob& job, double best_effort_credit) {
  if (!job.job.has_deadline()) return best_effort_credit;
  const double window = job.job.deadline_s - job.job.release_s;
  if (window <= 0.0) {
    return job.completion_s <= job.job.deadline_s ? 1.0 : 0.0;
  }
  const double tardiness = job.completion_s - job.job.deadline_s;
  if (tardiness <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - tardiness / window);
}

QosTracker::QosTracker(double best_effort_credit)
    : best_effort_credit_(best_effort_credit) {}

void QosTracker::on_release(const soc::Job& job) {
  ++released_;
  if (job.has_deadline()) {
    ++released_deadline_;
    outstanding_.emplace(job.id, job.deadline_s);
  }
}

void QosTracker::on_complete(const soc::CompletedJob& job) {
  ++completed_;
  const double quality = job_quality(job, best_effort_credit_);
  total_quality_ += quality;
  if (job.job.has_deadline()) {
    ++completed_deadline_;
    outstanding_.erase(job.job.id);
    latencies_.add(job.latency_s());
    const bool violated = !job.met_deadline();
    if (violated) ++violations_;
    if (job.cluster != static_cast<soc::ClusterId>(-1)) {
      if (job.cluster >= cluster_quality_.size()) {
        cluster_quality_.resize(job.cluster + 1, 0.0);
        cluster_completed_.resize(job.cluster + 1, 0);
        cluster_violations_.resize(job.cluster + 1, 0);
      }
      cluster_quality_[job.cluster] += quality;
      ++cluster_completed_[job.cluster];
      if (violated) ++cluster_violations_[job.cluster];
    }
  }
}

double QosTracker::cluster_deadline_quality(std::size_t cluster) const {
  return cluster < cluster_quality_.size() ? cluster_quality_[cluster] : 0.0;
}

std::size_t QosTracker::cluster_deadline_completed(std::size_t cluster) const {
  return cluster < cluster_completed_.size() ? cluster_completed_[cluster]
                                             : 0;
}

std::size_t QosTracker::cluster_violations(std::size_t cluster) const {
  return cluster < cluster_violations_.size() ? cluster_violations_[cluster]
                                              : 0;
}

void QosTracker::finalize(double now_s) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second < now_s) {
      ++violations_;
      ++condemned_;
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

double QosTracker::violation_rate() const {
  if (released_deadline_ == 0) return 0.0;
  return static_cast<double>(violations_) /
         static_cast<double>(released_deadline_);
}

double QosTracker::mean_quality() const {
  const std::size_t resolved = completed_deadline_ + condemned_;
  if (resolved == 0) return 1.0;
  // Quality sum excluding best-effort credits.
  const double be_credit =
      best_effort_credit_ *
      static_cast<double>(completed_ - completed_deadline_);
  return std::max(0.0, total_quality_ - be_credit) /
         static_cast<double>(resolved);
}

}  // namespace pmrl::workload
