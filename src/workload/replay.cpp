#include "workload/replay.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>

#include "obs/trace_event.hpp"

namespace pmrl::workload {

namespace {

bool blank_or_comment(const std::string& line) {
  for (const char ch : line) {
    if (ch == '#') return true;
    if (ch != ' ' && ch != '\t' && ch != '\r') return false;
  }
  return true;
}

/// Last non-whitespace character of `line` ('\0' when none).
char last_visible(const std::string& line) {
  for (auto it = line.rbegin(); it != line.rend(); ++it) {
    if (*it != ' ' && *it != '\t' && *it != '\r') return *it;
  }
  return '\0';
}

void require_finite(double value, const char* field, std::size_t line_no) {
  if (!std::isfinite(value)) {
    throw TraceParseError(line_no, std::string("non-finite ") + field);
  }
}

}  // namespace

UtilTrace util_trace_from_jsonl(std::istream& in) {
  UtilTrace trace;
  std::string line;
  std::size_t line_no = 0;
  bool seen_epoch = false;
  std::uint64_t last_epoch = 0;
  double last_time = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (blank_or_comment(line)) continue;
    // A half-written (truncated) record cannot end in '}'. Detect it
    // before parsing so the error names the corruption, not a JSON
    // subtlety.
    if (last_visible(line) != '}') {
      throw TraceParseError(line_no, "truncated record (no closing '}')");
    }
    obs::TraceEvent event;
    try {
      event = obs::trace_from_jsonl_line(line);
    } catch (const std::exception& e) {
      throw TraceParseError(line_no, e.what());
    }
    if (event.kind != obs::EventKind::Epoch) continue;
    require_finite(event.time_s, "time_s", line_no);
    if (seen_epoch) {
      if (event.epoch <= last_epoch) {
        std::ostringstream msg;
        msg << "out-of-order epoch " << event.epoch << " after "
            << last_epoch;
        throw TraceParseError(line_no, msg.str());
      }
      if (event.time_s < last_time) {
        throw TraceParseError(line_no, "epoch time went backwards");
      }
    }
    UtilSample sample;
    sample.time_s = event.time_s;
    for (const auto& cluster : event.clusters) {
      require_finite(cluster.util_avg, "cluster util", line_no);
      if (cluster.util_avg < 0.0) {
        throw TraceParseError(line_no, "negative cluster util");
      }
      sample.util.push_back(std::min(cluster.util_avg, 1.0));
    }
    if (sample.util.empty()) {
      throw TraceParseError(line_no, "epoch event has no cluster samples");
    }
    if (!trace.samples.empty() &&
        sample.util.size() != trace.domain_count()) {
      throw TraceParseError(line_no, "inconsistent cluster count");
    }
    seen_epoch = true;
    last_epoch = event.epoch;
    last_time = event.time_s;
    trace.samples.push_back(std::move(sample));
  }
  if (trace.samples.empty()) {
    throw TraceParseError(0, "trace contains no epoch events");
  }
  return trace;
}

UtilTrace util_trace_from_text(std::istream& in) {
  UtilTrace trace;
  std::string line;
  std::size_t line_no = 0;
  double peak = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (blank_or_comment(line)) continue;
    std::istringstream fields(line);
    UtilSample sample;
    std::string token;
    bool first = true;
    while (fields >> token) {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(token, &consumed);
      } catch (const std::exception&) {
        throw TraceParseError(line_no, "unparseable field '" + token + "'");
      }
      if (consumed != token.size()) {
        throw TraceParseError(line_no,
                              "trailing junk in field '" + token + "'");
      }
      if (!std::isfinite(value)) {
        throw TraceParseError(line_no, "non-finite value '" + token + "'");
      }
      if (first) {
        sample.time_s = value;
        first = false;
      } else {
        if (value < 0.0) {
          throw TraceParseError(line_no, "negative utilization");
        }
        peak = std::max(peak, value);
        sample.util.push_back(value);
      }
    }
    if (first) continue;  // whitespace-only line
    if (sample.util.empty()) {
      throw TraceParseError(line_no, "truncated sample (no util columns)");
    }
    if (!trace.samples.empty()) {
      if (sample.util.size() != trace.domain_count()) {
        throw TraceParseError(line_no, "inconsistent column count");
      }
      if (sample.time_s <= trace.samples.back().time_s) {
        throw TraceParseError(line_no, "non-increasing timestamp");
      }
    }
    trace.samples.push_back(std::move(sample));
  }
  if (trace.samples.empty()) {
    throw TraceParseError(0, "utilization trace is empty");
  }
  if (peak > 1.5) {
    // Percent-scale trace (0..100): normalize the whole trace.
    if (peak > 100.0) {
      throw TraceParseError(0, "utilization exceeds 100 (bad scale)");
    }
    for (auto& sample : trace.samples) {
      for (auto& value : sample.util) value /= 100.0;
    }
  } else {
    for (auto& sample : trace.samples) {
      for (auto& value : sample.util) value = std::min(value, 1.0);
    }
  }
  return trace;
}

UtilReplayScenario::UtilReplayScenario(UtilTrace trace,
                                       UtilReplayConfig config,
                                       std::string name)
    : trace_(std::move(trace)),
      config_(config),
      name_(std::move(name)) {
  if (config_.period_s <= 0.0) {
    throw std::invalid_argument("replay period must be positive");
  }
  if (trace_.samples.empty()) {
    throw std::invalid_argument("replay trace is empty");
  }
}

void UtilReplayScenario::setup(WorkloadHost& host) {
  tasks_.clear();
  release_index_ = 0;
  cursor_ = 0;
  submitted_ = 0;
  const std::size_t domains = trace_.domain_count();
  for (std::size_t d = 0; d < domains; ++d) {
    const soc::Affinity affinity = d == 0   ? soc::Affinity::PreferLittle
                                   : d == 1 ? soc::Affinity::PreferBig
                                            : soc::Affinity::Any;
    tasks_.push_back(
        host.create_task("replay_d" + std::to_string(d), affinity, 1.0));
  }
}

double UtilReplayScenario::util_at(double t, std::size_t domain) const {
  // cursor_ tracks the sample-and-hold position; callers only move
  // forward in time.
  if (trace_.samples[cursor_].time_s > t) return 0.0;
  return trace_.samples[cursor_].util[domain];
}

void UtilReplayScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  const double window_end = now_s + dt_s;
  while (true) {
    const double release =
        config_.period_s * static_cast<double>(release_index_);
    if (release >= window_end) break;
    if (release > trace_.duration_s()) break;  // trace exhausted
    while (cursor_ + 1 < trace_.samples.size() &&
           trace_.samples[cursor_ + 1].time_s <= release) {
      ++cursor_;
    }
    const double deadline =
        release + config_.period_s * config_.deadline_factor;
    for (std::size_t d = 0; d < tasks_.size(); ++d) {
      const double util = util_at(release, d);
      if (util < config_.min_util) continue;
      const double work =
          util * config_.cycles_per_util_second * config_.period_s;
      host.submit(tasks_[d], work, deadline);
      ++submitted_;
    }
    ++release_index_;
  }
}

}  // namespace pmrl::workload
