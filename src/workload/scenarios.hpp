#pragma once
// The concrete mobile user scenarios of the evaluation. Each stands in for
// one of the "diverse scenarios" the paper runs on the device: media
// playback, browsing, gaming, app launches, near-idle audio, and a mixed
// scenario that chains the others (the paper's point being that the policy
// must adapt across all of them without per-scenario tuning).

#include <memory>
#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/sources.hpp"

namespace pmrl::workload {

/// Scenario identifiers used by benches and the factory.
enum class ScenarioKind {
  VideoPlayback,
  WebBrowsing,
  Gaming,
  AppLaunch,
  AudioIdle,
  Mixed,
};

const char* scenario_kind_name(ScenarioKind kind);

/// All six evaluation scenarios, in reporting order.
std::vector<ScenarioKind> all_scenario_kinds();

/// Builds a scenario with its own RNG stream derived from `seed`; the same
/// (kind, seed) pair releases an identical job sequence, so every governor
/// is evaluated on the same workload.
std::unique_ptr<Scenario> make_scenario(ScenarioKind kind,
                                        std::uint64_t seed);

/// 30 fps video decode plus a 100 Hz audio pipeline. Decode work is
/// lognormal with I-frame spikes; fits on the LITTLE cluster at mid
/// frequency, so race-to-idle policies waste energy here.
class VideoPlaybackScenario : public Scenario {
 public:
  explicit VideoPlaybackScenario(std::uint64_t seed);
  std::string name() const override { return "video"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

 private:
  Rng rng_;
  std::optional<PeriodicSource> decode_;
  std::optional<PeriodicSource> audio_;
};

/// Bursty browsing: idle / page-load / scroll phases. Page loads fire a
/// parallel burst with a ~1.2 s render deadline; scrolling renders 60 fps
/// light frames; idle releases nothing.
class WebBrowsingScenario : public Scenario {
 public:
  explicit WebBrowsingScenario(std::uint64_t seed);
  std::string name() const override { return "web"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

 private:
  enum Phase : std::size_t { kIdle = 0, kLoad = 1, kScroll = 2 };
  Rng rng_;
  std::optional<PhaseMachine> phases_;
  std::optional<BurstSource> page_load_;
  std::optional<PeriodicSource> scroll_frames_;
  std::size_t last_phase_ = kIdle;
};

/// Sustained 60 fps game rendering with light/medium/heavy scene phases,
/// plus 120 Hz physics and audio. The heaviest scenario: needs the big
/// cluster near its top OPP during heavy scenes.
class GamingScenario : public Scenario {
 public:
  explicit GamingScenario(std::uint64_t seed);
  std::string name() const override { return "game"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

 private:
  Rng rng_;
  std::optional<PhaseMachine> scenes_;
  std::optional<PeriodicSource> render_;
  std::optional<PeriodicSource> physics_;
  std::optional<PeriodicSource> audio_;
  std::size_t applied_scene_ = static_cast<std::size_t>(-1);
};

/// Repeated cold app launches: a large parallel burst with a 2 s deadline,
/// a short 60 fps settle animation, then idle until the next launch.
class AppLaunchScenario : public Scenario {
 public:
  explicit AppLaunchScenario(std::uint64_t seed);
  std::string name() const override { return "applaunch"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

 private:
  Rng rng_;
  std::optional<BurstSource> launch_burst_;
  std::optional<PeriodicSource> settle_frames_;
  double next_launch_s_ = 0.5;
  double settle_until_s_ = -1.0;
};

/// Near-idle: 100 Hz audio with tight deadlines plus rare best-effort
/// background syncs. Exposes policies that cannot scale all the way down.
class AudioIdleScenario : public Scenario {
 public:
  explicit AudioIdleScenario(std::uint64_t seed);
  std::string name() const override { return "audioidle"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

 private:
  Rng rng_;
  std::optional<PeriodicSource> audio_;
  soc::TaskId sync_task_ = 0;
  double next_sync_s_ = 0.0;
};

/// Chains child scenarios, switching every 6-12 s. Inactive children keep
/// ticking against a job-dropping host so their timers stay current (the
/// app is "paused", not rewound).
class MixedScenario : public Scenario {
 public:
  explicit MixedScenario(std::uint64_t seed);
  std::string name() const override { return "mixed"; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

  /// Index into the child list of the currently active scenario.
  std::size_t active_child() const { return active_; }
  std::size_t child_count() const { return children_.size(); }

 private:
  Rng rng_;
  std::vector<std::unique_ptr<Scenario>> children_;
  std::size_t active_ = 0;
  double next_switch_s_ = 0.0;
};

}  // namespace pmrl::workload
