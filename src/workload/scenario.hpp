#pragma once
// Scenario abstraction: a scenario stands in for one of the paper's mobile
// user scenarios (video playback, web browsing, gaming, ...). It creates
// tasks on a host and releases jobs over time. Scenarios talk to the system
// only through the WorkloadHost interface so they can be unit-tested against
// a mock host and replayed identically across governors.

#include <memory>
#include <string>

#include "soc/task.hpp"
#include "soc/types.hpp"

namespace pmrl::workload {

/// Submission surface a scenario sees. Implemented by the simulation engine
/// (forwarding to the SoC and the QoS tracker) and by test mocks.
class WorkloadHost {
 public:
  virtual ~WorkloadHost() = default;

  /// Creates a schedulable task and returns its id.
  virtual soc::TaskId create_task(std::string name, soc::Affinity affinity,
                                  double weight) = 0;

  /// Releases a job into a task queue. The host stamps release time and a
  /// unique job id.
  virtual void submit(soc::TaskId task, double work_cycles,
                      double deadline_s) = 0;
};

/// A reproducible workload scenario.
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string name() const = 0;

  /// Creates this scenario's tasks. Called once before the first tick.
  virtual void setup(WorkloadHost& host) = 0;

  /// Releases the jobs for the tick window [now_s, now_s + dt_s).
  virtual void tick(WorkloadHost& host, double now_s, double dt_s) = 0;
};

}  // namespace pmrl::workload
