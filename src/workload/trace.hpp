#pragma once
// Workload trace record & replay. A recorded trace captures the exact job
// stream a scenario produced (task definitions + timed submissions) so a run
// can be replayed bit-identically — across governors, across machines, or
// from a trace file captured elsewhere.

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace pmrl::workload {

/// One recorded task definition.
struct TraceTask {
  std::string name;
  soc::Affinity affinity = soc::Affinity::Any;
  double weight = 1.0;
};

/// One recorded job submission (deadline is absolute; < 0 = best effort).
struct TraceJob {
  double time_s = 0.0;
  std::size_t task_index = 0;
  double work_cycles = 0.0;
  double deadline_s = -1.0;
};

/// In-memory trace.
struct Trace {
  std::vector<TraceTask> tasks;
  std::vector<TraceJob> jobs;  // sorted by time_s

  /// Serializes to CSV ("task"/"job" tagged rows).
  void save(std::ostream& out) const;
  /// Parses a CSV produced by save(); throws std::runtime_error on format
  /// errors.
  static Trace load(std::istream& in);
};

/// WorkloadHost decorator that records everything passing through it while
/// forwarding to the real host. The driver must call set_now() each tick so
/// submissions are timestamped.
class TraceRecorder : public WorkloadHost {
 public:
  explicit TraceRecorder(WorkloadHost& inner) : inner_(&inner) {}

  void set_now(double now_s) { now_s_ = now_s; }

  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override;
  void submit(soc::TaskId task, double work_cycles,
              double deadline_s) override;

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }

 private:
  WorkloadHost* inner_;
  Trace trace_;
  double now_s_ = 0.0;
  /// Maps inner task ids to trace task indices.
  std::vector<soc::TaskId> inner_ids_;
};

/// Scenario that replays a recorded trace.
class TraceScenario : public Scenario {
 public:
  explicit TraceScenario(Trace trace, std::string name = "trace");

  std::string name() const override { return name_; }
  void setup(WorkloadHost& host) override;
  void tick(WorkloadHost& host, double now_s, double dt_s) override;

  /// Jobs replayed so far.
  std::size_t cursor() const { return cursor_; }

 private:
  Trace trace_;
  std::string name_;
  std::vector<soc::TaskId> host_ids_;
  std::size_t cursor_ = 0;
};

}  // namespace pmrl::workload
