#pragma once
// Quality-of-service accounting. QoS follows the paper's framing: each job
// (frame, page render, launch, audio buffer) delivers up to one unit of
// quality, degraded linearly by tardiness relative to its deadline window.
// "Energy per unit QoS" — the paper's headline metric — is then
// total energy / total delivered quality.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "soc/task.hpp"
#include "util/stats.hpp"

namespace pmrl::workload {

/// Per-job quality in [0, 1]: 1.0 if the deadline is met, then linearly
/// decaying with tardiness over one deadline window, 0 beyond. Best-effort
/// jobs (no deadline) score a fixed small credit so pure-throughput work
/// still counts toward QoS without dominating it.
double job_quality(const soc::CompletedJob& job,
                   double best_effort_credit = 0.25);

/// Streaming QoS bookkeeping across a simulation run.
class QosTracker {
 public:
  explicit QosTracker(double best_effort_credit = 0.25);

  /// Records a released job (called at submission time).
  void on_release(const soc::Job& job);

  /// Records a completion and scores it.
  void on_complete(const soc::CompletedJob& job);

  /// Marks end-of-run: jobs released with a deadline but never completed
  /// count as zero-quality violations. `now_s` is the final sim time; only
  /// jobs whose deadline has already passed are condemned.
  void finalize(double now_s);

  /// Sum of delivered quality units.
  double total_quality() const { return total_quality_; }
  /// Deadline jobs that missed (tardiness > 0), including never-completed.
  std::size_t violations() const { return violations_; }
  std::size_t released() const { return released_; }
  std::size_t released_with_deadline() const { return released_deadline_; }
  std::size_t completed() const { return completed_; }

  /// Violation ratio among deadline jobs (0 when none released).
  double violation_rate() const;
  /// Mean quality over deadline jobs that have resolved (completed or
  /// condemned).
  double mean_quality() const;

  /// Latency distribution of completed deadline jobs (seconds).
  const SampleSet& latencies() const { return latencies_; }

  // ---- Per-cluster attribution (deadline jobs only) ------------------------
  // Completed jobs are credited to the cluster whose core finished them,
  // enabling per-DVFS-domain reward feedback. Cumulative counters; callers
  // take epoch deltas.
  double cluster_deadline_quality(std::size_t cluster) const;
  std::size_t cluster_deadline_completed(std::size_t cluster) const;
  std::size_t cluster_violations(std::size_t cluster) const;

 private:
  double best_effort_credit_;
  double total_quality_ = 0.0;
  std::size_t released_ = 0;
  std::size_t released_deadline_ = 0;
  std::size_t completed_ = 0;
  std::size_t completed_deadline_ = 0;
  std::size_t violations_ = 0;
  std::size_t condemned_ = 0;
  SampleSet latencies_;
  /// Outstanding deadline jobs: id -> absolute deadline.
  std::unordered_map<soc::JobId, double> outstanding_;
  // Per-cluster cumulative attribution (index = cluster id; grown lazily).
  std::vector<double> cluster_quality_;
  std::vector<std::size_t> cluster_completed_;
  std::vector<std::size_t> cluster_violations_;
};

}  // namespace pmrl::workload
