#include "workload/sources.hpp"

#include <cmath>
#include <stdexcept>

namespace pmrl::workload {

double WorkDistribution::sample(Rng& rng) const {
  if (mean_cycles <= 0.0) {
    throw std::invalid_argument("work mean must be positive");
  }
  // Lognormal parameterized so that E[X] = mean_cycles and CV = cv.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean_cycles) - 0.5 * sigma2;
  double work = rng.lognormal(mu, std::sqrt(sigma2));
  if (spike_probability > 0.0 && rng.bernoulli(spike_probability)) {
    work *= spike_factor;
  }
  return std::max(work, 1.0);
}

PeriodicSource::PeriodicSource(soc::TaskId task, double period_s,
                               WorkDistribution work, double deadline_factor,
                               double phase_s)
    : task_(task),
      period_s_(period_s),
      work_(work),
      deadline_factor_(deadline_factor),
      phase_s_(phase_s) {
  if (period_s <= 0.0) throw std::invalid_argument("period must be positive");
  next_release_s_ = release_time(release_index_);
}

void PeriodicSource::tick(WorkloadHost& host, double now_s, double dt_s,
                          Rng& rng) {
  const double window_end = now_s + dt_s;
  while (next_release_s_ < window_end) {
    if (active_) {
      const double deadline = next_release_s_ + period_s_ * deadline_factor_;
      host.submit(task_, work_.sample(rng), deadline);
    }
    ++release_index_;
    next_release_s_ = release_time(release_index_);
  }
}

BurstSource::BurstSource(std::vector<soc::TaskId> tasks, WorkDistribution work,
                         std::size_t job_count, double deadline_s)
    : tasks_(std::move(tasks)),
      work_(work),
      job_count_(job_count),
      deadline_s_(deadline_s) {
  if (tasks_.empty()) throw std::invalid_argument("burst needs tasks");
  if (job_count_ == 0) throw std::invalid_argument("burst needs jobs");
}

void BurstSource::fire(WorkloadHost& host, double now_s, Rng& rng) {
  for (std::size_t i = 0; i < job_count_; ++i) {
    host.submit(tasks_[i % tasks_.size()], work_.sample(rng),
                now_s + deadline_s_);
  }
}

PhaseMachine::PhaseMachine(std::vector<Phase> phases,
                           std::vector<std::vector<double>> transition,
                           Rng rng, std::size_t initial_phase)
    : phases_(std::move(phases)),
      transition_(std::move(transition)),
      rng_(rng),
      current_(initial_phase) {
  if (phases_.empty()) throw std::invalid_argument("phase machine empty");
  if (transition_.size() != phases_.size()) {
    throw std::invalid_argument("transition matrix row count mismatch");
  }
  for (const auto& row : transition_) {
    if (row.size() != phases_.size()) {
      throw std::invalid_argument("transition matrix column count mismatch");
    }
  }
  if (current_ >= phases_.size()) {
    throw std::invalid_argument("initial phase out of range");
  }
}

void PhaseMachine::schedule_next(double now_s) {
  const double dwell =
      rng_.exponential(1.0 / phases_[current_].mean_dwell_s);
  next_change_s_ = now_s + dwell;
  scheduled_ = true;
}

bool PhaseMachine::tick(double now_s, double dt_s) {
  if (!scheduled_) schedule_next(now_s);
  bool changed = false;
  const double window_end = now_s + dt_s;
  while (next_change_s_ < window_end) {
    current_ = rng_.weighted_choice(transition_[current_]);
    changed = true;
    schedule_next(next_change_s_);
  }
  return changed;
}

}  // namespace pmrl::workload
