#include "workload/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace pmrl::workload {

namespace {

constexpr const char* kHeader = "pmrl-scenario v1";

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

const char* source_kind_name(FuzzSource::Kind kind) {
  return kind == FuzzSource::Kind::Periodic ? "periodic" : "burst";
}

FuzzSource::Kind source_kind_from(const std::string& name,
                                  std::size_t line_no) {
  if (name == "periodic") return FuzzSource::Kind::Periodic;
  if (name == "burst") return FuzzSource::Kind::Burst;
  throw TraceParseError(line_no, "unknown source kind '" + name + "'");
}

soc::Affinity affinity_from(const std::string& name, std::size_t line_no) {
  if (name == "any") return soc::Affinity::Any;
  if (name == "little") return soc::Affinity::PreferLittle;
  if (name == "big") return soc::Affinity::PreferBig;
  throw TraceParseError(line_no, "unknown affinity '" + name + "'");
}

double parse_double(const std::string& token, const char* field,
                    std::size_t line_no) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw TraceParseError(line_no, std::string("unparseable ") + field +
                                       " '" + token + "'");
  }
  if (consumed != token.size()) {
    throw TraceParseError(line_no, std::string("trailing junk in ") + field +
                                       " '" + token + "'");
  }
  if (!std::isfinite(value)) {
    throw TraceParseError(line_no, std::string("non-finite ") + field);
  }
  return value;
}

double parse_positive(const std::string& token, const char* field,
                      std::size_t line_no) {
  const double value = parse_double(token, field, line_no);
  if (value <= 0.0) {
    throw TraceParseError(line_no,
                          std::string(field) + " must be positive");
  }
  return value;
}

double parse_probability(const std::string& token, const char* field,
                         std::size_t line_no) {
  const double value = parse_double(token, field, line_no);
  if (value < 0.0 || value > 1.0) {
    throw TraceParseError(line_no,
                          std::string(field) + " must be in [0, 1]");
  }
  return value;
}

// Burst counts beyond this are corrupt files, not scenarios: the generator
// tops out at 16, and replay submits burst_jobs host jobs per period.
constexpr std::uint64_t kMaxBurstJobs = 100000;

std::uint64_t parse_uint(const std::string& token, const char* field,
                         std::size_t line_no) {
  // stoull accepts a leading '-' (wrapping) and '+'/whitespace; require a
  // digit up front so those are rejected outright.
  if (token.empty() ||
      !std::isdigit(static_cast<unsigned char>(token[0]))) {
    throw TraceParseError(line_no, std::string("unparseable ") + field +
                                       " '" + token + "'");
  }
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception&) {
    throw TraceParseError(line_no, std::string("unparseable ") + field +
                                       " '" + token + "'");
  }
  if (consumed != token.size()) {
    throw TraceParseError(line_no, std::string("trailing junk in ") + field +
                                       " '" + token + "'");
  }
  return value;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string token;
  while (in >> token) fields.push_back(token);
  return fields;
}

}  // namespace

double FuzzSpec::total_duration_s() const {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.duration_s;
  return total;
}

std::size_t FuzzSpec::source_count() const {
  std::size_t count = 0;
  for (const auto& phase : phases) count += phase.sources.size();
  return count;
}

void FuzzSpec::save(std::ostream& out,
                    const std::vector<std::string>& comments) const {
  out << kHeader << "\n";
  for (const auto& comment : comments) out << "# " << comment << "\n";
  out << "name " << name << "\n";
  out << "seed " << seed << "\n";
  out << "stress " << fmt(stress.telemetry_noise_sigma) << " "
      << fmt(stress.telemetry_dropout_rate) << " "
      << fmt(stress.telemetry_stuck_rate) << " "
      << fmt(stress.thermal_event_rate) << " "
      << fmt(stress.thermal_max_delta_c) << "\n";
  // Optional line: specs without a budget arm round-trip through the
  // original v1 grammar unchanged.
  if (stress.budget_cap_w > 0.0) {
    out << "capsched " << fmt(stress.budget_cap_w) << " "
        << fmt(stress.budget_step_cap_w) << " "
        << fmt(stress.budget_step_frac) << "\n";
  }
  for (const auto& phase : phases) {
    out << "phase " << fmt(phase.duration_s) << "\n";
    for (const auto& source : phase.sources) {
      out << "source " << source_kind_name(source.kind) << " "
          << soc::affinity_name(source.affinity) << " "
          << fmt(source.period_s) << " " << fmt(source.work_mean_cycles)
          << " " << fmt(source.work_cv) << " "
          << fmt(source.spike_probability) << " "
          << fmt(source.spike_factor) << " "
          << fmt(source.deadline_factor) << " " << fmt(source.deadline_s)
          << " " << source.burst_jobs << "\n";
    }
  }
}

FuzzSpec FuzzSpec::load(std::istream& in) {
  FuzzSpec spec;
  spec.phases.clear();
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto fields = split_fields(line);
    if (fields.empty() || fields[0][0] == '#') continue;
    if (!saw_header) {
      // Exact match (modulo surrounding whitespace): a prefix check would
      // accept e.g. "pmrl-scenario v12" and misparse a future format.
      if (fields.size() != 2 || fields[0] + " " + fields[1] != kHeader) {
        throw TraceParseError(line_no, "missing '" + std::string(kHeader) +
                                           "' header");
      }
      saw_header = true;
      continue;
    }
    const std::string& tag = fields[0];
    if (tag == "name") {
      if (fields.size() != 2) {
        throw TraceParseError(line_no, "name needs exactly one value");
      }
      spec.name = fields[1];
    } else if (tag == "seed") {
      if (fields.size() != 2) {
        throw TraceParseError(line_no, "seed needs exactly one value");
      }
      spec.seed = parse_uint(fields[1], "seed", line_no);
    } else if (tag == "stress") {
      if (fields.size() != 6) {
        throw TraceParseError(line_no, "stress needs 5 values");
      }
      spec.stress.telemetry_noise_sigma =
          parse_double(fields[1], "noise sigma", line_no);
      spec.stress.telemetry_dropout_rate =
          parse_probability(fields[2], "dropout rate", line_no);
      spec.stress.telemetry_stuck_rate =
          parse_probability(fields[3], "stuck rate", line_no);
      spec.stress.thermal_event_rate =
          parse_probability(fields[4], "thermal rate", line_no);
      spec.stress.thermal_max_delta_c =
          parse_double(fields[5], "thermal delta", line_no);
      if (spec.stress.telemetry_noise_sigma < 0.0 ||
          spec.stress.thermal_max_delta_c < 0.0) {
        throw TraceParseError(line_no, "stress values must be >= 0");
      }
    } else if (tag == "capsched") {
      if (fields.size() != 4) {
        throw TraceParseError(line_no, "capsched needs 3 values");
      }
      spec.stress.budget_cap_w =
          parse_positive(fields[1], "budget cap", line_no);
      spec.stress.budget_step_cap_w =
          parse_double(fields[2], "budget step cap", line_no);
      if (spec.stress.budget_step_cap_w < 0.0) {
        throw TraceParseError(line_no, "budget step cap must be >= 0");
      }
      spec.stress.budget_step_frac =
          parse_probability(fields[3], "budget step fraction", line_no);
    } else if (tag == "phase") {
      if (fields.size() != 2) {
        throw TraceParseError(line_no, "phase needs a duration");
      }
      FuzzPhase phase;
      phase.duration_s = parse_positive(fields[1], "duration", line_no);
      spec.phases.push_back(std::move(phase));
    } else if (tag == "source") {
      if (spec.phases.empty()) {
        throw TraceParseError(line_no, "source before any phase");
      }
      if (fields.size() != 11) {
        throw TraceParseError(line_no,
                              "source needs 10 values (truncated row?)");
      }
      FuzzSource source;
      source.kind = source_kind_from(fields[1], line_no);
      source.affinity = affinity_from(fields[2], line_no);
      source.period_s = parse_positive(fields[3], "period", line_no);
      source.work_mean_cycles =
          parse_positive(fields[4], "work mean", line_no);
      source.work_cv = parse_double(fields[5], "work cv", line_no);
      if (source.work_cv < 0.0) {
        throw TraceParseError(line_no, "work cv must be >= 0");
      }
      source.spike_probability =
          parse_probability(fields[6], "spike probability", line_no);
      source.spike_factor =
          parse_positive(fields[7], "spike factor", line_no);
      source.deadline_factor =
          parse_positive(fields[8], "deadline factor", line_no);
      source.deadline_s = parse_positive(fields[9], "deadline", line_no);
      const std::uint64_t burst =
          parse_uint(fields[10], "burst jobs", line_no);
      if (burst == 0 || burst > kMaxBurstJobs) {
        throw TraceParseError(line_no, "burst jobs must be in [1, " +
                                           std::to_string(kMaxBurstJobs) +
                                           "]");
      }
      source.burst_jobs = static_cast<std::size_t>(burst);
      spec.phases.back().sources.push_back(source);
    } else {
      throw TraceParseError(line_no, "unknown tag '" + tag + "'");
    }
  }
  if (!saw_header) throw TraceParseError(0, "empty scenario file");
  if (spec.phases.empty()) {
    throw TraceParseError(0, "scenario has no phases");
  }
  return spec;
}

FuzzSpec generate_fuzz_spec(std::uint64_t seed) {
  // Generation draws from its own stream; job sampling at run time uses
  // the spec's seed. Mixing in a constant keeps the two streams unrelated.
  Rng rng(seed ^ 0xF0221E57A5C3B19DULL);
  FuzzSpec spec;
  spec.seed = seed;
  spec.name = "fuzz-" + std::to_string(seed);

  const std::size_t phase_count =
      static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t p = 0; p < phase_count; ++p) {
    FuzzPhase phase;
    phase.duration_s = rng.uniform(0.5, 3.0);
    const std::size_t source_count =
        static_cast<std::size_t>(rng.uniform_int(0, 3));
    for (std::size_t s = 0; s < source_count; ++s) {
      FuzzSource source;
      source.kind = rng.uniform() < 0.7 ? FuzzSource::Kind::Periodic
                                        : FuzzSource::Kind::Burst;
      const auto affinity_draw = rng.uniform_int(0, 2);
      source.affinity = affinity_draw == 0   ? soc::Affinity::Any
                        : affinity_draw == 1 ? soc::Affinity::PreferLittle
                                             : soc::Affinity::PreferBig;
      source.work_cv = rng.uniform(0.0, 0.6);
      if (rng.uniform() < 0.3) {
        source.spike_probability = rng.uniform(0.02, 0.15);
        source.spike_factor = rng.uniform(1.5, 4.0);
      }
      if (source.kind == FuzzSource::Kind::Periodic) {
        // Log-uniform period: 4 ms (240 Hz physics) .. 100 ms (10 Hz UI).
        source.period_s = std::exp(rng.uniform(std::log(0.004),
                                               std::log(0.100)));
        source.work_mean_cycles = std::exp(
            rng.uniform(std::log(2e5), std::log(2e7)));
        source.deadline_factor = rng.uniform(0.8, 2.0);
      } else {
        source.period_s = rng.uniform(0.2, 1.5);
        source.work_mean_cycles = std::exp(
            rng.uniform(std::log(5e6), std::log(5e7)));
        source.deadline_s = rng.uniform(0.1, 1.0);
        source.burst_jobs =
            static_cast<std::size_t>(rng.uniform_int(2, 16));
      }
      phase.sources.push_back(source);
    }
    spec.phases.push_back(std::move(phase));
  }

  if (rng.uniform() < 0.5) {
    if (rng.uniform() < 0.5) {
      spec.stress.telemetry_noise_sigma = rng.uniform(0.02, 0.15);
    }
    if (rng.uniform() < 0.4) {
      spec.stress.telemetry_dropout_rate = rng.uniform(0.01, 0.08);
    }
    if (rng.uniform() < 0.3) {
      spec.stress.telemetry_stuck_rate = rng.uniform(0.005, 0.03);
    }
    if (rng.uniform() < 0.4) {
      spec.stress.thermal_event_rate = rng.uniform(0.005, 0.04);
      spec.stress.thermal_max_delta_c = rng.uniform(10.0, 35.0);
    }
  }

  // Budget arm (appended after every pre-existing draw so older seeds keep
  // generating byte-identical specs). Per-device watts: the initial cap is
  // unconstraining, the step cap lands above the fleet's pinned-OPP floor
  // (~0.6 W/device) so the driver's settle invariant is achievable.
  if (rng.uniform() < 0.25) {
    spec.stress.budget_cap_w = rng.uniform(4.0, 8.0);
    if (rng.uniform() < 0.7) {
      spec.stress.budget_step_cap_w = rng.uniform(0.7, 1.5);
      spec.stress.budget_step_frac = rng.uniform(0.3, 0.7);
    }
  }
  return spec;
}

FuzzScenario::FuzzScenario(FuzzSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  if (spec_.phases.empty()) {
    throw std::invalid_argument("fuzz spec has no phases");
  }
}

void FuzzScenario::setup(WorkloadHost& host) {
  sources_.clear();
  rng_ = Rng(spec_.seed);
  double phase_start = 0.0;
  for (std::size_t p = 0; p < spec_.phases.size(); ++p) {
    const FuzzPhase& phase = spec_.phases[p];
    const double phase_end = phase_start + phase.duration_s;
    for (std::size_t s = 0; s < phase.sources.size(); ++s) {
      const FuzzSource& source = phase.sources[s];
      ActiveSource active;
      active.source = &source;
      active.task = host.create_task(
          "p" + std::to_string(p) + "s" + std::to_string(s),
          source.affinity, 1.0);
      active.phase_start_s = phase_start;
      active.phase_end_s = phase_end;
      active.next_fire_s = phase_start;
      sources_.push_back(active);
    }
    phase_start = phase_end;
  }
}

void FuzzScenario::tick(WorkloadHost& host, double now_s, double dt_s) {
  const double window_end = now_s + dt_s;
  for (ActiveSource& active : sources_) {
    const FuzzSource& src = *active.source;
    // Releases are clipped to the source's phase window; the iteration
    // order over sources_ is fixed, so the shared RNG stream's draw order
    // (and therefore the job stream) is deterministic.
    const double end = std::min(window_end, active.phase_end_s);
    if (src.kind == FuzzSource::Kind::Periodic) {
      WorkDistribution work;
      work.mean_cycles = src.work_mean_cycles;
      work.cv = src.work_cv;
      work.spike_probability = src.spike_probability;
      work.spike_factor = src.spike_factor;
      while (true) {
        const double release =
            active.phase_start_s +
            src.period_s * static_cast<double>(active.release_index);
        if (release >= end) break;
        if (release >= now_s) {
          const double deadline =
              release + src.period_s * src.deadline_factor;
          host.submit(active.task, work.sample(rng_), deadline);
        }
        ++active.release_index;
      }
    } else {
      WorkDistribution work;
      work.mean_cycles = src.work_mean_cycles;
      work.cv = src.work_cv;
      work.spike_probability = src.spike_probability;
      work.spike_factor = src.spike_factor;
      while (active.next_fire_s < end) {
        if (active.next_fire_s >= now_s) {
          for (std::size_t j = 0; j < src.burst_jobs; ++j) {
            host.submit(active.task, work.sample(rng_),
                        active.next_fire_s + src.deadline_s);
          }
        }
        active.next_fire_s += src.period_s;
      }
    }
  }
}

}  // namespace pmrl::workload
