#pragma once
// 16-bit Fibonacci LFSR (taps 16,15,13,4 — maximal length). This is the
// pseudo-random source a small FPGA datapath would actually use for
// epsilon-greedy exploration; the software fixed-point agent uses the same
// generator so hardware and software decide identically bit for bit.

#include <cstdint>

namespace pmrl {

/// Maximal-length 16-bit LFSR. Period 65535; never emits 0 from a non-zero
/// seed (a zero seed is remapped to 0xACE1).
class Lfsr16 {
 public:
  explicit constexpr Lfsr16(std::uint16_t seed = 0xACE1u)
      : state_(seed == 0 ? 0xACE1u : seed) {}

  /// Advances one step and returns the new 16-bit state.
  constexpr std::uint16_t next() {
    const std::uint16_t bit = static_cast<std::uint16_t>(
        ((state_ >> 0) ^ (state_ >> 2) ^ (state_ >> 3) ^ (state_ >> 5)) & 1u);
    state_ = static_cast<std::uint16_t>((state_ >> 1) | (bit << 15));
    return state_;
  }

  constexpr std::uint16_t state() const { return state_; }

  /// Draws a value in [0, n) by modulo reduction (n <= 65535). The small
  /// modulo bias is part of the hardware's behaviour and is reproduced
  /// deliberately.
  constexpr std::uint32_t next_mod(std::uint32_t n) {
    return n == 0 ? 0 : next() % n;
  }

  /// True with probability threshold/65536 — the hardware comparator used
  /// for the epsilon test.
  constexpr bool below(std::uint32_t threshold) {
    return next() < threshold;
  }

 private:
  std::uint16_t state_;
};

}  // namespace pmrl
