#pragma once
// CRC-32 integrity framing shared by every persisted/transmitted artifact.
// Two shapes use the same checksum conventions (util/crc32.hpp):
//
//  * text artifacts (policy checkpoints, rl/policy_io): a trailing
//    "crc32,<8 lowercase hex digits>" footer line covering every byte
//    above it;
//  * binary frames (the serve wire protocol): a fixed 16-byte header and
//    payload with an embedded CRC-32.
//
// Binary frame layout (explicit little-endian, so a frame is identical
// across hosts):
//
//   offset  size  field
//   0       4     magic "PMRF"
//   4       1     version (kFrameVersion)
//   5       1     type (application-defined message kind)
//   6       2     flags (application-defined, u16)
//   8       4     payload length (u32, <= kMaxFramePayload)
//   12      4     CRC-32 over bytes 4..11 and the payload
//   16      n     payload
//
// The CRC covers everything after the magic (version, type, flags, length,
// payload), so a flipped bit anywhere but the magic itself is detected;
// a corrupted magic fails the magic check first.

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/crc32.hpp"

namespace pmrl::util {

// ---- text footer ---------------------------------------------------------

inline constexpr std::string_view kCrcFooterTag = "crc32";

/// The footer line (newline included) for a payload whose one-shot CRC-32
/// digest is `digest`: "crc32,xxxxxxxx\n".
inline std::string crc32_footer_line(std::uint32_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%s,%08x\n", kCrcFooterTag.data(), digest);
  return buf;
}

/// Parses a footer line (without its newline) produced by
/// crc32_footer_line; returns false when the tag or hex field is malformed.
inline bool parse_crc32_footer_line(std::string_view line,
                                    std::uint32_t& digest) {
  const std::size_t tag_len = kCrcFooterTag.size();
  if (line.size() != tag_len + 1 + 8) return false;
  if (line.substr(0, tag_len) != kCrcFooterTag || line[tag_len] != ',')
    return false;
  std::uint32_t value = 0;
  for (std::size_t i = tag_len + 1; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t nibble;
    if (c >= '0' && c <= '9') nibble = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F')
      nibble = static_cast<std::uint32_t>(c - 'A') + 10;
    else
      return false;
    value = (value << 4) | nibble;
  }
  digest = value;
  return true;
}

// ---- binary frames -------------------------------------------------------

inline constexpr std::array<char, 4> kFrameMagic = {'P', 'M', 'R', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Upper bound on a frame payload; a peer announcing more is corrupt or
/// hostile, and is rejected before any allocation.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

enum class FrameStatus {
  Ok,          ///< one complete, validated frame decoded
  NeedMore,    ///< buffer ends mid-header or mid-payload; read more bytes
  BadMagic,    ///< first four bytes are not "PMRF"
  BadVersion,  ///< unrecognized frame version
  BadLength,   ///< announced payload length exceeds kMaxFramePayload
  BadCrc,      ///< checksum mismatch (bit-flip in header fields or payload)
};

inline const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::NeedMore: return "need more";
    case FrameStatus::BadMagic: return "bad magic";
    case FrameStatus::BadVersion: return "bad version";
    case FrameStatus::BadLength: return "bad length";
    case FrameStatus::BadCrc: return "bad crc";
  }
  return "unknown";
}

/// One decoded frame.
struct Frame {
  std::uint8_t version = kFrameVersion;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::string payload;
};

namespace framing_detail {
inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}
inline std::uint16_t get_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}
inline std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}
}  // namespace framing_detail

/// Appends one encoded frame to `out`. The payload must not exceed
/// kMaxFramePayload (the wire layer's messages are all tiny; a decoder
/// rejects anything larger before allocating).
inline void append_frame(std::string& out, std::uint8_t type,
                         std::uint16_t flags, std::string_view payload) {
  using namespace framing_detail;
  out.append(kFrameMagic.data(), kFrameMagic.size());
  const std::size_t covered_begin = out.size();
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  put_u16(out, flags);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = crc32_update(kCrc32Init, out.data() + covered_begin, 8);
  crc = crc32_update(crc, payload.data(), payload.size());
  put_u32(out, crc32_final(crc));
  out.append(payload);
}

/// Attempts to decode one frame from `buffer` starting at `offset`. On Ok
/// the frame is filled and `offset` advances past it; on NeedMore nothing
/// changes (append more bytes and retry); on any error `offset` is left at
/// the bad frame (callers typically drop the connection).
inline FrameStatus decode_frame(std::string_view buffer, std::size_t& offset,
                                Frame& frame) {
  using namespace framing_detail;
  const std::size_t avail = buffer.size() - offset;
  if (avail < kFrameHeaderSize) return FrameStatus::NeedMore;
  const char* p = buffer.data() + offset;
  if (std::string_view(p, 4) !=
      std::string_view(kFrameMagic.data(), kFrameMagic.size())) {
    return FrameStatus::BadMagic;
  }
  const auto version = static_cast<std::uint8_t>(p[4]);
  if (version != kFrameVersion) return FrameStatus::BadVersion;
  const std::uint32_t payload_len = get_u32(p + 8);
  if (payload_len > kMaxFramePayload) return FrameStatus::BadLength;
  if (avail < kFrameHeaderSize + payload_len) return FrameStatus::NeedMore;
  const std::uint32_t stored = get_u32(p + 12);
  std::uint32_t crc = crc32_update(kCrc32Init, p + 4, 8);
  crc = crc32_update(crc, p + kFrameHeaderSize, payload_len);
  if (crc32_final(crc) != stored) return FrameStatus::BadCrc;
  frame.version = version;
  frame.type = static_cast<std::uint8_t>(p[5]);
  frame.flags = get_u16(p + 6);
  frame.payload.assign(p + kFrameHeaderSize, payload_len);
  offset += kFrameHeaderSize + payload_len;
  return FrameStatus::Ok;
}

}  // namespace pmrl::util
