#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmrl {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
}

void Histogram::add(double x) {
  const double scaled = (x - lo_) / (hi_ - lo_) * static_cast<double>(bins());
  std::size_t idx = 0;
  if (scaled >= static_cast<double>(bins())) {
    idx = bins() - 1;
  } else if (scaled > 0.0) {
    idx = static_cast<std::size_t>(scaled);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("Ewma alpha must be in (0, 1]");
  }
}

void Ewma::add(double x) {
  if (empty_) {
    value_ = x;
    empty_ = false;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  empty_ = true;
}

double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

}  // namespace pmrl
