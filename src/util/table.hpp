#pragma once
// ASCII table rendering for bench output. Every reproduction bench prints
// its paper table/figure series through this, so the rows the paper reports
// appear in a uniform format.

#include <string>
#include <vector>

namespace pmrl {

/// Column-aligned ASCII table. Column widths auto-fit content; numeric
/// convenience setters format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a fully-formatted row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given number of decimals.
  static std::string num(double v, int decimals = 3);
  /// Formats a percentage (value 0.37 -> "37.00%").
  static std::string percent(double fraction, int decimals = 2);

  /// Renders the table with a separator under the header.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmrl
