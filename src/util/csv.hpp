#pragma once
// Minimal CSV reading/writing for trace record & replay and for exporting
// bench results. Handles quoting of fields that contain commas, quotes or
// newlines; no external dependencies.

#include <iosfwd>
#include <string>
#include <vector>

namespace pmrl {

/// Writes rows to any std::ostream. The header (if given) is emitted on the
/// first row write.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out);
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one row; throws std::invalid_argument if a header was set and
  /// the row width does not match it.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with %.9g.
  void write_row_values(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

  /// Quotes a single field per RFC 4180 when needed.
  static std::string escape(const std::string& field);

 private:
  void maybe_write_header();
  std::ostream& out_;
  std::vector<std::string> header_;
  bool header_pending_;
  std::size_t rows_ = 0;
};

/// Fully parses a CSV document from a stream or string. Small traces only —
/// everything is held in memory.
class CsvReader {
 public:
  /// Parses the whole stream; throws std::runtime_error on malformed quoting.
  static std::vector<std::vector<std::string>> parse(std::istream& in);
  static std::vector<std::vector<std::string>> parse_string(
      const std::string& text);
};

}  // namespace pmrl
