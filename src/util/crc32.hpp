#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// footers on persisted artifacts (policy checkpoints). Header-only and
// constexpr-table based; incremental use follows the usual convention:
//
//   std::uint32_t crc = kCrc32Init;
//   crc = crc32_update(crc, data, len);
//   ... more updates ...
//   std::uint32_t digest = crc32_final(crc);

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pmrl {

inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// Folds `len` bytes into a running CRC state (seed with kCrc32Init).
inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state = detail::kCrc32Table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

inline std::uint32_t crc32_update(std::uint32_t state,
                                  std::string_view text) {
  return crc32_update(state, text.data(), text.size());
}

/// Final-xor step producing the conventional digest.
inline constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte string.
inline std::uint32_t crc32(std::string_view text) {
  return crc32_final(crc32_update(kCrc32Init, text));
}

}  // namespace pmrl
