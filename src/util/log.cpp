#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pmrl {
namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_write_mutex;
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(); }

bool Log::enabled(LogLevel level) {
  return level >= g_level.load() && level != LogLevel::Off;
}

void Log::write(LogLevel level, const std::string& component,
                const std::string& message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace pmrl
