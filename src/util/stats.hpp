#pragma once
// Streaming statistics used throughout the simulator for telemetry
// aggregation (utilization windows, power/energy accounting, latency
// distributions in the hardware model).

#include <cstddef>
#include <vector>

namespace pmrl {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; supports exact quantiles. Used where distributions
/// (not just moments) are reported, e.g. decision-latency percentiles.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Exact quantile by linear interpolation; q clamped to [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins. Used for utilization and latency summaries in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponential moving average with a configurable smoothing factor.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double x);
  double value() const { return value_; }
  bool empty() const { return empty_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

/// Pearson correlation of two equal-length series; returns 0 when either
/// series is constant or the series are shorter than two points.
double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Arithmetic mean of a series (0 for an empty series).
double mean_of(const std::vector<double>& xs);

/// Geometric mean of positive entries (0 if none are positive).
double geomean_of(const std::vector<double>& xs);

}  // namespace pmrl
