#pragma once
// Deterministic, seedable random number generation for reproducible
// simulation. Implements xoshiro256++ (Blackman & Vigna) plus the usual
// distribution helpers. Every stochastic component in the simulator takes a
// Rng (or a seed) explicitly so that experiments replay bit-identically.

#include <array>
#include <cstdint>
#include <vector>

namespace pmrl {

/// xoshiro256++ pseudo-random generator with distribution helpers.
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// handed to <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::size_t poisson(double mean);

  /// Log-normal distributed value parameterized by the underlying normal.
  double lognormal(double mu, double sigma);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// choice is uniform.
  std::size_t weighted_choice(const std::vector<double>& weights);

  /// Creates an unrelated child stream (for per-component RNGs).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pmrl
