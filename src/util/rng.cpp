#include "util/rng.hpp"

#include <cmath>

namespace pmrl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::size_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return weights.empty()
               ? 0
               : static_cast<std::size_t>(uniform_int(
                     0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace pmrl
