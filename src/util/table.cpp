#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pmrl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs columns");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace pmrl
