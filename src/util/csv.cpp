#include "util/csv.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pmrl {

CsvWriter::CsvWriter(std::ostream& out) : out_(out), header_pending_(false) {}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), header_(std::move(header)), header_pending_(true) {}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::maybe_write_header() {
  if (!header_pending_) return;
  header_pending_ = false;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(header_[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (!header_.empty() && fields.size() != header_.size()) {
    throw std::invalid_argument("CSV row width does not match header");
  }
  maybe_write_header();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
    fields.emplace_back(buf);
  }
  write_row(fields);
}

std::vector<std::vector<std::string>> CsvReader::parse(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  char c;
  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (!row.empty() || field_started || !field.empty()) {
      end_field();
      rows.push_back(row);
      row.clear();
    }
  };
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        throw std::runtime_error("CSV: quote inside unquoted field");
      }
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      end_field();
      field_started = true;  // comma implies a following field exists
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  end_row();
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::parse_string(
    const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

}  // namespace pmrl
