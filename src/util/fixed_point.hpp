#pragma once
// Signed Q-format fixed-point arithmetic used by the hardware policy model.
// The FPGA datapath in the paper stores Q-values and learning constants in
// fixed point; this header gives a bit-exact software model of that
// arithmetic (saturating, truncating-toward-negative-infinity on shifts),
// so the software agent in src/rl and the cycle model in src/hw compute the
// exact same numbers.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace pmrl {

/// Runtime-parameterized signed fixed-point value: `total_bits` wide with
/// `frac_bits` fractional bits, stored sign-extended in int64. Arithmetic
/// saturates at the format bounds exactly like a saturating RTL datapath.
///
/// A runtime (rather than template) parameterization is deliberate: the
/// precision ablation (bench_ablation_fixed_point) sweeps the format at
/// runtime.
class FixedFormat {
 public:
  constexpr FixedFormat(unsigned total_bits, unsigned frac_bits)
      : total_bits_(total_bits), frac_bits_(frac_bits) {
    if (total_bits < 2 || total_bits > 48 || frac_bits >= total_bits) {
      throw std::invalid_argument("invalid fixed-point format");
    }
  }

  constexpr unsigned total_bits() const { return total_bits_; }
  constexpr unsigned frac_bits() const { return frac_bits_; }
  constexpr unsigned int_bits() const { return total_bits_ - frac_bits_ - 1; }

  /// Largest representable raw value.
  constexpr std::int64_t raw_max() const {
    return (std::int64_t{1} << (total_bits_ - 1)) - 1;
  }
  /// Smallest representable raw value.
  constexpr std::int64_t raw_min() const {
    return -(std::int64_t{1} << (total_bits_ - 1));
  }
  /// Value of one least-significant bit.
  constexpr double lsb() const {
    return 1.0 / static_cast<double>(std::int64_t{1} << frac_bits_);
  }
  constexpr double value_max() const {
    return static_cast<double>(raw_max()) * lsb();
  }
  constexpr double value_min() const {
    return static_cast<double>(raw_min()) * lsb();
  }

  /// Quantizes a double to raw representation (round-to-nearest, saturating).
  std::int64_t from_double(double v) const;

  /// Raw representation back to double.
  constexpr double to_double(std::int64_t raw) const {
    return static_cast<double>(raw) * lsb();
  }

  /// Saturating add of two raw values.
  std::int64_t add(std::int64_t a, std::int64_t b) const {
    return saturate(a + b);
  }
  /// Saturating subtract.
  std::int64_t sub(std::int64_t a, std::int64_t b) const {
    return saturate(a - b);
  }
  /// Fixed-point multiply: full-width product then arithmetic right shift by
  /// frac_bits (truncation toward negative infinity, as >> does in RTL),
  /// then saturation.
  std::int64_t mul(std::int64_t a, std::int64_t b) const;

  /// Saturates an arbitrary raw value into this format's range.
  std::int64_t saturate(std::int64_t raw) const {
    return std::clamp(raw, raw_min(), raw_max());
  }

  friend constexpr bool operator==(const FixedFormat& a,
                                   const FixedFormat& b) {
    return a.total_bits_ == b.total_bits_ && a.frac_bits_ == b.frac_bits_;
  }

 private:
  unsigned total_bits_;
  unsigned frac_bits_;
};

/// A fixed-point value bound to its format. Convenience wrapper over
/// FixedFormat raw operations for readable call sites.
class Fixed {
 public:
  Fixed(FixedFormat fmt, double v) : fmt_(fmt), raw_(fmt.from_double(v)) {}
  static Fixed from_raw(FixedFormat fmt, std::int64_t raw) {
    Fixed f(fmt, 0.0);
    f.raw_ = fmt.saturate(raw);
    return f;
  }

  double value() const { return fmt_.to_double(raw_); }
  std::int64_t raw() const { return raw_; }
  const FixedFormat& format() const { return fmt_; }

  Fixed operator+(const Fixed& o) const { return with(fmt_.add(raw_, o.raw_)); }
  Fixed operator-(const Fixed& o) const { return with(fmt_.sub(raw_, o.raw_)); }
  Fixed operator*(const Fixed& o) const { return with(fmt_.mul(raw_, o.raw_)); }

  bool operator<(const Fixed& o) const { return raw_ < o.raw_; }
  bool operator>(const Fixed& o) const { return raw_ > o.raw_; }
  bool operator==(const Fixed& o) const { return raw_ == o.raw_; }

 private:
  Fixed with(std::int64_t raw) const { return from_raw(fmt_, raw); }
  FixedFormat fmt_;
  std::int64_t raw_;
};

inline std::int64_t FixedFormat::from_double(double v) const {
  const double scaled = v * static_cast<double>(std::int64_t{1} << frac_bits_);
  const double bounded =
      std::clamp(scaled, static_cast<double>(raw_min()),
                 static_cast<double>(raw_max()));
  // Round half away from zero, matching a typical RTL rounding stage.
  const double rounded = bounded >= 0.0 ? bounded + 0.5 : bounded - 0.5;
  return saturate(static_cast<std::int64_t>(rounded));
}

inline std::int64_t FixedFormat::mul(std::int64_t a, std::int64_t b) const {
  // Formats are capped at 48 bits so the full product fits in __int128 with
  // room to spare; on 48x48 the product needs 96 bits.
  const __int128 product = static_cast<__int128>(a) * static_cast<__int128>(b);
  const __int128 shifted = product >> frac_bits_;
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  std::int64_t narrowed;
  if (shifted > static_cast<__int128>(hi)) {
    narrowed = hi;
  } else if (shifted < static_cast<__int128>(lo)) {
    narrowed = lo;
  } else {
    narrowed = static_cast<std::int64_t>(shifted);
  }
  return saturate(narrowed);
}

}  // namespace pmrl
