#pragma once
// Fixed-capacity ring buffer used for sliding telemetry windows (recent
// utilization, recent frame latencies) where only the last N samples matter.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace pmrl {

/// Overwriting ring buffer: push beyond capacity drops the oldest element.
/// Index 0 is the oldest retained element.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity 0");
  }

  void push(const T& value) {
    data_[(head_ + size_) % data_.size()] = value;
    if (size_ < data_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % data_.size();
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return data_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == data_.size(); }

  /// Oldest-first access; throws on out-of-range.
  const T& operator[](std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer index");
    return data_[(head_ + i) % data_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pmrl
