#pragma once
// Leveled logging with a process-global threshold. Simulation components log
// sparingly (warnings for model-limit saturation, info for experiment
// phases); benches run with the default Warn threshold so tables stay clean.

#include <sstream>
#include <string>

namespace pmrl {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Returns the printable name of a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Process-global log configuration.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);
  /// Writes one line to stderr: "[LEVEL] component: message".
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Log::write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pmrl

// Streaming log macros; the expression arguments are not evaluated when the
// level is disabled.
#define PMRL_LOG(level, component)                    \
  if (!::pmrl::Log::enabled(level)) {                 \
  } else                                              \
    ::pmrl::detail::LogLine(level, component)

#define PMRL_DEBUG(component) PMRL_LOG(::pmrl::LogLevel::Debug, component)
#define PMRL_INFO(component) PMRL_LOG(::pmrl::LogLevel::Info, component)
#define PMRL_WARN(component) PMRL_LOG(::pmrl::LogLevel::Warn, component)
#define PMRL_ERROR(component) PMRL_LOG(::pmrl::LogLevel::Error, component)
