#pragma once
// Apportionment policies for the power-budget tree: given what each child
// group *demanded* last epoch, decide how to split the parent's cap.
//
// The apportionment-policy rule (DESIGN.md §12): a policy emits only
// non-negative WEIGHTS, and it computes them from demand observations and
// its own internal state — it never sees the cap being apportioned. The
// tree turns weights into caps with the floors-first running-remainder
// scheme in apportion_caps(), which is what makes the three budget
// invariants (conservation, no-starvation, cap-monotonicity) structural
// properties of the tree instead of per-policy obligations. weigh() must
// be a deterministic pure function of (groups, internal state); anything a
// policy learns from the resulting caps happens in observe(), which runs
// once per epoch after the caps are fixed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pmrl::budget {

/// What an interior node observes about one child group at a decision
/// epoch. Demand is the group's aggregated measured power from the
/// previous epoch (lag-1: caps for epoch e are computed before epoch e
/// runs), so the first epoch of a run sees all-zero demand.
struct GroupObs {
  std::size_t devices = 0;
  double demand_w = 0.0;
};

/// Pluggable apportionment strategy (the policy_mgr-style vtable).
class ApportionPolicy {
 public:
  virtual ~ApportionPolicy() = default;

  virtual const char* name() const = 0;

  /// Fills weights[g] >= 0 for every group. An all-zero weight vector
  /// means "split uniformly". Must not mutate internal state (see the
  /// apportionment-policy rule above).
  virtual void weigh(const std::vector<GroupObs>& groups,
                     std::vector<double>& weights) = 0;

  /// Feedback after the caps are fixed: caps_w[g] is the watts the group
  /// was granted. Learning policies update here; the default is a no-op.
  virtual void observe(const std::vector<GroupObs>& groups,
                       const std::vector<double>& caps_w) {
    (void)groups;
    (void)caps_w;
  }

  /// Returns the policy to its initial (seeded) state for a fresh run.
  virtual void reset() {}
};

/// Every group weighs the same regardless of demand.
std::unique_ptr<ApportionPolicy> make_uniform_policy();

/// weight = demanded watts: groups get cap in proportion to what they
/// drew last epoch.
std::unique_ptr<ApportionPolicy> make_demand_policy();

/// RL policy at the interior node: one seeded rl:: Q-learning agent over a
/// binned (relative-demand, per-device-pressure) group state picks a
/// per-group multiplier on the demand weight each epoch, learning online
/// from an unmet-demand / wasted-cap reward. Selection for epoch e+1 is
/// drawn in observe(e), so weigh() stays pure.
std::unique_ptr<ApportionPolicy> make_rl_policy(std::uint64_t seed);

/// Factory over the registered names: "uniform", "demand", "rl". Throws
/// std::invalid_argument for anything else.
std::unique_ptr<ApportionPolicy> make_policy(const std::string& name,
                                             std::uint64_t seed);
bool is_policy_name(const std::string& name);

/// Floors-first apportionment of `parent_cap_w` over n children:
///   cap[i] = floor[i] + share[i] * (parent - sum(floors))
/// with share[i] = weights[i] / sum(weights) (uniform when the sum is 0)
/// and the remainder handed out under a running clamp, so in exact
/// arithmetic sum(cap) <= parent, every cap >= its floor, and caps are
/// monotone in parent_cap_w (floating-point rounding can shift either by
/// ulp-scale amounts only). Requires parent_cap_w >= sum(floors).
void apportion_caps(double parent_cap_w, const double* floors,
                    const double* weights, std::size_t n, double* caps);

/// Same scheme with one shared floor per child (the per-device leaf split;
/// avoids materializing a floors array for 10^5 leaves).
void apportion_caps_uniform_floor(double parent_cap_w, double floor_w,
                                  const double* weights, std::size_t n,
                                  double* caps);

}  // namespace pmrl::budget
