#include "budget/apportion.hpp"

#include <algorithm>
#include <stdexcept>

#include "rl/agent.hpp"

namespace pmrl::budget {

namespace {

// Shared core: floors may be a per-child array or one scalar for all.
template <typename FloorAt>
void apportion_core(double parent_cap_w, FloorAt floor_at,
                    const double* weights, std::size_t n, double* caps) {
  if (n == 0) return;
  double floor_sum = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    floor_sum += floor_at(i);
    weight_sum += weights[i];
  }
  // The remainder above the floors is what the weights actually divide.
  // A running clamp keeps the handed-out total within the remainder even
  // under floating-point rounding: each child gets min(what is left,
  // its share), and what is left never goes negative because IEEE a - b
  // is exact-signed when b <= a.
  double remainder = std::max(0.0, parent_cap_w - floor_sum);
  double left = remainder;
  const double inv =
      weight_sum > 0.0 ? 1.0 / weight_sum : 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double share = weight_sum > 0.0 ? weights[i] * inv : inv;
    const double extra = std::min(left, remainder * share);
    caps[i] = floor_at(i) + extra;
    left -= extra;
  }
}

}  // namespace

void apportion_caps(double parent_cap_w, const double* floors,
                    const double* weights, std::size_t n, double* caps) {
  apportion_core(parent_cap_w, [floors](std::size_t i) { return floors[i]; },
                 weights, n, caps);
}

void apportion_caps_uniform_floor(double parent_cap_w, double floor_w,
                                  const double* weights, std::size_t n,
                                  double* caps) {
  apportion_core(parent_cap_w, [floor_w](std::size_t) { return floor_w; },
                 weights, n, caps);
}

namespace {

class UniformPolicy final : public ApportionPolicy {
 public:
  const char* name() const override { return "uniform"; }
  void weigh(const std::vector<GroupObs>& groups,
             std::vector<double>& weights) override {
    // Weigh by member count, not 1 per group: with unequal group sizes a
    // "uniform" split means equal watts per *device*.
    weights.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      weights[g] = static_cast<double>(groups[g].devices);
    }
  }
};

class DemandPolicy final : public ApportionPolicy {
 public:
  const char* name() const override { return "demand"; }
  void weigh(const std::vector<GroupObs>& groups,
             std::vector<double>& weights) override {
    weights.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      weights[g] = groups[g].demand_w;
    }
  }
};

// ---- RL interior-node policy ----------------------------------------------
// State: (relative-demand bin x per-device-pressure bin). Relative demand
// is the group's share of fleet demand normalized by a uniform split
// (1.0 = exactly its fair share), binned over [0, 2). Pressure compares
// the group's per-device demand with the fleet's per-device mean. Actions
// scale the demand weight, so the agent can only redistribute — the tree
// still enforces every invariant.
constexpr std::size_t kRelBins = 8;
constexpr std::size_t kPressureBins = 3;
constexpr std::size_t kRlStates = kRelBins * kPressureBins;
constexpr double kRlMultipliers[] = {0.5, 1.0, 2.0, 4.0};
constexpr std::size_t kRlActions =
    sizeof(kRlMultipliers) / sizeof(kRlMultipliers[0]);

class RlAdaptivePolicy final : public ApportionPolicy {
 public:
  explicit RlAdaptivePolicy(std::uint64_t seed) : seed_(seed) { reset(); }

  const char* name() const override { return "rl"; }

  void weigh(const std::vector<GroupObs>& groups,
             std::vector<double>& weights) override {
    sync(groups.size());
    weights.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      weights[g] = groups[g].demand_w * multiplier_[g];
    }
  }

  void observe(const std::vector<GroupObs>& groups,
               const std::vector<double>& caps_w) override {
    sync(groups.size());
    double total_demand = 0.0;
    std::size_t total_devices = 0;
    for (const GroupObs& obs : groups) {
      total_demand += obs.demand_w;
      total_devices += obs.devices;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::size_t state = state_of(groups[g], total_demand,
                                         total_devices, groups.size());
      if (has_last_[g]) {
        agent_->learn(last_state_[g], last_action_[g],
                      reward(groups[g], caps_w[g]), state);
      }
      const std::size_t action = agent_->select_action(state);
      multiplier_[g] = kRlMultipliers[action];
      last_state_[g] = state;
      last_action_[g] = action;
      has_last_[g] = 1;
    }
  }

  void reset() override {
    rl::QLearningConfig config;
    config.seed = seed_;
    // The budget loop learns within one run (tens to hundreds of epochs),
    // so decay exploration per decision, not per episode.
    config.epsilon_start = 0.3;
    config.epsilon_end = 0.02;
    config.epsilon_decay_episodes = 60;
    agent_ = std::make_unique<rl::QLearningAgent>(config, kRlStates,
                                                  kRlActions);
    multiplier_.clear();
    last_state_.clear();
    last_action_.clear();
    has_last_.clear();
  }

 private:
  void sync(std::size_t groups) {
    if (multiplier_.size() == groups) return;
    multiplier_.assign(groups, 1.0);
    last_state_.assign(groups, 0);
    last_action_.assign(groups, 0);
    has_last_.assign(groups, 0);
  }

  static std::size_t state_of(const GroupObs& obs, double total_demand,
                              std::size_t total_devices,
                              std::size_t groups) {
    const double fair =
        total_demand / static_cast<double>(groups == 0 ? 1 : groups);
    const double rel = fair > 0.0 ? obs.demand_w / fair : 0.0;
    const std::size_t rel_bin = std::min<std::size_t>(
        kRelBins - 1, static_cast<std::size_t>(rel * 0.5 *
                                               static_cast<double>(kRelBins)));
    const double fleet_per_device =
        total_devices > 0 ? total_demand / static_cast<double>(total_devices)
                          : 0.0;
    const double per_device =
        obs.devices > 0 ? obs.demand_w / static_cast<double>(obs.devices)
                        : 0.0;
    std::size_t pressure = 1;
    if (fleet_per_device > 0.0) {
      if (per_device < 0.9 * fleet_per_device) {
        pressure = 0;
      } else if (per_device > 1.1 * fleet_per_device) {
        pressure = 2;
      }
    }
    return pressure * kRelBins + rel_bin;
  }

  /// Negative unmet demand (the cap starved the group) with a small
  /// wasted-cap penalty (the cap overshot what the group can use).
  static double reward(const GroupObs& obs, double cap_w) {
    const double demand = std::max(obs.demand_w, 1e-9);
    const double cap = std::max(cap_w, 1e-9);
    const double unmet = std::max(0.0, obs.demand_w - cap_w) / demand;
    const double waste = std::max(0.0, cap_w - obs.demand_w) / cap;
    return -unmet - 0.1 * waste;
  }

  std::uint64_t seed_;
  std::unique_ptr<rl::QLearningAgent> agent_;
  std::vector<double> multiplier_;
  std::vector<std::size_t> last_state_;
  std::vector<std::size_t> last_action_;
  std::vector<std::uint8_t> has_last_;
};

}  // namespace

std::unique_ptr<ApportionPolicy> make_uniform_policy() {
  return std::make_unique<UniformPolicy>();
}

std::unique_ptr<ApportionPolicy> make_demand_policy() {
  return std::make_unique<DemandPolicy>();
}

std::unique_ptr<ApportionPolicy> make_rl_policy(std::uint64_t seed) {
  return std::make_unique<RlAdaptivePolicy>(seed);
}

std::unique_ptr<ApportionPolicy> make_policy(const std::string& name,
                                             std::uint64_t seed) {
  if (name == "uniform") return make_uniform_policy();
  if (name == "demand") return make_demand_policy();
  if (name == "rl") return make_rl_policy(seed);
  throw std::invalid_argument("unknown apportionment policy '" + name + "'");
}

bool is_policy_name(const std::string& name) {
  return name == "uniform" || name == "demand" || name == "rl";
}

}  // namespace pmrl::budget
