#include "budget/budget_tree.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pmrl::budget {

namespace {

/// Audit slack: the running-remainder scheme is conservative in exact
/// arithmetic; floating-point re-summation can drift by ulp-scale amounts
/// only.
double audit_tol(double cap_w) { return 1e-9 * std::max(1.0, cap_w); }

}  // namespace

BudgetTree::BudgetTree(BudgetSpec spec, std::size_t devices)
    : spec_(std::move(spec)), devices_(devices) {
  if (devices_ == 0) throw std::invalid_argument("budget tree of 0 devices");
  if (spec_.global_cap_w <= 0.0) {
    throw std::invalid_argument("budget global cap must be > 0 W");
  }
  if (!(spec_.floor_w >= 0.0)) {
    throw std::invalid_argument("budget floor must be >= 0 W");
  }
  if (spec_.groups == 0) throw std::invalid_argument("budget groups == 0");
  for (const CapStep& step : spec_.schedule) {
    if (!(step.cap_w > 0.0) || !(step.time_s >= 0.0)) {
      throw std::invalid_argument("budget cap steps need time >= 0, cap > 0");
    }
  }
  groups_ = std::min(spec_.groups, devices_);
  policy_ = make_policy(spec_.policy, spec_.seed);  // throws on bad name
  reset();
}

void BudgetTree::reset() {
  requested_cap_w_ = spec_.global_cap_w;
  steps_fired_ = 0;
  audit_error_.clear();
  policy_->reset();
  obs_.assign(groups_, GroupObs{});
  group_floors_.resize(groups_);
  for (std::size_t g = 0; g < groups_; ++g) {
    obs_[g].devices = group_last(g) - group_first(g);
    group_floors_[g] =
        static_cast<double>(obs_[g].devices) * spec_.floor_w;
  }
  group_caps_w_.assign(groups_, 0.0);
}

double BudgetTree::effective_cap_w() const {
  return std::max(requested_cap_w_,
                  static_cast<double>(devices_) * spec_.floor_w);
}

bool BudgetTree::begin_epoch(double time_s) {
  // Latest step whose time has arrived wins; equal times resolve to the
  // later schedule entry so the order in the spec is authoritative.
  double target = spec_.global_cap_w;
  double best_time = -1.0;
  for (const CapStep& step : spec_.schedule) {
    if (step.time_s <= time_s && step.time_s >= best_time) {
      best_time = step.time_s;
      target = step.cap_w;
    }
  }
  if (target == requested_cap_w_) return false;
  requested_cap_w_ = target;
  ++steps_fired_;
  return true;
}

void BudgetTree::apportion_from(double effective_cap_w,
                                const std::vector<double>& demand_w,
                                std::vector<double>& caps_w) {
  // Aggregate the demand column per group, serially in strict device
  // order: the caps are then a pure function of (spec, demand column),
  // independent of how the fleet sharded the devices that wrote it.
  for (std::size_t g = 0; g < groups_; ++g) {
    double sum = 0.0;
    const std::size_t last = group_last(g);
    for (std::size_t d = group_first(g); d < last; ++d) sum += demand_w[d];
    obs_[g].demand_w = sum;
  }
  policy_->weigh(obs_, weights_);
  // Defensive sanitation: the policy contract is non-negative finite
  // weights; anything else is treated as "no preference".
  for (double& w : weights_) {
    if (!std::isfinite(w) || w < 0.0) w = 0.0;
  }
  apportion_caps(effective_cap_w, group_floors_.data(), weights_.data(),
                 groups_, group_caps_w_.data());
  caps_w.resize(devices_);
  for (std::size_t g = 0; g < groups_; ++g) {
    const std::size_t first = group_first(g);
    apportion_caps_uniform_floor(group_caps_w_[g], spec_.floor_w,
                                 demand_w.data() + first,
                                 group_last(g) - first,
                                 caps_w.data() + first);
  }
}

void BudgetTree::apportion(const std::vector<double>& demand_w,
                           std::vector<double>& caps_w) {
  apportion_from(effective_cap_w(), demand_w, caps_w);
  policy_->observe(obs_, group_caps_w_);
  audit(demand_w, caps_w);
}

void BudgetTree::preview(const std::vector<double>& demand_w,
                         double global_cap_w,
                         std::vector<double>& caps_w) {
  const double effective = std::max(
      global_cap_w, static_cast<double>(devices_) * spec_.floor_w);
  apportion_from(effective, demand_w, caps_w);
}

void BudgetTree::audit(const std::vector<double>& demand_w,
                       const std::vector<double>& caps_w) {
  (void)demand_w;
  if (!audit_error_.empty()) return;  // keep the first failure
  std::ostringstream err;
  const double eff = effective_cap_w();
  double group_sum = 0.0;
  for (double c : group_caps_w_) group_sum += c;
  if (group_sum > eff + audit_tol(eff)) {
    err << "conservation: sum(group caps) " << group_sum
        << " W > effective cap " << eff << " W";
    audit_error_ = err.str();
    return;
  }
  for (std::size_t g = 0; g < groups_; ++g) {
    const double cap_g = group_caps_w_[g];
    if (cap_g < group_floors_[g] - audit_tol(eff)) {
      err << "no-starvation: group " << g << " cap " << cap_g
          << " W < floor " << group_floors_[g] << " W";
      audit_error_ = err.str();
      return;
    }
    double leaf_sum = 0.0;
    const std::size_t first = group_first(g);
    const std::size_t last = group_last(g);
    for (std::size_t d = first; d < last; ++d) {
      leaf_sum += caps_w[d];
      if (caps_w[d] < spec_.floor_w - audit_tol(eff)) {
        err << "no-starvation: device " << d << " cap " << caps_w[d]
            << " W < floor " << spec_.floor_w << " W";
        audit_error_ = err.str();
        return;
      }
    }
    if (leaf_sum > cap_g + audit_tol(std::max(eff, cap_g))) {
      err << "conservation: group " << g << " leaf sum " << leaf_sum
          << " W > group cap " << cap_g << " W";
      audit_error_ = err.str();
      return;
    }
  }
}

}  // namespace pmrl::budget
