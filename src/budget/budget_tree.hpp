#pragma once
// The power-budget tree: global cap -> group caps -> per-device caps,
// re-apportioned every decision epoch from the previous epoch's measured
// per-device power (the demand column). The tree is the production-shaped
// layer above the fleet engine: a datacenter- or carrier-level watts
// budget flows down a two-level hierarchy, an ApportionPolicy decides the
// group split, and each group splits over its member devices
// demand-proportionally, with a per-device floor so no live device is
// ever starved to zero.
//
// Determinism: apportion() is a serial pure pass over the flat demand
// column in strict device order, so the resulting caps are bit-identical
// for any fleet --jobs count and any --block partition (the blocks only
// ever fill demand_w, each into its own disjoint slice).
//
// Invariants (by construction, audited every epoch, and property-tested):
//   conservation      sum of child caps <= parent cap at every node
//   no-starvation     every device cap >= floor_w
//   cap-monotonicity  lowering the global cap never raises any leaf cap
// Conservation at the root is against the EFFECTIVE cap
// max(requested, devices * floor_w): when a schedule step requests less
// than the floors require, the tree refuses to starve and the effective
// cap holds at the floor total.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "budget/apportion.hpp"

namespace pmrl::budget {

/// One step of the global-cap schedule: from time_s on, the requested
/// global cap is cap_w.
struct CapStep {
  double time_s = 0.0;
  double cap_w = 0.0;
};

/// Budget configuration carried by fleet::FleetConfig.
struct BudgetSpec {
  /// Requested global cap in watts at t = 0. 0 disables budgeting.
  double global_cap_w = 0.0;
  /// Per-device floor (watts): the no-starvation guarantee.
  double floor_w = 0.05;
  /// Interior nodes (device groups) under the root.
  std::size_t groups = 8;
  /// Apportionment policy name: "uniform", "demand", or "rl".
  std::string policy = "demand";
  /// Seed for the RL apportionment policy.
  std::uint64_t seed = 1;
  /// Cap step-changes, applied at epoch starts (first step whose time_s
  /// <= epoch start wins, latest first). Need not be sorted.
  std::vector<CapStep> schedule;

  bool enabled() const { return global_cap_w > 0.0; }
};

class BudgetTree {
 public:
  /// Throws std::invalid_argument on a non-positive cap or floor < 0 or
  /// zero groups/devices, or an unknown policy name.
  BudgetTree(BudgetSpec spec, std::size_t devices);

  /// Fresh run: re-seeds the policy and clears schedule/audit state.
  void reset();

  /// Applies the cap schedule for an epoch starting at time_s. Returns
  /// true when the requested cap changed (a step fired).
  bool begin_epoch(double time_s);

  /// Apportions the current effective cap top-down: demand_w[d] is device
  /// d's measured watts from the previous epoch; caps_w (resized to
  /// devices) receives the per-device caps. Serial and deterministic;
  /// also feeds the policy's observe() hook and re-audits the tree.
  void apportion(const std::vector<double>& demand_w,
                 std::vector<double>& caps_w);

  /// Caps for an arbitrary (cap, demand) pair WITHOUT advancing any state
  /// (no schedule, no policy learning, no audit) — the monotonicity
  /// property battery compares preview(lower cap) against preview(cap).
  void preview(const std::vector<double>& demand_w, double global_cap_w,
               std::vector<double>& caps_w);

  std::size_t devices() const { return devices_; }
  std::size_t groups() const { return groups_; }
  /// Device -> group mapping: the inverse of the [group_first, group_last)
  /// partition below (exact also when groups does not divide devices).
  std::size_t group_of(std::size_t device) const {
    return ((device + 1) * groups_ - 1) / devices_;
  }
  std::size_t group_first(std::size_t group) const {
    return group * devices_ / groups_;
  }
  std::size_t group_last(std::size_t group) const {
    return (group + 1) * devices_ / groups_;
  }

  const BudgetSpec& spec() const { return spec_; }
  /// Cap currently requested by the schedule.
  double requested_cap_w() const { return requested_cap_w_; }
  /// max(requested, devices * floor_w): what actually gets apportioned.
  double effective_cap_w() const;
  /// Group caps from the last apportion()/preview().
  const std::vector<double>& group_caps_w() const { return group_caps_w_; }
  const std::vector<GroupObs>& group_obs() const { return obs_; }
  /// Schedule steps fired since reset().
  std::size_t steps_fired() const { return steps_fired_; }

  /// First internal-invariant violation seen since reset() (empty = every
  /// epoch's apportionment passed the conservation/floor audit).
  const std::string& audit_error() const { return audit_error_; }

 private:
  void apportion_from(double effective_cap_w,
                      const std::vector<double>& demand_w,
                      std::vector<double>& caps_w);
  void audit(const std::vector<double>& demand_w,
             const std::vector<double>& caps_w);

  BudgetSpec spec_;
  std::size_t devices_ = 0;
  std::size_t groups_ = 0;
  std::unique_ptr<ApportionPolicy> policy_;
  double requested_cap_w_ = 0.0;
  std::size_t steps_fired_ = 0;
  std::vector<GroupObs> obs_;
  std::vector<double> weights_;
  std::vector<double> group_floors_;
  std::vector<double> group_caps_w_;
  std::string audit_error_;
};

}  // namespace pmrl::budget
