#include "governors/conservative.hpp"

#include <algorithm>

namespace pmrl::governors {

ConservativeGovernor::ConservativeGovernor(ConservativeParams params)
    : params_(params) {}

void ConservativeGovernor::decide(const PolicyObservation& obs,
                                  OppRequest& request) {
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    const auto& cluster = obs.soc.clusters[c];
    const double load = cluster.util_max;
    const std::size_t top = cluster.opp_count - 1;
    std::size_t next = cluster.opp_index;
    if (load >= params_.up_threshold) {
      next = std::min(top, next + params_.freq_step);
    } else if (load <= params_.down_threshold) {
      next = next >= params_.freq_step ? next - params_.freq_step : 0;
    }
    request[c] = next;
  }
}

}  // namespace pmrl::governors
