#pragma once
// The ondemand governor, following the classic Linux cpufreq algorithm:
// when the load crosses the up-threshold the cluster jumps straight to its
// maximum frequency; otherwise the next frequency is proportional to load,
// chosen as the lowest OPP that covers load/up_threshold of max capacity.

#include "governors/governor.hpp"

namespace pmrl::governors {

struct OndemandParams {
  /// Load fraction above which the governor jumps to max (Linux default
  /// up_threshold = 80-95 depending on era; 0.80 here).
  double up_threshold = 0.80;
  /// Multiplier applied when scaling below max (powersave_bias = 0 means
  /// none; kept for ablation).
  double powersave_bias = 0.0;
};

class OndemandGovernor : public Governor {
 public:
  explicit OndemandGovernor(OndemandParams params = {});
  std::string name() const override { return "ondemand"; }
  void reset(const PolicyObservation&) override {}
  void decide(const PolicyObservation& obs, OppRequest& request) override;

  const OndemandParams& params() const { return params_; }

 private:
  OndemandParams params_;
};

}  // namespace pmrl::governors
