#pragma once
// The conservative governor: like ondemand but moves gradually — one
// frequency step up when load exceeds the up-threshold, one step down when
// it falls below the down-threshold (Linux cpufreq_conservative).

#include "governors/governor.hpp"

namespace pmrl::governors {

struct ConservativeParams {
  double up_threshold = 0.80;
  double down_threshold = 0.20;
  /// OPP indices moved per decision.
  std::size_t freq_step = 1;
};

class ConservativeGovernor : public Governor {
 public:
  explicit ConservativeGovernor(ConservativeParams params = {});
  std::string name() const override { return "conservative"; }
  void reset(const PolicyObservation&) override {}
  void decide(const PolicyObservation& obs, OppRequest& request) override;

  const ConservativeParams& params() const { return params_; }

 private:
  ConservativeParams params_;
};

}  // namespace pmrl::governors
