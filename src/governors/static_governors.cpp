#include "governors/static_governors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmrl::governors {

void PerformanceGovernor::decide(const PolicyObservation& obs,
                                 OppRequest& request) {
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    request[c] = obs.soc.clusters[c].opp_count - 1;
  }
}

void PowersaveGovernor::decide(const PolicyObservation& obs,
                               OppRequest& request) {
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    (void)obs;
    request[c] = 0;
  }
}

UserspaceGovernor::UserspaceGovernor(double table_fraction)
    : fraction_(table_fraction) {
  if (table_fraction < 0.0 || table_fraction > 1.0) {
    throw std::invalid_argument("userspace fraction must be in [0,1]");
  }
}

void UserspaceGovernor::decide(const PolicyObservation& obs,
                               OppRequest& request) {
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    const std::size_t count = obs.soc.clusters[c].opp_count;
    const double pos = fraction_ * static_cast<double>(count - 1);
    request[c] = static_cast<std::size_t>(std::lround(pos));
  }
}

}  // namespace pmrl::governors
