#pragma once
// The schedutil governor: the modern Linux default that drives frequency
// directly from the scheduler's PELT utilization with a fixed headroom,
// f = C * util_invariant * f_max with C = 1.25 (the kernel's
// "util + util/4"), plus an optional rate limit between changes. Included
// as a seventh, newer baseline beyond the paper's six.

#include <vector>

#include "governors/governor.hpp"

namespace pmrl::governors {

struct SchedutilParams {
  /// Headroom multiplier (kernel: 1.25).
  double headroom = 1.25;
  /// Minimum time between frequency changes per cluster (kernel
  /// rate_limit_us; seconds here). 0 disables rate limiting.
  double rate_limit_s = 0.0;
};

class SchedutilGovernor : public Governor {
 public:
  explicit SchedutilGovernor(SchedutilParams params = {});
  std::string name() const override { return "schedutil"; }
  void reset(const PolicyObservation& initial) override;
  void decide(const PolicyObservation& obs, OppRequest& request) override;

  const SchedutilParams& params() const { return params_; }

 private:
  SchedutilParams params_;
  std::vector<double> last_change_s_;
};

}  // namespace pmrl::governors
