#include "governors/interactive.hpp"

#include <algorithm>
#include <cmath>

namespace pmrl::governors {

InteractiveGovernor::InteractiveGovernor(InteractiveParams params)
    : params_(params) {}

void InteractiveGovernor::reset(const PolicyObservation& initial) {
  const std::size_t n = initial.soc.clusters.size();
  floor_expires_s_.assign(n, -1.0);
  floor_index_.assign(n, 0);
}

void InteractiveGovernor::decide(const PolicyObservation& obs,
                                 OppRequest& request) {
  if (floor_expires_s_.size() != obs.soc.clusters.size()) {
    reset(obs);
  }
  const double now = obs.soc.time_s;
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    const auto& cluster = obs.soc.clusters[c];
    const double load = cluster.util_max;
    const std::size_t top = cluster.opp_count - 1;
    auto index_for_fraction = [&](double fraction) {
      fraction = std::clamp(fraction, 0.0, 1.0);
      const double idx = fraction * static_cast<double>(top);
      return static_cast<std::size_t>(std::ceil(idx - 1e-9));
    };

    std::size_t target;
    if (load >= params_.go_hispeed_load) {
      // Spike: jump at least to hispeed, higher if already above it.
      const std::size_t hispeed =
          index_for_fraction(params_.hispeed_freq_fraction);
      target = std::max(hispeed, cluster.opp_index);
      if (load > params_.go_hispeed_load && cluster.opp_index >= hispeed) {
        target = top;  // sustained spike above hispeed: go to max
      }
    } else {
      // Proportional: frequency where current demand sits at target_load.
      const double needed_hz = cluster.freq_hz * load / params_.target_load;
      target = index_for_fraction(
          cluster.max_freq_hz > 0.0 ? needed_hz / cluster.max_freq_hz : 0.0);
    }

    if (target > cluster.opp_index) {
      // Raising: arm the hold-down floor.
      floor_index_[c] = target;
      floor_expires_s_[c] = now + params_.min_sample_time;
    } else if (now < floor_expires_s_[c]) {
      // Within the hold window: do not drop below the armed floor.
      target = std::max(target, floor_index_[c]);
    }
    request[c] = std::min(target, top);
  }
}

}  // namespace pmrl::governors
