#pragma once
// Factory for the baseline governors, addressed by name as in
// /sys/devices/system/cpu/cpufreq. The RL policy registers here too (from
// src/rl) so harnesses can instantiate every policy uniformly.

#include <functional>
#include <string>
#include <vector>

#include "governors/governor.hpp"

namespace pmrl::governors {

using GovernorFactory = std::function<GovernorPtr()>;

/// Registers a governor under a unique name; throws std::invalid_argument
/// on duplicates.
void register_governor(const std::string& name, GovernorFactory factory);

/// True if a governor with this name is registered.
bool has_governor(const std::string& name);

/// Instantiates a registered governor; throws std::invalid_argument for an
/// unknown name.
GovernorPtr make_governor(const std::string& name);

/// Names of the six conventional baseline governors, in the reporting order
/// of the paper's comparison.
std::vector<std::string> baseline_governor_names();

/// All registered governor names (sorted).
std::vector<std::string> registered_governor_names();

}  // namespace pmrl::governors
