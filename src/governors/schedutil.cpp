#include "governors/schedutil.hpp"

#include <algorithm>
#include <cmath>

namespace pmrl::governors {

SchedutilGovernor::SchedutilGovernor(SchedutilParams params)
    : params_(params) {}

void SchedutilGovernor::reset(const PolicyObservation& initial) {
  last_change_s_.assign(initial.soc.clusters.size(), -1e9);
}

void SchedutilGovernor::decide(const PolicyObservation& obs,
                               OppRequest& request) {
  if (last_change_s_.size() != obs.soc.clusters.size()) reset(obs);
  const double now = obs.soc.time_s;
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    const auto& cluster = obs.soc.clusters[c];
    const std::size_t top = cluster.opp_count - 1;
    // Frequency-invariant utilization of the busiest core: util_max is
    // relative to the current frequency, so scale it to f_max terms.
    const double util_inv =
        cluster.util_max * cluster.freq_hz /
        std::max(cluster.max_freq_hz, 1.0);
    const double target_hz =
        params_.headroom * util_inv * cluster.max_freq_hz;
    const double fraction =
        cluster.max_freq_hz > 0.0 ? target_hz / cluster.max_freq_hz : 0.0;
    const double idx = std::clamp(fraction, 0.0, 1.0) *
                       static_cast<double>(top);
    std::size_t next = static_cast<std::size_t>(std::ceil(idx - 1e-9));
    next = std::min(next, top);
    if (params_.rate_limit_s > 0.0 && next != cluster.opp_index &&
        now - last_change_s_[c] < params_.rate_limit_s) {
      next = cluster.opp_index;  // rate-limited: hold
    }
    if (next != cluster.opp_index) last_change_s_[c] = now;
    request[c] = next;
  }
}

}  // namespace pmrl::governors
