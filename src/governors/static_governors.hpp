#pragma once
// The three stateless baseline governors: performance (always max),
// powersave (always min), and userspace (pinned to a configured fraction of
// the table, defaulting to the middle OPP) — matching their Linux cpufreq
// namesakes.

#include "governors/governor.hpp"

namespace pmrl::governors {

/// Always requests the highest OPP: best QoS, worst energy.
class PerformanceGovernor : public Governor {
 public:
  std::string name() const override { return "performance"; }
  void reset(const PolicyObservation&) override {}
  void decide(const PolicyObservation& obs, OppRequest& request) override;
};

/// Always requests the lowest OPP: best-case power, QoS suffers under load.
class PowersaveGovernor : public Governor {
 public:
  std::string name() const override { return "powersave"; }
  void reset(const PolicyObservation&) override {}
  void decide(const PolicyObservation& obs, OppRequest& request) override;
};

/// Pins each cluster to a fixed position within its OPP table, expressed as
/// a fraction of the table (0 = lowest, 1 = highest). Models a user/vendor
/// fixed-frequency setting.
class UserspaceGovernor : public Governor {
 public:
  explicit UserspaceGovernor(double table_fraction = 0.5);
  std::string name() const override { return "userspace"; }
  void reset(const PolicyObservation&) override {}
  void decide(const PolicyObservation& obs, OppRequest& request) override;

 private:
  double fraction_;
};

}  // namespace pmrl::governors
