#pragma once
// The interactive governor (Android's historical touch-boost governor):
// on a load spike it jumps immediately to a "hispeed" frequency, holds at
// least min_sample_time before ramping down, and otherwise targets the
// frequency at which the observed load would sit at target_load.

#include <vector>

#include "governors/governor.hpp"

namespace pmrl::governors {

struct InteractiveParams {
  /// Load that triggers the hispeed jump.
  double go_hispeed_load = 0.85;
  /// Hispeed frequency as a fraction of f_max.
  double hispeed_freq_fraction = 0.80;
  /// Target steady-state load used for proportional scaling.
  double target_load = 0.90;
  /// Minimum time a raised frequency is held before dropping (seconds).
  double min_sample_time = 0.080;
};

class InteractiveGovernor : public Governor {
 public:
  explicit InteractiveGovernor(InteractiveParams params = {});
  std::string name() const override { return "interactive"; }
  void reset(const PolicyObservation& initial) override;
  void decide(const PolicyObservation& obs, OppRequest& request) override;

  const InteractiveParams& params() const { return params_; }

 private:
  InteractiveParams params_;
  /// Per-cluster time at which the current raised frequency may drop.
  std::vector<double> floor_expires_s_;
  std::vector<std::size_t> floor_index_;
};

}  // namespace pmrl::governors
