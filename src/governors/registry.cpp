#include "governors/registry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "governors/conservative.hpp"
#include "governors/interactive.hpp"
#include "governors/ondemand.hpp"
#include "governors/schedutil.hpp"
#include "governors/static_governors.hpp"

namespace pmrl::governors {
namespace {

std::map<std::string, GovernorFactory>& registry() {
  static std::map<std::string, GovernorFactory> instance = [] {
    std::map<std::string, GovernorFactory> m;
    m.emplace("performance",
              [] { return GovernorPtr(new PerformanceGovernor()); });
    m.emplace("powersave", [] { return GovernorPtr(new PowersaveGovernor()); });
    m.emplace("userspace", [] { return GovernorPtr(new UserspaceGovernor()); });
    m.emplace("ondemand", [] { return GovernorPtr(new OndemandGovernor()); });
    m.emplace("conservative",
              [] { return GovernorPtr(new ConservativeGovernor()); });
    m.emplace("interactive",
              [] { return GovernorPtr(new InteractiveGovernor()); });
    m.emplace("schedutil",
              [] { return GovernorPtr(new SchedutilGovernor()); });
    return m;
  }();
  return instance;
}

}  // namespace

void register_governor(const std::string& name, GovernorFactory factory) {
  auto [it, inserted] = registry().emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("governor already registered: " + name);
  }
}

bool has_governor(const std::string& name) {
  return registry().count(name) != 0;
}

GovernorPtr make_governor(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown governor: " + name);
  }
  return it->second();
}

std::vector<std::string> baseline_governor_names() {
  return {"performance", "powersave",    "userspace",
          "ondemand",    "conservative", "interactive"};
}

std::vector<std::string> registered_governor_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace pmrl::governors
