#include "governors/ondemand.hpp"

#include <algorithm>

namespace pmrl::governors {

OndemandGovernor::OndemandGovernor(OndemandParams params) : params_(params) {}

void OndemandGovernor::decide(const PolicyObservation& obs,
                              OppRequest& request) {
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    const auto& cluster = obs.soc.clusters[c];
    const double load = cluster.util_max;  // busiest core rules the domain
    const std::size_t top = cluster.opp_count - 1;
    if (load >= params_.up_threshold) {
      request[c] = top;
      continue;
    }
    // Required absolute capacity: current freq times load, headroom so the
    // new point would sit at up_threshold load.
    const double needed_hz = cluster.freq_hz * load / params_.up_threshold;
    const double biased_hz = needed_hz * (1.0 - params_.powersave_bias);
    // Lowest OPP covering the needed frequency. OPP tables here are
    // uniform-step, so the index maps linearly onto the frequency fraction
    // of f_max.
    const double fraction =
        cluster.max_freq_hz > 0.0 ? biased_hz / cluster.max_freq_hz : 0.0;
    const double idx = fraction * static_cast<double>(top);
    const double ceil_idx = idx > 0.0 ? idx + 0.999999 : 0.0;
    request[c] = std::min(top, static_cast<std::size_t>(ceil_idx));
  }
}

}  // namespace pmrl::governors
