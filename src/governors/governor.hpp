#pragma once
// The governor (power-management policy) interface. Every policy — the six
// Linux-style baselines and the paper's RL policy — implements this. A
// governor is invoked once per decision epoch with the observation below
// and answers with a requested OPP index per cluster.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "soc/telemetry.hpp"

namespace pmrl::governors {

/// Everything a policy observes at a decision epoch. Baseline governors use
/// only the utilization fields; the RL policy additionally consumes the
/// per-epoch energy/QoS feedback as its reward signal (on a real device
/// this comes from the PMIC energy counters and the frame pipeline, both of
/// which the paper's policy reads).
struct PolicyObservation {
  soc::SocTelemetry soc;
  /// Seconds since the previous decision.
  double epoch_duration_s = 0.0;
  /// Energy consumed during the previous epoch (J).
  double epoch_energy_j = 0.0;
  /// QoS quality units delivered during the previous epoch.
  double epoch_quality = 0.0;
  /// Deadline violations during the previous epoch.
  std::size_t epoch_violations = 0;
  /// Deadline jobs released during the previous epoch.
  std::size_t epoch_releases = 0;

  /// Per-DVFS-domain feedback for the previous epoch (index = cluster id).
  /// Jobs are attributed to the cluster whose core completed them, so each
  /// domain's policy sees its own energy and its own QoS outcome.
  struct ClusterFeedback {
    double epoch_energy_j = 0.0;
    /// Quality delivered by deadline jobs completed on this cluster.
    double epoch_deadline_quality = 0.0;
    /// Deadline jobs completed on this cluster.
    std::size_t epoch_deadline_completed = 0;
    std::size_t epoch_violations = 0;
  };
  std::vector<ClusterFeedback> cluster_feedback;
};

/// A per-epoch DVFS decision: one OPP index request per cluster, in cluster
/// order. The SoC may cap a request (thermal throttle).
using OppRequest = std::vector<std::size_t>;

/// Power-management policy interface.
class Governor {
 public:
  virtual ~Governor() = default;

  virtual std::string name() const = 0;

  /// Called before a run starts; the observation describes the initial
  /// system state (cluster count, OPP table sizes). Policies reset their
  /// internal state but keep anything learned (the RL policy keeps its
  /// Q-table unless explicitly cleared).
  virtual void reset(const PolicyObservation& initial) = 0;

  /// One decision: fills `request` (pre-sized to the cluster count).
  virtual void decide(const PolicyObservation& obs, OppRequest& request) = 0;
};

using GovernorPtr = std::unique_ptr<Governor>;

}  // namespace pmrl::governors
