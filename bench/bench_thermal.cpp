// E6 — sustained-load thermal behaviour (extension experiment): a "hot
// device" (high ambient, poor heat path) running the gaming scenario for
// two minutes. Policies that burn the thermal budget early get throttled
// and lose QoS later; the RL policy's lower operating points delay or
// avoid the throttle. This exercises the thermal substrate end to end.

#include <cstdio>

#include "bench_common.hpp"
#include "util/log.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {

/// Sustained multi-threaded load: four 60 fps render workers (one per big
/// core) plus audio — a heavy game or benchmark loop that keeps the whole
/// big cluster busy, unlike the single-render-thread gaming scenario.
class SustainedRenderScenario : public workload::Scenario {
 public:
  explicit SustainedRenderScenario(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "sustained"; }
  void setup(workload::WorkloadHost& host) override {
    for (int i = 0; i < 4; ++i) {
      const auto task = host.create_task(
          "render" + std::to_string(i), soc::Affinity::PreferBig, 2.0);
      workers_.emplace_back(task, 1.0 / 60.0,
                            workload::WorkDistribution{15e6, 0.15, 0.0, 1.0},
                            1.0, i * 0.004);
    }
    const auto audio =
        host.create_task("audio", soc::Affinity::PreferLittle, 1.0);
    workers_.emplace_back(audio, 0.010,
                          workload::WorkDistribution{0.3e6, 0.1, 0.0, 1.0},
                          1.0, 0.0);
  }
  void tick(workload::WorkloadHost& host, double now_s,
            double dt_s) override {
    for (auto& source : workers_) source.tick(host, now_s, dt_s, rng_);
  }

 private:
  Rng rng_;
  std::vector<workload::PeriodicSource> workers_;
};

soc::SocConfig hot_device_config() {
  soc::SocConfig config = soc::default_mobile_soc_config();
  config.ambient_c = 45.0;  // device in the sun / in a case
  // Poor heat path: big cluster Rth up from 4 to 7 K/W.
  config.clusters[1].thermal.r_th_k_per_w = 7.0;
  config.clusters[1].thermal.initial_temp_c = 55.0;
  config.clusters[0].thermal.initial_temp_c = 50.0;
  config.throttle.trip_temp_c = 67.0;
  config.throttle.clear_temp_c = 62.0;
  config.throttle.throttle_cap_index = 6;  // big capped at 800 MHz
  return config;
}
}  // namespace

int main() {
  // Throttle trips are the expected behaviour here; keep the table clean.
  Log::set_level(LogLevel::Error);
  bench::print_banner("E6", "sustained gaming on a hot device",
                      "thermal-throttle extension experiment");

  core::EngineConfig engine_config;
  engine_config.duration_s = 120.0;
  core::SimEngine engine(hot_device_config(), engine_config);

  // Train on the standard rotation plus the sustained scenario itself
  // (the policy must see this load level to learn its operating point).
  auto trained = bench::train_default_policy(engine, 30);
  for (int episode = 0; episode < 20; ++episode) {
    SustainedRenderScenario scenario(bench::kTrainSeed + episode);
    trained.governor->begin_episode();
    engine.run(scenario, *trained.governor);
  }

  TextTable table({"policy", "energy [J]", "E/QoS [J]", "viol rate",
                   "peak T big [C]", "throttled [s]", "mean f_big [MHz]"});
  auto add = [&](governors::Governor& governor) {
    SustainedRenderScenario scenario(bench::kEvalSeed);
    const auto run = engine.run(scenario, governor);
    table.add_row({run.governor, TextTable::num(run.energy_j, 1),
                   TextTable::num(run.energy_per_qos, 5),
                   TextTable::percent(run.violation_rate),
                   TextTable::num(run.peak_temp_c.back(), 1),
                   TextTable::num(run.throttled_s.back(), 1),
                   TextTable::num(run.mean_freq_hz.back() / 1e6, 0)});
  };
  for (const auto& name : {"performance", "ondemand", "interactive"}) {
    auto governor = governors::make_governor(name);
    add(*governor);
  }
  add(*trained.governor);
  table.print();

  std::printf(
      "\nexpected shape: the performance governor saturates the thermal "
      "budget and spends most of the run throttled at the cap; demand-"
      "tracking policies (ondemand/interactive/rl) run cooler, throttle "
      "less, and keep QoS.\n");
  return 0;
}
