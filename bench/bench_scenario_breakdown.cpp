// E4 — per-scenario breakdown behind the E1 averages: energy, QoS quality,
// violation rate and mean cluster frequencies for every (policy, scenario)
// pair. Demonstrates the paper's claim that the policy manages power
// "regardless of the application scenario" without QoS compromise.

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("E4", "per-scenario energy & QoS breakdown",
                      "scenario-level detail behind the E1 comparison");

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));
  auto engine = bench::make_default_engine();
  auto trained = bench::train_default_policy(engine);

  std::vector<core::PolicySummary> all = bench::evaluate_baselines(farm);
  all.push_back(bench::evaluate_policy(engine, *trained.governor));

  for (const auto kind : workload::all_scenario_kinds()) {
    const char* name = workload::scenario_kind_name(kind);
    std::printf("scenario: %s\n", name);
    TextTable table({"policy", "energy [J]", "E/QoS [J]", "viol rate",
                     "mean quality", "f_little [MHz]", "f_big [MHz]",
                     "DVFS transitions"});
    for (const auto& summary : all) {
      const auto& run = core::run_for_scenario(summary, name);
      table.add_row({summary.governor, TextTable::num(run.energy_j, 1),
                     TextTable::num(run.energy_per_qos, 5),
                     TextTable::percent(run.violation_rate),
                     TextTable::num(run.mean_quality, 3),
                     TextTable::num(run.mean_freq_hz.front() / 1e6, 0),
                     TextTable::num(run.mean_freq_hz.back() / 1e6, 0),
                     std::to_string(run.dvfs_transitions)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
