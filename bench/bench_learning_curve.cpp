// E3 — learning curve: energy per QoS across training episodes, over three
// seeds. Because training rotates through the six scenarios (whose E/QoS
// scales differ by 3x), each episode is normalized by the ondemand
// governor's E/QoS on the *same* scenario and seed; a ratio below 1.0
// means the policy beats ondemand on that workload.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("E3", "learning curve over training episodes",
                      "policy convergence figure (3 seeds, normalized to "
                      "ondemand)");

  constexpr std::size_t kEpisodes = 100;
  constexpr std::uint64_t kSeeds[] = {11, 22, 33};

  auto engine = bench::make_default_engine();

  // Reference E/QoS of ondemand per (scenario, workload seed).
  auto ondemand = governors::make_governor("ondemand");
  std::map<std::pair<std::string, std::uint64_t>, double> reference;
  auto reference_for = [&](const std::string& scenario_name,
                           workload::ScenarioKind kind, std::uint64_t seed) {
    const auto key = std::make_pair(scenario_name, seed);
    auto it = reference.find(key);
    if (it == reference.end()) {
      auto scenario = workload::make_scenario(kind, seed);
      const auto run = engine.run(*scenario, *ondemand);
      it = reference.emplace(key, run.energy_per_qos).first;
    }
    return it->second;
  };

  const auto kinds = workload::all_scenario_kinds();
  // ratio[seed][episode]
  std::vector<std::vector<double>> ratios;
  std::vector<std::vector<double>> violations;
  for (const auto seed : kSeeds) {
    rl::RlGovernorConfig config;
    config.learning.seed = seed;
    rl::RlGovernor governor(config, engine.soc_config().clusters.size());
    rl::TrainerConfig train_cfg;
    train_cfg.episodes = kEpisodes;
    train_cfg.workload_seed = seed;
    rl::Trainer trainer(engine, governor, train_cfg);
    std::vector<double> seed_ratios;
    std::vector<double> seed_viol;
    for (std::size_t e = 0; e < kEpisodes; ++e) {
      const auto kind = kinds[e % kinds.size()];
      const auto result = trainer.train_episode(e, kind);
      const double ref = reference_for(result.scenario, kind, seed + e);
      seed_ratios.push_back(ref > 0.0 ? result.energy_per_qos / ref : 1.0);
      seed_viol.push_back(result.violation_rate);
    }
    ratios.push_back(std::move(seed_ratios));
    violations.push_back(std::move(seed_viol));
  }

  TextTable table({"episode", "epsilon", "E/QoS vs ondemand (mean of 3)",
                   "violation rate"});
  const double eps_start = 0.60;
  const double eps_end = 0.02;
  for (std::size_t e = 0; e < kEpisodes; e += 6) {
    // Smooth over a full 6-episode scenario rotation.
    double ratio = 0.0;
    double viol = 0.0;
    std::size_t n = 0;
    for (std::size_t k = e; k < std::min(e + 6, kEpisodes); ++k) {
      for (std::size_t s = 0; s < ratios.size(); ++s) {
        ratio += ratios[s][k];
        viol += violations[s][k];
        ++n;
      }
    }
    const double progress = std::min(1.0, (e + 1) / 40.0);
    table.add_row(
        {std::to_string(e) + "-" + std::to_string(e + 5),
         TextTable::num(eps_start + (eps_end - eps_start) * progress, 3),
         TextTable::num(ratio / n, 3), TextTable::percent(viol / n)});
  }
  table.print();

  double head = 0.0;
  double tail = 0.0;
  for (std::size_t s = 0; s < ratios.size(); ++s) {
    for (std::size_t e = 0; e < 18; ++e) head += ratios[s][e];
    for (std::size_t e = kEpisodes - 18; e < kEpisodes; ++e) {
      tail += ratios[s][e];
    }
  }
  head /= 3 * 18;
  tail /= 3 * 18;
  std::printf("\nE/QoS vs ondemand, first 18 episodes: %.3f\n", head);
  std::printf("E/QoS vs ondemand, last 18 episodes:  %.3f\n", tail);
  std::printf("expected shape: ratio starts well above 1 (exploring) and "
              "converges to ~1 or below as epsilon decays.\n");
  return 0;
}
