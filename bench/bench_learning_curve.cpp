// E3 — learning curve: energy per QoS across training episodes, over three
// seeds. Because training rotates through the six scenarios (whose E/QoS
// scales differ by 3x), each episode is normalized by the ondemand
// governor's E/QoS on the *same* scenario and seed; a ratio below 1.0
// means the policy beats ondemand on that workload.

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("E3", "learning curve over training episodes",
                      "policy convergence figure (3 seeds, normalized to "
                      "ondemand)");

  constexpr std::size_t kEpisodes = 100;
  constexpr std::uint64_t kSeeds[] = {11, 22, 33};
  constexpr std::size_t kSeedCount = sizeof(kSeeds) / sizeof(kSeeds[0]);

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));
  const auto kinds = workload::all_scenario_kinds();

  // Reference E/QoS of ondemand per (seed, episode). Ondemand is stateless,
  // so every reference run is an independent farm unit: 300 RunSpecs fanned
  // across the pool. refs[s * kEpisodes + e] matches episode e of seed s.
  std::vector<core::runfarm::RunSpec> specs;
  specs.reserve(kSeedCount * kEpisodes);
  for (const auto seed : kSeeds) {
    for (std::size_t e = 0; e < kEpisodes; ++e) {
      core::runfarm::RunSpec spec;
      spec.kind = kinds[e % kinds.size()];
      spec.seed = seed + e;
      spec.make_governor = [] { return governors::make_governor("ondemand"); };
      specs.push_back(std::move(spec));
    }
  }
  const auto refs = farm.run_all(specs, "ondemand-ref", /*show_progress=*/true);
  bench::print_farm_timing("ondemand-ref", refs.size(),
                           farm.last_stats().wall_s,
                           farm.last_stats().run_s_total, farm.jobs());

  // The three training seeds are independent chains (each trainer's RNG and
  // workload seeds derive from its own seed) — one farm task per seed; the
  // 100 episodes inside a seed are inherently sequential (online learning).
  struct SeedCurve {
    std::vector<double> ratios;
    std::vector<double> violations;
  };
  std::vector<std::function<SeedCurve()>> seed_tasks;
  for (std::size_t s = 0; s < kSeedCount; ++s) {
    const std::uint64_t seed = kSeeds[s];
    seed_tasks.push_back([&farm, &kinds, &refs, s, seed] {
      core::SimEngine engine(farm.soc_config(), farm.engine_config());
      rl::RlGovernorConfig config;
      config.learning.seed = seed;
      rl::RlGovernor governor(config, engine.soc_config().clusters.size());
      rl::TrainerConfig train_cfg;
      train_cfg.episodes = kEpisodes;
      train_cfg.workload_seed = seed;
      rl::Trainer trainer(engine, governor, train_cfg);
      SeedCurve curve;
      for (std::size_t e = 0; e < kEpisodes; ++e) {
        const auto kind = kinds[e % kinds.size()];
        const auto result = trainer.train_episode(e, kind);
        const double ref = refs[s * kEpisodes + e].energy_per_qos;
        curve.ratios.push_back(ref > 0.0 ? result.energy_per_qos / ref : 1.0);
        curve.violations.push_back(result.violation_rate);
      }
      return curve;
    });
  }
  const auto curves =
      bench::farm_map_timed<SeedCurve>(farm, "train-seeds", seed_tasks);

  // ratio[seed][episode]
  std::vector<std::vector<double>> ratios;
  std::vector<std::vector<double>> violations;
  for (auto& curve : curves) {
    ratios.push_back(curve.ratios);
    violations.push_back(curve.violations);
  }

  TextTable table({"episode", "epsilon", "E/QoS vs ondemand (mean of 3)",
                   "violation rate"});
  const double eps_start = 0.60;
  const double eps_end = 0.02;
  for (std::size_t e = 0; e < kEpisodes; e += 6) {
    // Smooth over a full 6-episode scenario rotation.
    double ratio = 0.0;
    double viol = 0.0;
    std::size_t n = 0;
    for (std::size_t k = e; k < std::min(e + 6, kEpisodes); ++k) {
      for (std::size_t s = 0; s < ratios.size(); ++s) {
        ratio += ratios[s][k];
        viol += violations[s][k];
        ++n;
      }
    }
    const double progress = std::min(1.0, (e + 1) / 40.0);
    table.add_row(
        {std::to_string(e) + "-" + std::to_string(e + 5),
         TextTable::num(eps_start + (eps_end - eps_start) * progress, 3),
         TextTable::num(ratio / n, 3), TextTable::percent(viol / n)});
  }
  table.print();

  double head = 0.0;
  double tail = 0.0;
  for (std::size_t s = 0; s < ratios.size(); ++s) {
    for (std::size_t e = 0; e < 18; ++e) head += ratios[s][e];
    for (std::size_t e = kEpisodes - 18; e < kEpisodes; ++e) {
      tail += ratios[s][e];
    }
  }
  head /= 3 * 18;
  tail /= 3 * 18;
  std::printf("\nE/QoS vs ondemand, first 18 episodes: %.3f\n", head);
  std::printf("E/QoS vs ondemand, last 18 episodes:  %.3f\n", tail);
  std::printf("expected shape: ratio starts well above 1 (exploring) and "
              "converges to ~1 or below as epsilon decays.\n");
  return 0;
}
