// A2 — ablation over the hardware number format: the fixed-point policy
// (bit-exact with the FPGA datapath model) swept across fractional widths,
// against the double-precision software policy. Shows how little precision
// tabular Q-learning needs — the basis for the 16-bit hardware Q memory.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("A2", "fixed-point precision ablation",
                      "hardware number-format design choice (Q-format sweep)");

  auto engine = bench::make_default_engine();
  TextTable table({"agent arithmetic", "Q lsb", "mean E/QoS [J]",
                   "violation rate", "mean energy [J]"});

  // Float reference.
  {
    auto trained = bench::train_default_policy(engine);
    const auto summary = bench::evaluate_policy(engine, *trained.governor);
    table.add_row({"double (software)", "-",
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1)});
  }

  for (const unsigned frac : {4u, 6u, 8u, 10u, 12u}) {
    rl::RlGovernorConfig config;
    config.backend = rl::AgentBackend::Fixed;
    config.fixed_total_bits = 16;
    config.fixed_frac_bits = frac;
    auto trained = bench::train_default_policy(
        engine, bench::kDefaultEpisodes, bench::kTrainSeed, config);
    const auto summary = bench::evaluate_policy(engine, *trained.governor);
    char label[32];
    std::snprintf(label, sizeof label, "Q%u.%u fixed", 15 - frac, frac);
    char lsb[32];
    std::snprintf(lsb, sizeof lsb, "2^-%u", frac);
    table.add_row({label, lsb,
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: >= 8 fractional bits matches the float policy "
      "closely (Q6.10 is the hardware default); 4 bits quantizes the "
      "TD updates too coarsely.\n");
  return 0;
}
