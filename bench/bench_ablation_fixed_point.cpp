// A2 — ablation over the hardware number format: the fixed-point policy
// (bit-exact with the FPGA datapath model) swept across fractional widths,
// against the double-precision software policy. Shows how little precision
// tabular Q-learning needs — the basis for the 16-bit hardware Q memory.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A2", "fixed-point precision ablation",
                      "hardware number-format design choice (Q-format sweep)");

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));

  // Task 0 is the float reference; tasks 1..5 sweep the fractional width.
  const unsigned fracs[] = {4u, 6u, 8u, 10u, 12u};
  std::vector<std::function<bench::TrainEval()>> tasks;
  tasks.push_back(
      [&farm] { return bench::train_and_evaluate(farm, {}); });
  for (const unsigned frac : fracs) {
    tasks.push_back([&farm, frac] {
      rl::RlGovernorConfig config;
      config.backend = rl::AgentBackend::Fixed;
      config.fixed_total_bits = 16;
      config.fixed_frac_bits = frac;
      return bench::train_and_evaluate(farm, config);
    });
  }
  const auto results =
      bench::farm_map_timed<bench::TrainEval>(farm, "q-formats", tasks);

  TextTable table({"agent arithmetic", "Q lsb", "mean E/QoS [J]",
                   "violation rate", "mean energy [J]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& summary = results[i].summary;
    char label[32];
    char lsb[32];
    if (i == 0) {
      std::snprintf(label, sizeof label, "double (software)");
      std::snprintf(lsb, sizeof lsb, "-");
    } else {
      const unsigned frac = fracs[i - 1];
      std::snprintf(label, sizeof label, "Q%u.%u fixed", 15 - frac, frac);
      std::snprintf(lsb, sizeof lsb, "2^-%u", frac);
    }
    table.add_row({label, lsb,
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: >= 8 fractional bits matches the float policy "
      "closely (Q6.10 is the hardware default); 4 bits quantizes the "
      "TD updates too coarsely.\n");
  return 0;
}
