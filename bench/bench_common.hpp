#pragma once
// Shared harness pieces for the reproduction benches: default engine
// construction, policy training, multi-scenario evaluation, and uniform
// headers so every bench's output is self-describing.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "rl/trainer.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::bench {

/// Workload seed used for all held-out evaluations (training uses a
/// different base seed, so evaluation job sequences are unseen).
inline constexpr std::uint64_t kEvalSeed = 9001;
/// Base seed for training workloads.
inline constexpr std::uint64_t kTrainSeed = 42;
/// Default training length (episodes); the learning curve flattens by ~40.
inline constexpr std::size_t kDefaultEpisodes = 60;

/// Engine over the default big.LITTLE mobile SoC.
core::SimEngine make_default_engine();

/// A trained RL policy plus its learning curve.
struct TrainedPolicy {
  std::unique_ptr<rl::RlGovernor> governor;
  std::vector<rl::EpisodeResult> curve;
};

/// Trains the default (factored, float) policy across all six scenarios.
TrainedPolicy train_default_policy(core::SimEngine& engine,
                                   std::size_t episodes = kDefaultEpisodes,
                                   std::uint64_t seed = kTrainSeed,
                                   rl::RlGovernorConfig config = {});

/// Evaluates a policy on the given scenarios (default: all six) with the
/// held-out seed.
core::PolicySummary evaluate_policy(
    core::SimEngine& engine, governors::Governor& governor,
    std::uint64_t seed = kEvalSeed,
    const std::vector<workload::ScenarioKind>& kinds =
        workload::all_scenario_kinds());

/// Evaluates all six baseline governors.
std::vector<core::PolicySummary> evaluate_baselines(
    core::SimEngine& engine, std::uint64_t seed = kEvalSeed);

/// Prints the bench banner: experiment id, title, and which paper artifact
/// it regenerates.
void print_banner(const char* exp_id, const char* title,
                  const char* paper_ref);

}  // namespace pmrl::bench
