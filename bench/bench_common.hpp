#pragma once
// Shared harness pieces for the reproduction benches: default engine
// construction, policy training, multi-scenario evaluation, run-farm
// helpers (--jobs parsing, timed parallel maps), and uniform headers so
// every bench's output is self-describing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/runfarm/runfarm.hpp"
#include "rl/trainer.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::bench {

/// Workload seed used for all held-out evaluations (training uses a
/// different base seed, so evaluation job sequences are unseen).
inline constexpr std::uint64_t kEvalSeed = 9001;
/// Base seed for training workloads.
inline constexpr std::uint64_t kTrainSeed = 42;
/// Default training length (episodes); the learning curve flattens by ~40.
inline constexpr std::size_t kDefaultEpisodes = 60;

/// Engine over the default big.LITTLE mobile SoC.
core::SimEngine make_default_engine();

/// Parses `--jobs N` / `--jobs=N` from the bench's argv. Returns 0 when the
/// flag is absent, which lets RunFarm fall back to PMRL_JOBS / hardware
/// concurrency (see runfarm::default_jobs). Exits with a message on a
/// malformed value.
std::size_t jobs_from_args(int argc, char** argv);

/// Run farm over the default big.LITTLE SoC (jobs as in RunFarm: 0 =
/// default_jobs(), 1 = inline serial execution).
core::runfarm::RunFarm make_default_farm(std::size_t jobs = 0);

/// A trained RL policy plus its learning curve.
struct TrainedPolicy {
  std::unique_ptr<rl::RlGovernor> governor;
  std::vector<rl::EpisodeResult> curve;
};

/// Trains the default (factored, float) policy across all six scenarios.
TrainedPolicy train_default_policy(core::SimEngine& engine,
                                   std::size_t episodes = kDefaultEpisodes,
                                   std::uint64_t seed = kTrainSeed,
                                   rl::RlGovernorConfig config = {});

/// Evaluates a policy on the given scenarios (default: all six) with the
/// held-out seed. Scenarios run serially in order on the caller's engine,
/// sharing the governor instance (learning governors keep their state).
core::PolicySummary evaluate_policy(
    core::SimEngine& engine, governors::Governor& governor,
    std::uint64_t seed = kEvalSeed,
    const std::vector<workload::ScenarioKind>& kinds =
        workload::all_scenario_kinds());

/// Evaluates all six baseline governors serially.
std::vector<core::PolicySummary> evaluate_baselines(
    core::SimEngine& engine, std::uint64_t seed = kEvalSeed);

/// Farm-parallel evaluate_baselines: one farm task per baseline governor.
/// Inside a task the six scenarios still run serially on a task-local
/// engine with a task-local governor instance, so per-policy semantics
/// (governor reuse across scenarios) — and therefore the numbers — are
/// bit-identical to the serial variant above.
std::vector<core::PolicySummary> evaluate_baselines(
    core::runfarm::RunFarm& farm, std::uint64_t seed = kEvalSeed);

/// One ablation unit: a policy trained with `config` and evaluated on all
/// six scenarios, everything on a task-local engine built from the farm's
/// SoC/engine configs. This is the standard per-config farm task of the
/// ablation benches.
struct TrainEval {
  TrainedPolicy trained;
  core::PolicySummary summary;
};
TrainEval train_and_evaluate(const core::runfarm::RunFarm& farm,
                             rl::RlGovernorConfig config,
                             std::size_t episodes = kDefaultEpisodes,
                             std::uint64_t train_seed = kTrainSeed,
                             std::uint64_t eval_seed = kEvalSeed);

/// Minimal extraction of the first `"key": <number>` in a JSON file —
/// enough for the one headline value a regression gate compares. Returns
/// false when the file or key is missing.
bool read_json_number(const std::string& path, const std::string& key,
                      double* out);

/// Shared perf-regression gate (`--check BASELINE.json --check-tolerance
/// X`): compares `measured` against `key` in the baseline file and prints
/// the verdict. Returns 0 on pass, 2 when the baseline is unreadable, 3 on
/// regression (measured below baseline * (1 - tolerance)).
int check_against_baseline(const std::string& check_path,
                           const std::string& key, double measured,
                           double tolerance);

/// Prints the bench banner: experiment id, title, and which paper artifact
/// it regenerates. Also starts the bench wall-clock; at process exit the
/// total elapsed time is printed to stderr.
void print_banner(const char* exp_id, const char* title,
                  const char* paper_ref);

/// Prints a one-line timing summary for a farmed batch to stderr:
/// "[farm:label] N tasks, X s wall, Y s serial-equivalent (Z.ZZx, jobs=J)".
void print_farm_timing(const std::string& label, std::size_t tasks,
                       double wall_s, double run_s_total, std::size_t jobs);

/// Ordered parallel map over the farm's pool with per-task and wall-clock
/// timing; prints the timing summary line when done. Use for coarse units
/// (a whole training, a config's train+eval) that are independent of each
/// other but inherently sequential inside.
template <typename T>
std::vector<T> farm_map_timed(core::runfarm::RunFarm& farm,
                              const std::string& label,
                              const std::vector<std::function<T()>>& tasks) {
  using Clock = std::chrono::steady_clock;
  std::atomic<std::int64_t> run_ns{0};
  std::vector<std::function<T()>> timed;
  timed.reserve(tasks.size());
  for (const auto& task : tasks) {
    timed.push_back([&run_ns, &task]() -> T {
      const auto t0 = Clock::now();
      T result = task();
      run_ns.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count(),
          std::memory_order_relaxed);
      return result;
    });
  }
  const auto wall0 = Clock::now();
  auto results = farm.map<T>(timed);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  print_farm_timing(label, tasks.size(), wall_s,
                    static_cast<double>(run_ns.load()) * 1e-9, farm.jobs());
  return results;
}

}  // namespace pmrl::bench
