// TRAIN — throughput and determinism of the distributed Q-learning
// pipeline (DistributedTrainer sharding episodes over run-farm actors,
// QMerge reducing the per-actor deltas). Measures:
//   1. end-to-end training episodes/sec at --jobs 1 / 2 / 4 for the same
//      (episodes, actors, seeds) configuration — the parallel-actor
//      speedup the subsystem exists for,
//   2. QMerge reduction throughput in cells/sec (a cell is one (state,
//      action) slot of one agent's delta), timed over repeated merges of
//      the real actor deltas,
//   3. the serial-vs-parallel identity check: the merged checkpoint image
//      at jobs 2 and 4 must equal the jobs-1 image bit for bit (the
//      subsystem's central contract; a mismatch fails the bench).
// Emits BENCH_train.json; `--check BENCH_train.json [--check-tolerance X]`
// gates on train_episodes_per_sec like the other benches do on their
// headline numbers.
//
// Throughput numbers are host-dependent; the identity flag is not.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/runfarm/runfarm.hpp"
#include "rl/policy_io.hpp"
#include "soc/soc.hpp"
#include "train/distributed_trainer.hpp"
#include "train/qmerge.hpp"

using namespace pmrl;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct JobsRow {
  std::size_t jobs = 0;
  double wall_s = 0.0;
  double episodes_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t episodes = 24;
  std::size_t actors = 4;
  std::uint64_t seed = bench::kTrainSeed;
  std::uint64_t merge_seed = 1;
  double duration_s = 6.0;
  std::size_t reps = 3;
  std::string out_path = "BENCH_train.json";
  std::string check_path;
  double check_tolerance = 0.30;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag, int len) -> const char* {
      if (std::strncmp(arg, flag, static_cast<std::size_t>(len)) == 0 &&
          arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--episodes", 10)) {
      episodes = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v2 = value("--actors", 8)) {
      actors = static_cast<std::size_t>(std::atoll(v2));
    } else if (const char* v3 = value("--seed", 6)) {
      seed = static_cast<std::uint64_t>(std::atoll(v3));
    } else if (const char* v4 = value("--merge-seed", 12)) {
      merge_seed = static_cast<std::uint64_t>(std::atoll(v4));
    } else if (const char* v5 = value("--duration", 10)) {
      duration_s = std::atof(v5);
    } else if (const char* v6 = value("--reps", 6)) {
      reps = static_cast<std::size_t>(std::atoll(v6));
    } else if (const char* v7 = value("--out", 5)) {
      out_path = v7;
    } else if (const char* v8 = value("--check", 7)) {
      check_path = v8;
    } else if (const char* v9 = value("--check-tolerance", 17)) {
      check_tolerance = std::atof(v9);
    }
  }
  if (reps == 0) reps = 1;
  if (episodes == 0 || actors == 0 || duration_s <= 0.0) {
    std::fprintf(stderr, "--episodes, --actors, --duration must be positive\n");
    return 2;
  }

  bench::print_banner("TRAIN", "distributed Q-learning + QMerge reduction",
                      "parallel-actor training cost and bit-identity");
  std::printf("episodes=%zu actors=%zu seed=%llu merge-seed=%llu "
              "episode-duration=%.1fs\n\n",
              episodes, actors, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(merge_seed), duration_s);

  core::EngineConfig engine_config;
  engine_config.duration_s = duration_s;
  rl::RlGovernorConfig policy;
  policy.learning.seed = seed;
  train::DistributedTrainerConfig train_config;
  train_config.schedule.episodes = episodes;
  train_config.actors = actors;
  train_config.merge_seed = merge_seed;

  // ---- episodes/sec at jobs 1 / 2 / 4 -----------------------------------
  // Walls are best-of-`reps`: the minimum is the least-perturbed
  // observation of the same deterministic computation.
  std::vector<JobsRow> rows;
  std::vector<std::string> images;    // merged checkpoint per jobs count
  train::DistributedTrainResult last_result;
  std::size_t cluster_count = 0;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                                engine_config, jobs);
    cluster_count = farm.soc_config().clusters.size();
    train::DistributedTrainer trainer(farm, policy, cluster_count,
                                      train_config);
    JobsRow row;
    row.jobs = jobs;
    std::string image;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      rl::RlGovernor merged(policy, cluster_count);
      const auto t0 = Clock::now();
      auto result = trainer.train(merged);
      const double wall = seconds_since(t0);
      if (rep == 0 || wall < row.wall_s) row.wall_s = wall;
      std::ostringstream out;
      rl::save_policy(merged, out);
      image = out.str();
      last_result = std::move(result);
    }
    row.episodes_per_sec = static_cast<double>(episodes) / row.wall_s;
    std::printf("jobs %zu: %.2f s wall, %.3g episodes/s%s\n", jobs,
                row.wall_s, row.episodes_per_sec,
                jobs == 1 ? "" : (image == images[0]
                                      ? ", merged table identical to jobs 1"
                                      : ", MERGED TABLE DIVERGED"));
    images.push_back(std::move(image));
    rows.push_back(row);
  }
  bool deterministic = true;
  for (const auto& image : images) {
    deterministic = deterministic && image == images[0];
  }
  const JobsRow& headline = rows.back();  // jobs 4
  std::printf("parallel speedup (jobs 4 / jobs 1): %.2fx\n",
              headline.episodes_per_sec / rows.front().episodes_per_sec);

  // ---- QMerge reduction throughput --------------------------------------
  // Merges the real deltas of the last run repeatedly; a cell is one
  // (state, action) slot of one agent's delta.
  std::size_t cells_per_merge = 0;
  for (const auto& delta : last_result.deltas) {
    for (const auto& agent : delta.agents) {
      cells_per_merge += agent.states * agent.actions;
    }
  }
  double merge_wall = 0.0;
  constexpr std::size_t kMergeIters = 200;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t iter = 0; iter < kMergeIters; ++iter) {
      rl::RlGovernor merged(policy, cluster_count);
      train::merge_into(merged, last_result.deltas, merge_seed);
    }
    const double wall = seconds_since(t0);
    if (rep == 0 || wall < merge_wall) merge_wall = wall;
  }
  const double merge_cells_per_sec =
      static_cast<double>(cells_per_merge * kMergeIters) / merge_wall;
  std::printf("qmerge: %zu cells/merge, %.3g cells/s (%zu merges in "
              "%.3f s)\n",
              cells_per_merge, merge_cells_per_sec, kMergeIters, merge_wall);

  // ---- JSON --------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"train\",\n");
  std::fprintf(out, "  \"episodes\": %zu,\n", episodes);
  std::fprintf(out, "  \"actors\": %zu,\n", actors);
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"merge_seed\": %llu,\n",
               static_cast<unsigned long long>(merge_seed));
  std::fprintf(out, "  \"episode_duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"reps\": %zu,\n", reps);
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"jobs_sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"jobs\": %zu, \"wall_s\": %.6f, "
                 "\"episodes_per_sec\": %.3f}%s\n",
                 rows[i].jobs, rows[i].wall_s, rows[i].episodes_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"merge_cells_per_merge\": %zu,\n", cells_per_merge);
  std::fprintf(out, "  \"merge_cells_per_sec\": %.1f,\n",
               merge_cells_per_sec);
  // Headline: jobs-4 training throughput. Key is unique file-wide so the
  // --check gate's first-occurrence JSON scan finds exactly it.
  std::fprintf(out, "  \"train_episodes_per_sec\": %.3f,\n",
               headline.episodes_per_sec);
  std::fprintf(out, "  \"merged_table_identical_across_jobs\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  int exit_code = deterministic ? 0 : 1;
  if (!check_path.empty()) {
    const int rc = bench::check_against_baseline(
        check_path, "train_episodes_per_sec", headline.episodes_per_sec,
        check_tolerance);
    if (rc == 2) return 2;
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
