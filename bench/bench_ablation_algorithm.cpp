// A6 — ablation of the TD-control algorithm: plain Q-learning (what the
// paper's hardware implements) vs Double Q-learning (overestimation-bias
// correction) vs Expected SARSA (on-policy expectation). Shows that plain
// Q-learning is adequate at this problem size — the justification for the
// simple single-Q-memory datapath.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A6", "TD-control algorithm ablation",
                      "single-Q-memory hardware design justification");
  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));

  const rl::TdAlgorithm algorithms[] = {rl::TdAlgorithm::QLearning,
                                        rl::TdAlgorithm::DoubleQ,
                                        rl::TdAlgorithm::ExpectedSarsa};
  std::vector<std::function<bench::TrainEval()>> tasks;
  for (const auto algorithm : algorithms) {
    tasks.push_back([&farm, algorithm] {
      rl::RlGovernorConfig config;
      config.learning.algorithm = algorithm;
      return bench::train_and_evaluate(farm, config);
    });
  }
  const auto results =
      bench::farm_map_timed<bench::TrainEval>(farm, "algorithms", tasks);

  TextTable table({"algorithm", "mean E/QoS [J]", "violation rate",
                   "mean energy [J]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& summary = results[i].summary;
    table.add_row({rl::td_algorithm_name(algorithms[i]),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: all three land within a few percent — tabular "
      "overestimation bias is mild at this state size, so the hardware's "
      "plain Q-learning loses nothing.\n");
  return 0;
}
