// A6 — ablation of the TD-control algorithm: plain Q-learning (what the
// paper's hardware implements) vs Double Q-learning (overestimation-bias
// correction) vs Expected SARSA (on-policy expectation). Shows that plain
// Q-learning is adequate at this problem size — the justification for the
// simple single-Q-memory datapath.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("A6", "TD-control algorithm ablation",
                      "single-Q-memory hardware design justification");

  auto engine = bench::make_default_engine();
  TextTable table({"algorithm", "mean E/QoS [J]", "violation rate",
                   "mean energy [J]"});
  for (const auto algorithm :
       {rl::TdAlgorithm::QLearning, rl::TdAlgorithm::DoubleQ,
        rl::TdAlgorithm::ExpectedSarsa}) {
    rl::RlGovernorConfig config;
    config.learning.algorithm = algorithm;
    auto trained = bench::train_default_policy(
        engine, bench::kDefaultEpisodes, bench::kTrainSeed, config);
    const auto summary = bench::evaluate_policy(engine, *trained.governor);
    table.add_row({rl::td_algorithm_name(algorithm),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: all three land within a few percent — tabular "
      "overestimation bias is mild at this state size, so the hardware's "
      "plain Q-learning loses nothing.\n");
  return 0;
}
