// FUZZ — throughput baseline for the adversarial scenario fuzzer. Runs a
// seed batch through the FuzzDriver at 1/2/4/N worker threads, reporting
// scenarios/sec and cross-checking that the farmed outcomes are
// bit-identical to the serial ones (the RNG-stream isolation guarantee the
// nightly fuzz job leans on). A second phase times the delta-debugging
// shrinker on a planted energy-budget violation. Emits BENCH_fuzz.json so
// CI can diff fuzzing throughput against a recorded baseline.
//
// Throughput numbers are host-dependent; the determinism flag is not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fuzz_driver.hpp"
#include "rl/batch_argmax.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {

bool same_outcomes(const std::vector<core::FuzzOutcome>& a,
                   const std::vector<core::FuzzOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].spec.seed != b[i].spec.seed ||
        a[i].result.energy_j != b[i].result.energy_j ||
        a[i].result.quality != b[i].result.quality ||
        a[i].result.violations != b[i].result.violations ||
        a[i].violations.size() != b[i].violations.size()) {
      return false;
    }
    for (std::size_t v = 0; v < a[i].violations.size(); ++v) {
      if (a[i].violations[v].invariant != b[i].violations[v].invariant) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 200;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      runs = static_cast<std::size_t>(std::atol(arg + 7));
    } else if (std::strcmp(arg, "--runs") == 0 && i + 1 < argc) {
      runs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (runs == 0) {
    std::fprintf(stderr, "--runs needs a positive count\n");
    return 2;
  }
  std::size_t jobs_max = bench::jobs_from_args(argc, argv);
  if (jobs_max == 0) jobs_max = core::runfarm::default_jobs();

  bench::print_banner("FUZZ", "scenario-fuzzer throughput + determinism",
                      "robustness baseline (BENCH_fuzz.json), not a paper "
                      "figure");

  using Clock = std::chrono::steady_clock;
  std::vector<std::size_t> levels = {1, 2, 4};
  if (std::find(levels.begin(), levels.end(), jobs_max) == levels.end()) {
    levels.push_back(jobs_max);
  }

  struct Level {
    std::size_t jobs = 0;
    double wall_s = 0.0;
    double scenarios_per_sec = 0.0;
  };
  std::vector<Level> measured;
  std::vector<core::FuzzOutcome> serial_outcomes;
  std::vector<core::FuzzOutcome> threaded_outcomes;
  std::size_t failures = 0;
  for (const std::size_t jobs : levels) {
    core::FuzzDriverConfig config;
    config.jobs = jobs;
    core::FuzzDriver driver(config);
    const auto t0 = Clock::now();
    auto outcomes = driver.run_batch(seed, runs);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    measured.push_back(
        {jobs, wall_s,
         wall_s > 0.0 ? static_cast<double>(runs) / wall_s : 0.0});
    if (jobs == 1) {
      failures = 0;
      for (const auto& outcome : outcomes) {
        if (!outcome.ok()) ++failures;
      }
      serial_outcomes = std::move(outcomes);
    }
    if (jobs == 4) threaded_outcomes = std::move(outcomes);
  }
  const bool deterministic =
      same_outcomes(serial_outcomes, threaded_outcomes);

  TextTable table({"jobs", "wall [s]", "scenarios/sec"});
  for (const auto& level : measured) {
    table.add_row({std::to_string(level.jobs),
                   TextTable::num(level.wall_s, 2),
                   TextTable::num(level.scenarios_per_sec, 1)});
  }
  table.print();
  std::printf("invariant failures at default bounds: %zu/%zu\n", failures,
              runs);
  std::printf("serial vs 4-thread outcomes: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  // Shrinker timing: plant an always-firing energy budget so the first
  // generated spec fails, then time the delta-debugging loop.
  core::FuzzDriverConfig planted_config;
  planted_config.invariants.max_energy_j = 0.0;
  core::FuzzDriver planted(planted_config);
  const auto failing = planted.run_spec(workload::generate_fuzz_spec(seed));
  const auto s0 = Clock::now();
  const auto shrunk = planted.shrink(failing);
  const double shrink_wall_s =
      std::chrono::duration<double>(Clock::now() - s0).count();
  const double candidates_per_sec =
      shrink_wall_s > 0.0
          ? static_cast<double>(shrunk.attempts) / shrink_wall_s
          : 0.0;
  std::printf(
      "shrink (planted energy-budget): %zu candidate runs, %zu accepted, "
      "%.2f s (%.1f candidates/sec)\n",
      shrunk.attempts, shrunk.accepted, shrink_wall_s, candidates_per_sec);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"fuzz\",\n");
  std::fprintf(out, "  \"runs\": %zu,\n", runs);
  std::fprintf(out, "  \"base_seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"failures_at_default_bounds\": %zu,\n", failures);
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"effective_jobs\": %zu,\n", jobs_max);
  std::fprintf(out, "  \"simd_backend\": \"%s\",\n", rl::batch_argmax_backend());
  std::fprintf(out, "  \"levels\": [\n");
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& level = measured[i];
    std::fprintf(out,
                 "    {\"jobs\": %zu, \"wall_s\": %.6f, "
                 "\"scenarios_per_sec\": %.2f}%s\n",
                 level.jobs, level.wall_s, level.scenarios_per_sec,
                 i + 1 < measured.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"shrink\": {\n");
  std::fprintf(out, "    \"attempts\": %zu,\n", shrunk.attempts);
  std::fprintf(out, "    \"accepted\": %zu,\n", shrunk.accepted);
  std::fprintf(out, "    \"wall_s\": %.6f,\n", shrink_wall_s);
  std::fprintf(out, "    \"candidates_per_sec\": %.2f\n",
               candidates_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"deterministic_serial_vs_4_threads\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}
