// FLEET — throughput and scaling of the SoA fleet engine. Measures:
//   1. the AoS per-device-engine baseline (one heap object per phone,
//      power model re-evaluated every tick, exactly like SimEngine) on a
//      subsample of the fleet,
//   2. SoA single-thread device-ticks/sec on the full fleet and the
//      resulting SoA-vs-AoS speedup (the numbers are bit-identical, so the
//      speedup is pure layout + epoch hoisting + batched argmax),
//   3. run-farm scaling of the block shards at 1/2/4/8 jobs, with a
//      bit-identity cross-check of the aggregates at every level,
//   4. the fleet's energy-per-QoS distribution (p50/p95/p99 J per
//      delivered capacity-second across devices).
// Emits BENCH_fleet.json; `--check BENCH_fleet.json [--check-tolerance X]`
// gates on device_ticks_per_sec like bench_serve/bench_perf do on their
// headline numbers.
//
// Speedup and scaling numbers are host-dependent; the determinism flag and
// the fleet aggregates are not.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fleet/device_engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "rl/batch_argmax.hpp"

using namespace pmrl;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_aggregates(const fleet::FleetResult& a, const fleet::FleetResult& b) {
  return a.energy_j == b.energy_j && a.served == b.served &&
         a.demand == b.demand && a.violation_epochs == b.violation_epochs &&
         a.battery_depleted == b.battery_depleted &&
         a.energy_per_served_p50 == b.energy_per_served_p50 &&
         a.energy_per_served_p99 == b.energy_per_served_p99;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 100000;
  std::size_t aos_devices = 10000;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_fleet.json";
  std::string check_path;
  double check_tolerance = 0.30;
  std::size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag, int len) -> const char* {
      if (std::strncmp(arg, flag, static_cast<std::size_t>(len)) == 0 &&
          arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--devices", 9)) {
      devices = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v2 = value("--aos-devices", 13)) {
      aos_devices = static_cast<std::size_t>(std::atoll(v2));
    } else if (const char* v3 = value("--duration", 10)) {
      duration_s = std::atof(v3);
    } else if (const char* v4 = value("--seed", 6)) {
      seed = static_cast<std::uint64_t>(std::atoll(v4));
    } else if (const char* v5 = value("--out", 5)) {
      out_path = v5;
    } else if (const char* v6 = value("--check", 7)) {
      check_path = v6;
    } else if (const char* v7 = value("--check-tolerance", 17)) {
      check_tolerance = std::atof(v7);
    } else if (const char* v8 = value("--reps", 6)) {
      reps = static_cast<std::size_t>(std::atoll(v8));
    }
  }
  if (reps == 0) reps = 1;
  if (devices == 0 || duration_s <= 0.0) {
    std::fprintf(stderr, "--devices and --duration must be positive\n");
    return 2;
  }
  aos_devices = std::min(aos_devices, devices);

  bench::print_banner("FLEET", "SoA fleet engine throughput + scaling",
                      "fleet-scale deployment study of the trained policy");
  std::printf("devices=%zu aos_sample=%zu duration=%.1fs simd=%s\n\n",
              devices, aos_devices, duration_s, rl::batch_argmax_backend());

  fleet::FleetConfig config;
  config.devices = devices;
  config.seed = seed;
  config.duration_s = duration_s;
  config.jobs = 1;

  // ---- AoS baseline: one engine object per device ------------------------
  fleet::FleetEngine fleet_engine(config);
  const fleet::FleetTiming timing = fleet_engine.timing();
  const fleet::FleetPolicy policy = fleet::FleetPolicy::default_policy();
  const double ticks_per_device =
      static_cast<double>(timing.epochs) *
      static_cast<double>(timing.ticks_per_epoch);

  // Walls are best-of-`reps` repetitions: on a shared box, one-shot timings
  // of sub-second regions swing by 2x; the minimum is the least-perturbed
  // observation of the same deterministic computation.
  double aos_wall = 0.0;
  double aos_energy = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto aos0 = Clock::now();
    double energy = 0.0;
    for (std::size_t d = 0; d < aos_devices; ++d) {
      const fleet::DeviceSpec& spec = fleet_engine.specs()[d];
      fleet::DeviceEngine engine(fleet_engine.archetypes()[spec.archetype],
                                 spec, policy, timing);
      engine.run();
      energy += engine.outcome().energy_j;
    }
    const double wall = seconds_since(aos0);
    if (rep == 0 || wall < aos_wall) aos_wall = wall;
    aos_energy = energy;
  }
  const double aos_ticks_per_sec =
      static_cast<double>(aos_devices) * ticks_per_device / aos_wall;
  std::printf("AoS baseline: %zu devices, %.2f s wall, %.3g device-ticks/s\n",
              aos_devices, aos_wall, aos_ticks_per_sec);

  // ---- SoA single thread -------------------------------------------------
  double soa_wall = 0.0;
  fleet::FleetResult serial;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto soa0 = Clock::now();
    fleet::FleetResult res = fleet_engine.run();
    const double wall = seconds_since(soa0);
    if (rep == 0 || wall < soa_wall) soa_wall = wall;
    serial = std::move(res);
  }
  const double soa_ticks_per_sec =
      static_cast<double>(serial.device_ticks) / soa_wall;
  const double speedup = soa_ticks_per_sec / aos_ticks_per_sec;
  std::printf("SoA serial:   %zu devices, %.2f s wall, %.3g device-ticks/s "
              "(%.2fx vs AoS)\n",
              devices, soa_wall, soa_ticks_per_sec, speedup);

  // Cross-check the subsample against the SoA stream: the baseline is only
  // a fair baseline if it computes the same simulation.
  {
    fleet::FleetConfig sub = config;
    sub.devices = aos_devices;
    sub.record_devices = true;
    fleet::FleetResult sub_result = fleet::FleetEngine(sub).run();
    double sub_energy = 0.0;
    for (const auto& o : sub_result.device_outcomes) sub_energy += o.energy_j;
    if (sub_energy != aos_energy) {
      // Reduction order differs (AoS sums device by device, fleet merges
      // block sums), so allow rounding-level slack only.
      const double rel = std::abs(sub_energy - aos_energy) / aos_energy;
      if (rel > 1e-9) {
        std::fprintf(stderr,
                     "AoS/SoA divergence: %.17g vs %.17g (rel %.3g)\n",
                     aos_energy, sub_energy, rel);
        return 1;
      }
    }
  }

  // ---- farm scaling ------------------------------------------------------
  struct ScalePoint {
    std::size_t jobs;
    double wall_s;
    double ticks_per_sec;
    bool identical;
  };
  std::vector<ScalePoint> scaling;
  bool deterministic = true;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    fleet::FleetConfig jc = config;
    jc.jobs = jobs;
    fleet::FleetEngine engine(jc);
    const auto t0 = Clock::now();
    const fleet::FleetResult r = engine.run();
    const double wall = seconds_since(t0);
    const bool identical = same_aggregates(serial, r);
    deterministic = deterministic && identical;
    scaling.push_back({jobs, wall,
                       static_cast<double>(r.device_ticks) / wall, identical});
    std::printf("jobs=%zu: %.2f s wall, %.3g device-ticks/s, speedup %.2fx, "
                "bit-identical=%s\n",
                jobs, wall, static_cast<double>(r.device_ticks) / wall,
                soa_wall / wall, identical ? "yes" : "NO");
  }

  std::printf("\nfleet aggregates: energy %.4g J, violation rate %.4f, "
              "batteries depleted %zu\n",
              serial.energy_j, serial.violation_rate,
              serial.battery_depleted);
  std::printf("energy-per-QoS J/cap-s: p50 %.3f  p95 %.3f  p99 %.3f "
              "(mean %.3f)\n",
              serial.energy_per_served_p50, serial.energy_per_served_p95,
              serial.energy_per_served_p99, serial.energy_per_served_mean);

  // ---- JSON --------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"fleet\",\n");
  std::fprintf(out, "  \"devices\": %zu,\n", devices);
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"reps\": %zu,\n", reps);
  std::fprintf(out, "  \"epochs\": %zu,\n", timing.epochs);
  std::fprintf(out, "  \"ticks_per_epoch\": %zu,\n", timing.ticks_per_epoch);
  std::fprintf(out, "  \"device_ticks\": %llu,\n",
               static_cast<unsigned long long>(serial.device_ticks));
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"effective_jobs\": %zu,\n",
               core::runfarm::default_jobs());
  std::fprintf(out, "  \"simd_backend\": \"%s\",\n",
               rl::batch_argmax_backend());
  std::fprintf(out, "  \"aos_baseline\": {\n");
  std::fprintf(out, "    \"devices\": %zu,\n", aos_devices);
  std::fprintf(out, "    \"wall_s\": %.6f,\n", aos_wall);
  std::fprintf(out, "    \"device_ticks_per_sec\": %.1f\n",
               aos_ticks_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"soa_single_thread\": {\n");
  std::fprintf(out, "    \"wall_s\": %.6f,\n", soa_wall);
  // Key is unique file-wide (unlike the aos block's) so the --check gate's
  // first-occurrence JSON scan finds exactly this number.
  std::fprintf(out, "    \"soa_device_ticks_per_sec\": %.1f,\n",
               soa_ticks_per_sec);
  std::fprintf(out, "    \"speedup_vs_aos\": %.3f\n", speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    std::fprintf(out,
                 "    {\"jobs\": %zu, \"wall_s\": %.6f, "
                 "\"device_ticks_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 p.jobs, p.wall_s, p.ticks_per_sec, soa_wall / p.wall_s,
                 p.identical ? "true" : "false",
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"fleet\": {\n");
  std::fprintf(out, "    \"energy_j\": %.6f,\n", serial.energy_j);
  std::fprintf(out, "    \"served_capacity_s\": %.6f,\n", serial.served);
  std::fprintf(out, "    \"violation_rate\": %.6f,\n",
               serial.violation_rate);
  std::fprintf(out, "    \"battery_depleted\": %zu,\n",
               serial.battery_depleted);
  std::fprintf(out, "    \"energy_per_served_mean\": %.6f,\n",
               serial.energy_per_served_mean);
  std::fprintf(out, "    \"energy_per_served_p50\": %.6f,\n",
               serial.energy_per_served_p50);
  std::fprintf(out, "    \"energy_per_served_p95\": %.6f,\n",
               serial.energy_per_served_p95);
  std::fprintf(out, "    \"energy_per_served_p99\": %.6f\n",
               serial.energy_per_served_p99);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"deterministic_across_jobs\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  int exit_code = deterministic ? 0 : 1;
  if (!check_path.empty()) {
    const int rc = bench::check_against_baseline(
        check_path, "soa_device_ticks_per_sec", soa_ticks_per_sec,
        check_tolerance);
    if (rc == 2) return 2;
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
