#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "governors/registry.hpp"

namespace pmrl::bench {

namespace {

using Clock = std::chrono::steady_clock;
Clock::time_point g_bench_start;

void print_total_wall_clock() {
  const double s =
      std::chrono::duration<double>(Clock::now() - g_bench_start).count();
  std::fprintf(stderr, "[bench] total wall-clock: %.2f s\n", s);
}

}  // namespace

core::SimEngine make_default_engine() {
  return core::SimEngine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});
}

std::size_t jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 < argc) value = argv[i + 1];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else {
      continue;
    }
    char* end = nullptr;
    const long jobs = value ? std::strtol(value, &end, 10) : -1;
    if (value == nullptr || end == value || *end != '\0' || jobs <= 0) {
      std::fprintf(stderr, "--jobs needs a positive integer\n");
      std::exit(2);
    }
    return static_cast<std::size_t>(jobs);
  }
  return 0;  // absent: RunFarm resolves PMRL_JOBS / hardware concurrency
}

core::runfarm::RunFarm make_default_farm(std::size_t jobs) {
  return core::runfarm::RunFarm(soc::default_mobile_soc_config(),
                                core::EngineConfig{}, jobs);
}

TrainedPolicy train_default_policy(core::SimEngine& engine,
                                   std::size_t episodes, std::uint64_t seed,
                                   rl::RlGovernorConfig config) {
  TrainedPolicy result;
  result.governor = std::make_unique<rl::RlGovernor>(
      config, engine.soc_config().clusters.size());
  rl::TrainerConfig train_cfg;
  train_cfg.episodes = episodes;
  train_cfg.workload_seed = seed;
  rl::Trainer trainer(engine, *result.governor, train_cfg);
  result.curve = trainer.train();
  return result;
}

core::PolicySummary evaluate_policy(
    core::SimEngine& engine, governors::Governor& governor,
    std::uint64_t seed, const std::vector<workload::ScenarioKind>& kinds) {
  core::PolicySummary summary;
  summary.governor = governor.name();
  const auto t0 = Clock::now();
  for (const auto kind : kinds) {
    auto scenario = workload::make_scenario(kind, seed);
    summary.runs.push_back(engine.run(*scenario, governor));
  }
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::fprintf(stderr, "[time] %s: %zu runs in %.2f s (%.0f ms/run)\n",
               summary.governor.c_str(), kinds.size(), s,
               kinds.empty() ? 0.0 : s * 1e3 / kinds.size());
  return summary;
}

std::vector<core::PolicySummary> evaluate_baselines(core::SimEngine& engine,
                                                    std::uint64_t seed) {
  std::vector<core::PolicySummary> summaries;
  for (const auto& name : governors::baseline_governor_names()) {
    auto governor = governors::make_governor(name);
    summaries.push_back(evaluate_policy(engine, *governor, seed));
  }
  return summaries;
}

std::vector<core::PolicySummary> evaluate_baselines(
    core::runfarm::RunFarm& farm, std::uint64_t seed) {
  const auto names = governors::baseline_governor_names();
  std::vector<std::function<core::PolicySummary()>> tasks;
  tasks.reserve(names.size());
  for (const auto& name : names) {
    tasks.push_back([&farm, name, seed] {
      core::SimEngine engine(farm.soc_config(), farm.engine_config());
      auto governor = governors::make_governor(name);
      return evaluate_policy(engine, *governor, seed);
    });
  }
  return farm_map_timed<core::PolicySummary>(farm, "baselines", tasks);
}

TrainEval train_and_evaluate(const core::runfarm::RunFarm& farm,
                             rl::RlGovernorConfig config,
                             std::size_t episodes, std::uint64_t train_seed,
                             std::uint64_t eval_seed) {
  core::SimEngine engine(farm.soc_config(), farm.engine_config());
  TrainEval result;
  result.trained = train_default_policy(engine, episodes, train_seed, config);
  result.summary = evaluate_policy(engine, *result.trained.governor, eval_seed);
  return result;
}

bool read_json_number(const std::string& path, const std::string& key,
                      double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return false;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return false;
  *out = std::atof(text.c_str() + colon + 1);
  return true;
}

int check_against_baseline(const std::string& check_path,
                           const std::string& key, double measured,
                           double tolerance) {
  double baseline = 0.0;
  if (!read_json_number(check_path, key, &baseline) || baseline <= 0.0) {
    std::fprintf(stderr, "check: cannot read %s from %s\n", key.c_str(),
                 check_path.c_str());
    return 2;
  }
  const double floor = baseline * (1.0 - tolerance);
  const bool ok = measured >= floor;
  std::printf("check: %s %.0f vs baseline %.0f (floor %.0f, "
              "tolerance %.0f%%): %s\n",
              key.c_str(), measured, baseline, floor, 100.0 * tolerance,
              ok ? "PASS" : "REGRESSION");
  return ok ? 0 : 3;
}

void print_banner(const char* exp_id, const char* title,
                  const char* paper_ref) {
  g_bench_start = Clock::now();
  std::atexit(print_total_wall_clock);
  std::printf("=== %s: %s ===\n", exp_id, title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

void print_farm_timing(const std::string& label, std::size_t tasks,
                       double wall_s, double run_s_total, std::size_t jobs) {
  const double speedup = wall_s > 0.0 ? run_s_total / wall_s : 1.0;
  std::fprintf(
      stderr,
      "[farm:%s] %zu tasks, %.2f s wall, %.2f s serial-equivalent "
      "(%.2fx, jobs=%zu)\n",
      label.c_str(), tasks, wall_s, run_s_total, speedup, jobs);
}

}  // namespace pmrl::bench
