#include "bench_common.hpp"

#include <cstdio>

#include "governors/registry.hpp"

namespace pmrl::bench {

core::SimEngine make_default_engine() {
  return core::SimEngine(soc::default_mobile_soc_config(),
                         core::EngineConfig{});
}

TrainedPolicy train_default_policy(core::SimEngine& engine,
                                   std::size_t episodes, std::uint64_t seed,
                                   rl::RlGovernorConfig config) {
  TrainedPolicy result;
  result.governor = std::make_unique<rl::RlGovernor>(
      config, engine.soc_config().clusters.size());
  rl::TrainerConfig train_cfg;
  train_cfg.episodes = episodes;
  train_cfg.workload_seed = seed;
  rl::Trainer trainer(engine, *result.governor, train_cfg);
  result.curve = trainer.train();
  return result;
}

core::PolicySummary evaluate_policy(
    core::SimEngine& engine, governors::Governor& governor,
    std::uint64_t seed, const std::vector<workload::ScenarioKind>& kinds) {
  core::PolicySummary summary;
  summary.governor = governor.name();
  for (const auto kind : kinds) {
    auto scenario = workload::make_scenario(kind, seed);
    summary.runs.push_back(engine.run(*scenario, governor));
  }
  return summary;
}

std::vector<core::PolicySummary> evaluate_baselines(core::SimEngine& engine,
                                                    std::uint64_t seed) {
  std::vector<core::PolicySummary> summaries;
  for (const auto& name : governors::baseline_governor_names()) {
    auto governor = governors::make_governor(name);
    summaries.push_back(evaluate_policy(engine, *governor, seed));
  }
  return summaries;
}

void print_banner(const char* exp_id, const char* title,
                  const char* paper_ref) {
  std::printf("=== %s: %s ===\n", exp_id, title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

}  // namespace pmrl::bench
