// R1 — fault-resilience experiment (robustness extension, not a paper
// artifact): how does the learned policy behave when the deployment
// assumptions break? Sweeps fault intensity over the per-scenario fault
// profiles (telemetry noise/dropout/stuck-at, thermal emergencies) and
// compares three stacks:
//
//   conservative        the registered safe governor alone (reference)
//   rl (unguarded)      the trained policy, no degradation machinery
//   rl+watchdog         the same policy behind PolicyWatchdog
//
// plus a deliberately *poisoned* policy pair at each nonzero intensity —
// the Q-table carries NaNs, standing in for corruption a legacy (v1,
// checksum-less) checkpoint loader would have absorbed silently. The
// watchdog must trip and hold a QoS floor; the unguarded poisoned policy
// demonstrates the failure mode the machinery exists for.
//
// Also exercised: the hardened checkpoint loader against bit-corrupted
// images (typed rejection + fresh-init fallback, where the legacy loader
// crashed or absorbed), the AXI retry/timeout accounting under bus
// faults, and bit-exact determinism of the whole fault stack.

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "bench_common.hpp"
#include "fault/fault_injector.hpp"
#include "fault/scenario_faults.hpp"
#include "governors/registry.hpp"
#include "hw/latency.hpp"
#include "rl/policy_io.hpp"
#include "rl/watchdog.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {

constexpr std::uint64_t kFaultSeed = 777;
constexpr double kRunDuration = 30.0;

/// Aggregate of one policy stack evaluated over all scenarios at one
/// fault intensity.
struct SweepRow {
  double energy_per_qos = 0.0;
  double violation_rate = 0.0;   // pooled over scenarios
  double worst_violation = 0.0;  // worst single scenario
  std::size_t engagements = 0;
  double fallback_fraction = 0.0;
  double total_energy_j = 0.0;
  std::size_t total_violations = 0;
};

hw::AxiFaultParams to_axi(const fault::BusFaultParams& bus) {
  hw::AxiFaultParams axi;
  axi.error_rate = bus.error_rate;
  axi.timeout_rate = bus.timeout_rate;
  axi.timeout_s = bus.timeout_s;
  axi.max_attempts = bus.max_attempts;
  return axi;
}

/// Overwrites a slice of the Q-tables with NaN — corruption a
/// checksum-less loader would have absorbed into the live policy.
void poison_policy(rl::RlGovernor& policy) {
  for (std::size_t i = 0; i < policy.agent_count(); ++i) {
    auto& agent = policy.agent(i);
    for (std::size_t s = 0; s < agent.state_count(); s += 2) {
      for (std::size_t a = 0; a < agent.action_count(); ++a) {
        agent.set_q_value(s, a, std::numeric_limits<double>::quiet_NaN());
      }
    }
  }
}

SweepRow evaluate_stack(core::SimEngine& engine,
                        governors::Governor& governor, double intensity,
                        rl::PolicyWatchdog* watchdog) {
  SweepRow row;
  double quality = 0.0;
  std::size_t released = 0;
  std::size_t fb_epochs = 0;
  std::size_t all_epochs = 0;
  for (const auto kind : workload::all_scenario_kinds()) {
    fault::FaultInjector injector(fault::scenario_fault_profile(
        kind, intensity, kFaultSeed + static_cast<std::uint64_t>(kind)));
    engine.set_fault_injector(intensity > 0.0 ? &injector : nullptr);
    auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
    const auto run = engine.run(*scenario, governor);
    engine.set_fault_injector(nullptr);
    row.total_energy_j += run.energy_j;
    quality += run.quality;
    released += run.released_deadline;
    row.total_violations += run.violations;
    row.worst_violation = std::max(row.worst_violation, run.violation_rate);
    if (watchdog) {
      row.engagements += watchdog->engagements();
      fb_epochs += watchdog->fallback_epochs();
      all_epochs += watchdog->total_epochs();
    }
  }
  row.energy_per_qos = quality > 0.0
                           ? row.total_energy_j / quality
                           : std::numeric_limits<double>::infinity();
  row.violation_rate =
      released > 0 ? static_cast<double>(row.total_violations) /
                         static_cast<double>(released)
                   : 0.0;
  row.fallback_fraction =
      all_epochs > 0 ? static_cast<double>(fb_epochs) /
                           static_cast<double>(all_epochs)
                     : 0.0;
  return row;
}

void restore(rl::RlGovernor& policy, const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  rl::load_policy(policy, in);
}

}  // namespace

int main() {
  Log::set_level(LogLevel::Error);
  bench::print_banner("R1", "fault injection & graceful degradation",
                      "robustness extension (no paper artifact)");

  core::EngineConfig engine_config;
  engine_config.duration_s = kRunDuration;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  std::printf("training policy (24 episodes, %g s runs)...\n\n",
              kRunDuration);
  auto trained = bench::train_default_policy(engine, 24);
  rl::RlGovernor& policy = *trained.governor;
  std::ostringstream saved;
  rl::save_policy(policy, saved);
  const std::string clean_checkpoint = saved.str();

  // ---- fault-intensity sweep ----------------------------------------------
  TextTable table({"intensity", "policy", "E/QoS [J]", "viol rate",
                   "worst viol", "fallback", "engaged", "bounded"});
  bool guarded_always_ok = true;
  bool unguarded_poisoned_failed = false;
  for (const double intensity : {0.0, 0.5, 1.0}) {
    // Safe-governor reference defines this intensity's acceptance bound:
    // a stack is "bounded" when its pooled violation rate stays within
    // 1.5x the safe governor's + 2pp AND its energy efficiency within
    // 12% of the safe governor's, both under identical faults. (A
    // poisoned policy can fail either way: the RL governor's built-in
    // QoS guard converts the NaN limit-cycle into an energy regression
    // rather than a violation storm, so QoS alone would miss it.)
    auto conservative = governors::make_governor("conservative");
    const SweepRow safe =
        evaluate_stack(engine, *conservative, intensity, nullptr);
    const double qos_floor = 1.5 * safe.violation_rate + 0.02;
    const double efficiency_bound = 1.12 * safe.energy_per_qos;

    auto add_row = [&](const char* label, const SweepRow& row,
                       bool is_guarded) {
      const bool ok = row.violation_rate <= qos_floor &&
                      row.energy_per_qos <= efficiency_bound;
      if (is_guarded && !ok) guarded_always_ok = false;
      table.add_row({TextTable::num(intensity, 2), label,
                     TextTable::num(row.energy_per_qos, 5),
                     TextTable::percent(row.violation_rate),
                     TextTable::percent(row.worst_violation),
                     TextTable::percent(row.fallback_fraction),
                     std::to_string(row.engagements), ok ? "yes" : "NO"});
      return ok;
    };

    add_row("conservative", safe, false);

    restore(policy, clean_checkpoint);
    add_row("rl (unguarded)", evaluate_stack(engine, policy, intensity,
                                             nullptr),
            false);

    restore(policy, clean_checkpoint);
    rl::PolicyWatchdog guarded(policy,
                               governors::make_governor("conservative"));
    add_row("rl+watchdog",
            evaluate_stack(engine, guarded, intensity, &guarded), true);

    if (intensity > 0.0) {
      restore(policy, clean_checkpoint);
      poison_policy(policy);
      const bool poisoned_ok = add_row(
          "rl poisoned (unguarded)",
          evaluate_stack(engine, policy, intensity, nullptr), false);
      if (!poisoned_ok) unguarded_poisoned_failed = true;

      restore(policy, clean_checkpoint);
      poison_policy(policy);
      rl::PolicyWatchdog rescued(policy,
                                 governors::make_governor("conservative"));
      add_row("rl poisoned +watchdog",
              evaluate_stack(engine, rescued, intensity, &rescued), true);
    }
  }
  table.print();
  std::printf(
      "\nbound per intensity: violation rate <= 1.5x the safe governor's"
      " + 2pp AND\nE/QoS <= 1.12x the safe governor's, under identical"
      " faults. Guarded stacks %s\nthe bound at every intensity; the"
      " poisoned unguarded policy %s —\nthe failure the watchdog exists"
      " to absorb.\n",
      guarded_always_ok ? "held" : "VIOLATED",
      unguarded_poisoned_failed ? "broke it" : "did not break it");

  // ---- corrupted checkpoint handling --------------------------------------
  std::printf("\n--- checkpoint corruption (policy I/O hardening) ---\n");
  fault::FaultConfig corruption;
  corruption.seed = kFaultSeed;
  corruption.policy.flip_rate = 5e-4;
  fault::FaultInjector corruptor(corruption);
  std::string damaged = clean_checkpoint;
  const std::size_t flipped = corruptor.corrupt_text(damaged);
  restore(policy, clean_checkpoint);
  std::istringstream damaged_in(damaged);
  std::string error;
  const bool loaded = rl::try_load_policy(policy, damaged_in, &error);
  std::printf("%zu bytes flipped -> load %s\n  %s\n", flipped,
              loaded ? "ABSORBED (bad!)" : "rejected (typed error)",
              loaded ? "corruption went undetected" : error.c_str());
  std::printf("governor state untouched by the failed load; a fresh-init "
              "fallback remains safe to run.\n");

  // ---- AXI transaction faults ---------------------------------------------
  std::printf("\n--- interface faults (AXI retry/timeout accounting) ---\n");
  TextTable axi_table({"intensity", "mean e2e [us]", "retries", "timeouts",
                       "failures", "held actions"});
  // The last row is a deliberate stress level (far past the sweep range)
  // so the exhausted-retry-budget -> held-action path shows up at this
  // sample size.
  for (const double intensity : {0.0, 0.5, 1.0, 10.0}) {
    const auto bus =
        fault::uniform_fault_profile(intensity, kFaultSeed).bus;
    hw::HwPolicyEngine accel(hw::HwPolicyConfig{}, 1024, 9);
    accel.set_interface_faults(to_axi(bus), kFaultSeed);
    const auto stream = hw::synthetic_stream(1024, 20000, bench::kEvalSeed);
    double total_s = 0.0;
    std::size_t retries = 0;
    std::size_t timeouts = 0;
    std::size_t held = 0;
    for (const auto& record : stream) {
      hw::PolicyLatency latency;
      accel.invoke(record.state, record.reward, latency);
      total_s += latency.end_to_end_s;
      retries += latency.interface_retries;
      timeouts += latency.interface_timeouts;
      if (!latency.interface_ok) ++held;
    }
    axi_table.add_row(
        {TextTable::num(intensity, 2),
         TextTable::num(total_s / static_cast<double>(stream.size()) * 1e6,
                        3),
         std::to_string(retries), std::to_string(timeouts),
         std::to_string(accel.interface_failures()),
         std::to_string(held)});
  }
  axi_table.print();
  std::printf("every failed invocation holds the previous action; the step "
              "loop never blocks past the bounded timeout budget.\n");

  // ---- determinism --------------------------------------------------------
  std::printf("\n--- determinism ---\n");
  // A fresh governor per run: the exploration RNG is part of governor
  // state, so replay requires rebuilding the full stack from the
  // checkpoint, not just restoring Q-values into a used instance.
  auto guarded_run = [&]() {
    rl::RlGovernor fresh(rl::RlGovernorConfig{},
                         engine.soc_config().clusters.size());
    restore(fresh, clean_checkpoint);
    rl::PolicyWatchdog guard(fresh,
                             governors::make_governor("conservative"));
    return evaluate_stack(engine, guard, 1.0, &guard);
  };
  const SweepRow first = guarded_run();
  const SweepRow second = guarded_run();
  const bool identical =
      first.total_energy_j == second.total_energy_j &&
      first.total_violations == second.total_violations &&
      first.engagements == second.engagements;
  std::printf("two runs, same fault config: %s (energy %.6f / %.6f J, "
              "violations %zu / %zu)\n",
              identical ? "bit-identical" : "DIVERGED",
              first.total_energy_j, second.total_energy_j,
              first.total_violations, second.total_violations);
  return (guarded_always_ok && unguarded_poisoned_failed && !loaded &&
          identical)
             ? 0
             : 1;
}
