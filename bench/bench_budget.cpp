// BUDGET — throughput cost and behaviour of the hierarchical power-budget
// tree layered over the SoA fleet engine. Measures:
//   1. the unbudgeted fleet's device-ticks/sec (same engine, budget off)
//      as the in-binary baseline,
//   2. budgeted device-ticks/sec for each apportionment policy (uniform /
//      demand / rl) under a 10x global-cap step at mid-run, plus the
//      settle epochs and over-cap device-epoch rate for each,
//   3. the budget overhead ratio (budgeted / unbudgeted throughput) — the
//      apportionment pass and cap masking are expected to cost < 20%,
//   4. a jobs-1-vs-4 bit-identity cross-check of the budgeted aggregates
//      and per-device caps (the apportionment is a serial pass, so farming
//      the block sweeps must not change a single bit).
// Emits BENCH_budget.json; `--check BENCH_budget.json [--check-tolerance
// X]` gates on budget_device_ticks_per_sec like the other benches do on
// their headline numbers.
//
// Throughput numbers are host-dependent; the determinism flag, the audit
// result, and the settle epochs are not.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fleet/fleet_engine.hpp"
#include "rl/batch_argmax.hpp"

using namespace pmrl;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_budgeted(const fleet::FleetResult& a, const fleet::FleetResult& b) {
  return a.energy_j == b.energy_j && a.served == b.served &&
         a.demand == b.demand && a.violation_epochs == b.violation_epochs &&
         a.budget.over_cap_device_epochs == b.budget.over_cap_device_epochs &&
         a.budget.settle_epochs == b.budget.settle_epochs &&
         a.device_caps_w == b.device_caps_w;
}

struct PolicyRow {
  std::string policy;
  double wall_s = 0.0;
  double ticks_per_sec = 0.0;
  long settle_epochs = -1;
  double over_cap_rate = 0.0;
  bool audit_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 100000;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  // Per-device watts, matching the fleet calibration: ~8 W/device is
  // unconstraining, ~0.8 W/device sits between the pinned-OPP floor
  // (~0.6 W/device) and the free-running draw (~1.35 W/device), so the
  // 10x step bites hard but stays settleable.
  double cap_per_device_w = 8.0;
  double step_per_device_w = 0.8;
  std::string out_path = "BENCH_budget.json";
  std::string check_path;
  double check_tolerance = 0.30;
  std::size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag, int len) -> const char* {
      if (std::strncmp(arg, flag, static_cast<std::size_t>(len)) == 0 &&
          arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--devices", 9)) {
      devices = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v2 = value("--duration", 10)) {
      duration_s = std::atof(v2);
    } else if (const char* v3 = value("--seed", 6)) {
      seed = static_cast<std::uint64_t>(std::atoll(v3));
    } else if (const char* v4 = value("--cap", 5)) {
      cap_per_device_w = std::atof(v4);
    } else if (const char* v5 = value("--step-cap", 10)) {
      step_per_device_w = std::atof(v5);
    } else if (const char* v6 = value("--out", 5)) {
      out_path = v6;
    } else if (const char* v7 = value("--check", 7)) {
      check_path = v7;
    } else if (const char* v8 = value("--check-tolerance", 17)) {
      check_tolerance = std::atof(v8);
    } else if (const char* v9 = value("--reps", 6)) {
      reps = static_cast<std::size_t>(std::atoll(v9));
    }
  }
  if (reps == 0) reps = 1;
  if (devices == 0 || duration_s <= 0.0 || cap_per_device_w <= 0.0) {
    std::fprintf(stderr, "--devices, --duration, --cap must be positive\n");
    return 2;
  }

  bench::print_banner("BUDGET", "power-budget tree over the fleet engine",
                      "hierarchical cap apportionment + enforcement cost");
  const double n = static_cast<double>(devices);
  std::printf("devices=%zu duration=%.1fs cap=%.1fW/dev step=%.1fW/dev "
              "simd=%s\n\n",
              devices, duration_s, cap_per_device_w, step_per_device_w,
              rl::batch_argmax_backend());

  fleet::FleetConfig base;
  base.devices = devices;
  base.seed = seed;
  base.duration_s = duration_s;
  base.jobs = 1;

  // ---- unbudgeted baseline ----------------------------------------------
  // Walls are best-of-`reps`: the minimum is the least-perturbed
  // observation of the same deterministic computation.
  double free_wall = 0.0;
  fleet::FleetResult free_run;
  {
    fleet::FleetEngine engine(base);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto t0 = Clock::now();
      fleet::FleetResult r = engine.run();
      const double wall = seconds_since(t0);
      if (rep == 0 || wall < free_wall) free_wall = wall;
      free_run = std::move(r);
    }
  }
  const double free_ticks_per_sec =
      static_cast<double>(free_run.device_ticks) / free_wall;
  std::printf("unbudgeted:   %.2f s wall, %.3g device-ticks/s\n", free_wall,
              free_ticks_per_sec);

  fleet::FleetConfig budgeted = base;
  budgeted.budget.global_cap_w = cap_per_device_w * n;
  budgeted.budget.groups = 8;
  budgeted.budget.seed = seed;
  budgeted.budget.schedule = {{duration_s * 0.5, step_per_device_w * n}};

  // ---- per-policy budgeted runs -----------------------------------------
  std::vector<PolicyRow> rows;
  bool all_audits_ok = true;
  bool all_settled = true;
  for (const char* policy : {"uniform", "demand", "rl"}) {
    fleet::FleetConfig config = budgeted;
    config.budget.policy = policy;
    fleet::FleetEngine engine(config);
    PolicyRow row;
    row.policy = policy;
    fleet::FleetResult result;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto t0 = Clock::now();
      fleet::FleetResult r = engine.run();
      const double wall = seconds_since(t0);
      if (rep == 0 || wall < row.wall_s) row.wall_s = wall;
      result = std::move(r);
    }
    row.ticks_per_sec =
        static_cast<double>(result.device_ticks) / row.wall_s;
    row.settle_epochs = result.budget.settle_epochs;
    const double device_epochs =
        n * static_cast<double>(engine.timing().epochs);
    row.over_cap_rate =
        static_cast<double>(result.budget.over_cap_device_epochs) /
        std::max(1.0, device_epochs);
    row.audit_ok = result.budget.audit_error.empty();
    all_audits_ok = all_audits_ok && row.audit_ok;
    all_settled = all_settled && row.settle_epochs >= 0;
    std::printf("budget %-7s %.2f s wall, %.3g device-ticks/s (%.2fx of "
                "free), settle %ld epochs, over-cap rate %.4f, audit %s\n",
                policy, row.wall_s, row.ticks_per_sec,
                row.ticks_per_sec / free_ticks_per_sec, row.settle_epochs,
                row.over_cap_rate, row.audit_ok ? "ok" : "FAILED");
    rows.push_back(std::move(row));
  }
  const PolicyRow& demand_row =
      *std::find_if(rows.begin(), rows.end(),
                    [](const PolicyRow& r) { return r.policy == "demand"; });
  const double overhead_ratio = demand_row.ticks_per_sec / free_ticks_per_sec;
  std::printf("\nbudget overhead: %.1f%% of unbudgeted throughput retained\n",
              100.0 * overhead_ratio);

  // ---- jobs determinism (untimed: record_devices adds a finalize pass
  // the throughput runs above deliberately skip) -------------------------
  bool deterministic = true;
  {
    fleet::FleetConfig serial_cfg = budgeted;
    serial_cfg.budget.policy = "demand";
    serial_cfg.record_devices = true;
    fleet::FleetConfig farmed = serial_cfg;
    farmed.jobs = 4;
    const fleet::FleetResult a = fleet::FleetEngine(serial_cfg).run();
    const fleet::FleetResult b = fleet::FleetEngine(farmed).run();
    deterministic = same_budgeted(a, b);
    std::printf("jobs 1 vs 4: budgeted aggregates + caps bit-identical=%s\n",
                deterministic ? "yes" : "NO");
  }

  // ---- JSON --------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"budget\",\n");
  std::fprintf(out, "  \"devices\": %zu,\n", devices);
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"reps\": %zu,\n", reps);
  std::fprintf(out, "  \"cap_per_device_w\": %g,\n", cap_per_device_w);
  std::fprintf(out, "  \"step_per_device_w\": %g,\n", step_per_device_w);
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"simd_backend\": \"%s\",\n",
               rl::batch_argmax_backend());
  std::fprintf(out, "  \"unbudgeted\": {\n");
  std::fprintf(out, "    \"wall_s\": %.6f,\n", free_wall);
  std::fprintf(out, "    \"free_device_ticks_per_sec\": %.1f\n",
               free_ticks_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"policies\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& row = rows[i];
    std::fprintf(out,
                 "    {\"policy\": \"%s\", \"wall_s\": %.6f, "
                 "\"ticks_per_sec\": %.1f, \"settle_epochs\": %ld, "
                 "\"over_cap_rate\": %.6f, \"audit_ok\": %s}%s\n",
                 row.policy.c_str(), row.wall_s, row.ticks_per_sec,
                 row.settle_epochs, row.over_cap_rate,
                 row.audit_ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Headline: demand-policy budgeted throughput. Key is unique file-wide
  // so the --check gate's first-occurrence JSON scan finds exactly it.
  std::fprintf(out, "  \"budget_device_ticks_per_sec\": %.1f,\n",
               demand_row.ticks_per_sec);
  std::fprintf(out, "  \"budget_overhead_ratio\": %.4f,\n", overhead_ratio);
  std::fprintf(out, "  \"deterministic_across_jobs\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"all_audits_ok\": %s,\n",
               all_audits_ok ? "true" : "false");
  std::fprintf(out, "  \"all_policies_settled\": %s\n",
               all_settled ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  int exit_code =
      (deterministic && all_audits_ok && all_settled) ? 0 : 1;
  if (!check_path.empty()) {
    const int rc = bench::check_against_baseline(
        check_path, "budget_device_ticks_per_sec", demand_row.ticks_per_sec,
        check_tolerance);
    if (rc == 2) return 2;
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
