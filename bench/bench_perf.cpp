// PERF — machine-readable performance baseline of the tick engine and the
// run farm. Measures single-thread simulation throughput (ticks/sec) over
// the full E1-style sweep (every governor x every scenario), then repeats
// the sweep through the run farm at 1/2/4/N worker threads, cross-checking
// that the farmed results are bit-identical to the serial ones. Emits
// BENCH_perf.json so CI and future optimization PRs can diff against a
// recorded baseline, and gates on one via `--check BENCH_perf.json
// [--check-tolerance X]`: exit 3 when single-thread ticks_per_sec drops
// below baseline * (1 - X), mirroring bench_serve's gate.
//
// Speedup numbers are host-dependent (they track the machine's core count);
// the determinism flag is not.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "rl/batch_argmax.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {

bool same_runs(const std::vector<core::RunResult>& a,
               const std::vector<core::RunResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].energy_j != b[i].energy_j || a[i].quality != b[i].quality ||
        a[i].violations != b[i].violations ||
        a[i].mean_freq_hz != b[i].mean_freq_hz) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 60.0;
  std::string out_path = "BENCH_perf.json";
  std::string check_path;
  double check_tolerance = 0.30;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--duration=", 11) == 0) {
      duration_s = std::atof(arg + 11);
    } else if (std::strcmp(arg, "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(arg, "--check=", 8) == 0) {
      check_path = arg + 8;
    } else if (std::strcmp(arg, "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strncmp(arg, "--check-tolerance=", 18) == 0) {
      check_tolerance = std::atof(arg + 18);
    } else if (std::strcmp(arg, "--check-tolerance") == 0 && i + 1 < argc) {
      check_tolerance = std::atof(argv[++i]);
    }
  }
  if (duration_s <= 0.0) {
    std::fprintf(stderr, "--duration needs a positive number of seconds\n");
    return 2;
  }
  std::size_t jobs_max = bench::jobs_from_args(argc, argv);
  if (jobs_max == 0) jobs_max = core::runfarm::default_jobs();

  bench::print_banner("PERF", "tick-engine throughput + run-farm scaling",
                      "perf baseline (BENCH_perf.json), not a paper figure");

  core::EngineConfig engine_config;
  engine_config.duration_s = duration_s;
  const auto soc_config = soc::default_mobile_soc_config();
  const double ticks_per_run =
      std::floor(duration_s / engine_config.tick_s + 0.5);

  // The E1-style sweep: every governor (six paper baselines + schedutil)
  // on every scenario at the held-out seed — 42 independent runs.
  auto governor_names = governors::baseline_governor_names();
  governor_names.push_back("schedutil");
  std::vector<core::runfarm::RunSpec> specs;
  for (const auto& name : governor_names) {
    for (const auto kind : workload::all_scenario_kinds()) {
      core::runfarm::RunSpec spec;
      spec.kind = kind;
      spec.seed = bench::kEvalSeed;
      spec.make_governor = [name] { return governors::make_governor(name); };
      specs.push_back(std::move(spec));
    }
  }

  // Thread sweep: 1 (serial baseline), 2, 4, and the configured maximum.
  std::vector<std::size_t> levels = {1, 2, 4};
  if (std::find(levels.begin(), levels.end(), jobs_max) == levels.end()) {
    levels.push_back(jobs_max);
  }

  struct Level {
    std::size_t jobs = 0;
    core::runfarm::BatchStats stats;
  };
  std::vector<Level> measured;
  std::vector<core::RunResult> serial_results;
  std::vector<core::RunResult> threaded_results;
  for (const std::size_t jobs : levels) {
    core::runfarm::RunFarm farm(soc_config, engine_config, jobs);
    char label[32];
    std::snprintf(label, sizeof label, "sweep@%zu", jobs);
    auto results = farm.run_all(specs, label, /*show_progress=*/true);
    measured.push_back({jobs, farm.last_stats()});
    bench::print_farm_timing(label, specs.size(), farm.last_stats().wall_s,
                             farm.last_stats().run_s_total, jobs);
    if (jobs == 1) serial_results = std::move(results);
    if (jobs == 4) threaded_results = std::move(results);
  }
  const bool deterministic = same_runs(serial_results, threaded_results);

  const double serial_wall = measured.front().stats.wall_s;
  const double total_ticks = ticks_per_run * static_cast<double>(specs.size());
  const double ticks_per_sec =
      serial_wall > 0.0 ? total_ticks / serial_wall : 0.0;

  TextTable table({"jobs", "wall [s]", "serial-equivalent [s]", "speedup"});
  for (const auto& level : measured) {
    table.add_row({std::to_string(level.jobs),
                   TextTable::num(level.stats.wall_s, 2),
                   TextTable::num(level.stats.run_s_total, 2),
                   TextTable::num(level.stats.speedup(), 2) + "x"});
  }
  table.print();
  std::printf("\nsingle-thread throughput: %.0f ticks/sec (%zu runs x %.0f "
              "ticks in %.2f s)\n",
              ticks_per_sec, specs.size(), ticks_per_run, serial_wall);
  std::printf("serial vs 4-thread farm results: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  // Profiled pass: a short serial re-run of the sweep with the metrics
  // registry and epoch-granularity scoped timers attached, to record where
  // engine time goes. Kept out of the measured sweep above so the published
  // throughput number stays the instrumentation-free one.
  const double profile_duration_s = std::min(duration_s, 5.0);
  obs::MetricsRegistry profile_metrics;
  obs::Profiler profiler;
  {
    core::EngineConfig profile_config = engine_config;
    profile_config.duration_s = profile_duration_s;
    core::SimEngine engine(soc_config, profile_config);
    engine.set_metrics(&profile_metrics);
    engine.set_profiler(&profiler);
    for (const auto& spec : specs) {
      auto governor = spec.make_governor();
      auto scenario = workload::make_scenario(spec.kind, spec.seed);
      engine.run(*scenario, *governor);
    }
  }
  std::printf("\nprofiled pass (%.1f s per run, serial):\n",
              profile_duration_s);
  std::ostringstream profile_report;
  profiler.write_report(profile_report);
  std::printf("%s", profile_report.str().c_str());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf\",\n");
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"tick_s\": %g,\n", engine_config.tick_s);
  std::fprintf(out, "  \"sweep_runs\": %zu,\n", specs.size());
  std::fprintf(out, "  \"ticks_per_run\": %.0f,\n", ticks_per_run);
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"effective_jobs\": %zu,\n", jobs_max);
  std::fprintf(out, "  \"simd_backend\": \"%s\",\n",
               rl::batch_argmax_backend());
  std::fprintf(out, "  \"single_thread\": {\n");
  std::fprintf(out, "    \"wall_s\": %.6f,\n", serial_wall);
  std::fprintf(out, "    \"ticks_per_sec\": %.1f,\n", ticks_per_sec);
  std::fprintf(out, "    \"ms_per_run\": %.3f\n",
               specs.empty() ? 0.0 : serial_wall * 1e3 / specs.size());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"farm\": [\n");
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& level = measured[i];
    std::fprintf(out,
                 "    {\"jobs\": %zu, \"wall_s\": %.6f, "
                 "\"run_s_total\": %.6f, \"speedup\": %.3f}%s\n",
                 level.jobs, level.stats.wall_s, level.stats.run_s_total,
                 level.stats.speedup(), i + 1 < measured.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"observability\": {\n");
  std::fprintf(out, "    \"profile_duration_s\": %g,\n", profile_duration_s);
  std::ostringstream metrics_json;
  profile_metrics.write_json(metrics_json);
  std::fprintf(out, "    \"metrics\": %s,\n", metrics_json.str().c_str());
  std::ostringstream profiler_json;
  profiler.write_json(profiler_json);
  std::fprintf(out, "    \"profiler\": %s\n", profiler_json.str().c_str());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"deterministic_serial_vs_4_threads\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  int exit_code = deterministic ? 0 : 1;

  // ---- optional perf-regression gate (shared with bench_serve) -----------
  if (!check_path.empty()) {
    const int rc = bench::check_against_baseline(check_path, "ticks_per_sec",
                                                 ticks_per_sec,
                                                 check_tolerance);
    if (rc == 2) return 2;
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
