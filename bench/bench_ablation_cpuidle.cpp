// A5 — ablation of the cpuidle (C-state) substrate: how much of the energy
// story depends on idle-state power management, and where the cores spend
// their time. DVFS and cpuidle are complementary on real devices; the table
// quantifies that interaction per scenario.

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A5", "cpuidle (C-state) substrate ablation",
                      "idle-power substrate interaction with DVFS policies");

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));
  soc::SocConfig with_idle = soc::default_mobile_soc_config();
  with_idle.cpuidle.enabled = true;
  soc::SocConfig without_idle = soc::default_mobile_soc_config();
  without_idle.cpuidle.enabled = false;

  // Train the RL policy once per substrate variant (it adapts to whichever
  // power model it lives on) — two independent farm tasks.
  auto train_on = [](const soc::SocConfig& soc_config) {
    core::SimEngine engine(soc_config, core::EngineConfig{});
    return bench::train_default_policy(engine);
  };
  std::vector<std::function<bench::TrainedPolicy()>> train_tasks = {
      [&] { return train_on(with_idle); },
      [&] { return train_on(without_idle); }};
  auto trained = bench::farm_map_timed<bench::TrainedPolicy>(
      farm, "substrate-train", train_tasks);
  auto& rl_with = trained[0];
  auto& rl_without = trained[1];

  // Ondemand is stateless: one farm task per scenario runs its off/on cell
  // pair. The RL governors carry state across runs, so each governor's
  // scenario loop stays serial inside its own task (kind order preserved).
  struct CellPair {
    core::RunResult off;
    core::RunResult on;
  };
  const auto kinds = workload::all_scenario_kinds();
  std::vector<std::function<CellPair()>> od_tasks;
  for (const auto kind : kinds) {
    od_tasks.push_back([&, kind] {
      auto ondemand = governors::make_governor("ondemand");
      CellPair pair;
      {
        core::SimEngine engine(without_idle, core::EngineConfig{});
        auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
        pair.off = engine.run(*scenario, *ondemand);
      }
      {
        core::SimEngine engine(with_idle, core::EngineConfig{});
        auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
        pair.on = engine.run(*scenario, *ondemand);
      }
      return pair;
    });
  }
  std::vector<std::function<std::vector<core::RunResult>()>> rl_tasks = {
      [&] {
        core::SimEngine engine(without_idle, core::EngineConfig{});
        std::vector<core::RunResult> runs;
        for (const auto kind : kinds) {
          auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
          runs.push_back(engine.run(*scenario, *rl_without.governor));
        }
        return runs;
      },
      [&] {
        core::SimEngine engine(with_idle, core::EngineConfig{});
        std::vector<core::RunResult> runs;
        for (const auto kind : kinds) {
          auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
          runs.push_back(engine.run(*scenario, *rl_with.governor));
        }
        // Final extra run: idle-state residency probe on the near-idle
        // scenario (kept inside this task — same governor, same order as
        // the serial bench).
        auto scenario = workload::make_scenario(
            workload::ScenarioKind::AudioIdle, bench::kEvalSeed);
        runs.push_back(engine.run(*scenario, *rl_with.governor));
        return runs;
      }};
  const auto od_cells =
      bench::farm_map_timed<CellPair>(farm, "ondemand-cells", od_tasks);
  const auto rl_runs = bench::farm_map_timed<std::vector<core::RunResult>>(
      farm, "rl-cells", rl_tasks);

  TextTable table({"scenario", "policy", "energy w/o C-states [J]",
                   "energy w/ C-states [J]", "saving"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const char* name = workload::scenario_kind_name(kinds[i]);
    const auto& od = od_cells[i];
    table.add_row({name, "ondemand", TextTable::num(od.off.energy_j, 1),
                   TextTable::num(od.on.energy_j, 1),
                   TextTable::percent(
                       (od.off.energy_j - od.on.energy_j) / od.off.energy_j)});
    const auto& rl_off = rl_runs[0][i];
    const auto& rl_on = rl_runs[1][i];
    table.add_row({name, "rl", TextTable::num(rl_off.energy_j, 1),
                   TextTable::num(rl_on.energy_j, 1),
                   TextTable::percent(
                       (rl_off.energy_j - rl_on.energy_j) /
                       rl_off.energy_j)});
  }
  table.print();

  // Idle-state residency of the RL policy on the near-idle scenario.
  std::printf("\nidle-state residency (rl, audioidle):\n");
  const auto& run = rl_runs[1].back();
  TextTable residency({"cluster", "C1-wfi", "C2-retention", "C3-off",
                       "active"});
  const char* names[] = {"little", "big"};
  for (std::size_t c = 0; c < run.idle_residency_fraction.size(); ++c) {
    const auto& row = run.idle_residency_fraction[c];
    residency.add_row({names[c], TextTable::percent(row[0]),
                       TextTable::percent(row[1]),
                       TextTable::percent(row[2]),
                       TextTable::percent(row[3])});
  }
  residency.print();
  std::printf(
      "\nexpected shape: C-states cut idle-heavy scenarios' energy by a "
      "double-digit percentage and barely change gaming; most idle time "
      "lands in the deepest state.\n");
  return 0;
}
