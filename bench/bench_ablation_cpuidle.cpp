// A5 — ablation of the cpuidle (C-state) substrate: how much of the energy
// story depends on idle-state power management, and where the cores spend
// their time. DVFS and cpuidle are complementary on real devices; the table
// quantifies that interaction per scenario.

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("A5", "cpuidle (C-state) substrate ablation",
                      "idle-power substrate interaction with DVFS policies");

  auto run_with = [](bool cpuidle_enabled, governors::Governor& governor,
                     workload::ScenarioKind kind) {
    soc::SocConfig soc_config = soc::default_mobile_soc_config();
    soc_config.cpuidle.enabled = cpuidle_enabled;
    core::SimEngine engine(soc_config, core::EngineConfig{});
    auto scenario = workload::make_scenario(kind, bench::kEvalSeed);
    return engine.run(*scenario, governor);
  };

  // Train the RL policy once per substrate variant (it adapts to whichever
  // power model it lives on).
  soc::SocConfig with_idle = soc::default_mobile_soc_config();
  with_idle.cpuidle.enabled = true;
  soc::SocConfig without_idle = soc::default_mobile_soc_config();
  without_idle.cpuidle.enabled = false;
  core::SimEngine engine_with(with_idle, core::EngineConfig{});
  core::SimEngine engine_without(without_idle, core::EngineConfig{});
  auto rl_with = bench::train_default_policy(engine_with);
  auto rl_without = bench::train_default_policy(engine_without);

  TextTable table({"scenario", "policy", "energy w/o C-states [J]",
                   "energy w/ C-states [J]", "saving"});
  for (const auto kind : workload::all_scenario_kinds()) {
    auto ondemand = governors::make_governor("ondemand");
    const auto od_off = run_with(false, *ondemand, kind);
    const auto od_on = run_with(true, *ondemand, kind);
    table.add_row({workload::scenario_kind_name(kind), "ondemand",
                   TextTable::num(od_off.energy_j, 1),
                   TextTable::num(od_on.energy_j, 1),
                   TextTable::percent(
                       (od_off.energy_j - od_on.energy_j) / od_off.energy_j)});
    auto sc1 = workload::make_scenario(kind, bench::kEvalSeed);
    auto sc2 = workload::make_scenario(kind, bench::kEvalSeed);
    const auto rl_off = engine_without.run(*sc1, *rl_without.governor);
    const auto rl_on = engine_with.run(*sc2, *rl_with.governor);
    table.add_row({workload::scenario_kind_name(kind), "rl",
                   TextTable::num(rl_off.energy_j, 1),
                   TextTable::num(rl_on.energy_j, 1),
                   TextTable::percent(
                       (rl_off.energy_j - rl_on.energy_j) /
                       rl_off.energy_j)});
  }
  table.print();

  // Idle-state residency of the RL policy on the near-idle scenario.
  std::printf("\nidle-state residency (rl, audioidle):\n");
  auto scenario = workload::make_scenario(workload::ScenarioKind::AudioIdle,
                                          bench::kEvalSeed);
  const auto run = engine_with.run(*scenario, *rl_with.governor);
  TextTable residency({"cluster", "C1-wfi", "C2-retention", "C3-off",
                       "active"});
  const char* names[] = {"little", "big"};
  for (std::size_t c = 0; c < run.idle_residency_fraction.size(); ++c) {
    const auto& row = run.idle_residency_fraction[c];
    residency.add_row({names[c], TextTable::percent(row[0]),
                       TextTable::percent(row[1]),
                       TextTable::percent(row[2]),
                       TextTable::percent(row[3])});
  }
  residency.print();
  std::printf(
      "\nexpected shape: C-states cut idle-heavy scenarios' energy by a "
      "double-digit percentage and barely change gaming; most idle time "
      "lands in the deepest state.\n");
  return 0;
}
